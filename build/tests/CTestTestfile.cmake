# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/objects_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/events_edge_test[1]_include.cmake")
include("/root/repo/build/tests/trace_names_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
