# Empty dependencies file for events_edge_test.
# This may be replaced when dependencies are built.
