file(REMOVE_RECURSE
  "CMakeFiles/events_edge_test.dir/events_edge_test.cpp.o"
  "CMakeFiles/events_edge_test.dir/events_edge_test.cpp.o.d"
  "events_edge_test"
  "events_edge_test.pdb"
  "events_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/events_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
