file(REMOVE_RECURSE
  "CMakeFiles/trace_names_test.dir/trace_names_test.cpp.o"
  "CMakeFiles/trace_names_test.dir/trace_names_test.cpp.o.d"
  "trace_names_test"
  "trace_names_test.pdb"
  "trace_names_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_names_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
