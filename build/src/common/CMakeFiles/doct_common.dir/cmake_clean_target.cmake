file(REMOVE_RECURSE
  "libdoct_common.a"
)
