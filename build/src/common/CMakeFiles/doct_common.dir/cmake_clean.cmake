file(REMOVE_RECURSE
  "CMakeFiles/doct_common.dir/clock.cpp.o"
  "CMakeFiles/doct_common.dir/clock.cpp.o.d"
  "CMakeFiles/doct_common.dir/log.cpp.o"
  "CMakeFiles/doct_common.dir/log.cpp.o.d"
  "CMakeFiles/doct_common.dir/result.cpp.o"
  "CMakeFiles/doct_common.dir/result.cpp.o.d"
  "libdoct_common.a"
  "libdoct_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doct_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
