# Empty dependencies file for doct_common.
# This may be replaced when dependencies are built.
