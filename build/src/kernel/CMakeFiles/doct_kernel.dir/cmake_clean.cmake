file(REMOVE_RECURSE
  "CMakeFiles/doct_kernel.dir/attributes.cpp.o"
  "CMakeFiles/doct_kernel.dir/attributes.cpp.o.d"
  "CMakeFiles/doct_kernel.dir/event_notice.cpp.o"
  "CMakeFiles/doct_kernel.dir/event_notice.cpp.o.d"
  "CMakeFiles/doct_kernel.dir/kernel.cpp.o"
  "CMakeFiles/doct_kernel.dir/kernel.cpp.o.d"
  "libdoct_kernel.a"
  "libdoct_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doct_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
