file(REMOVE_RECURSE
  "libdoct_kernel.a"
)
