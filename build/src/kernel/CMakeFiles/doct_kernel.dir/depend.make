# Empty dependencies file for doct_kernel.
# This may be replaced when dependencies are built.
