
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/debugger/debugger.cpp" "src/services/CMakeFiles/doct_services.dir/debugger/debugger.cpp.o" "gcc" "src/services/CMakeFiles/doct_services.dir/debugger/debugger.cpp.o.d"
  "/root/repo/src/services/exceptions/exceptions.cpp" "src/services/CMakeFiles/doct_services.dir/exceptions/exceptions.cpp.o" "gcc" "src/services/CMakeFiles/doct_services.dir/exceptions/exceptions.cpp.o.d"
  "/root/repo/src/services/locks/lock_manager.cpp" "src/services/CMakeFiles/doct_services.dir/locks/lock_manager.cpp.o" "gcc" "src/services/CMakeFiles/doct_services.dir/locks/lock_manager.cpp.o.d"
  "/root/repo/src/services/monitor/monitor.cpp" "src/services/CMakeFiles/doct_services.dir/monitor/monitor.cpp.o" "gcc" "src/services/CMakeFiles/doct_services.dir/monitor/monitor.cpp.o.d"
  "/root/repo/src/services/names/name_service.cpp" "src/services/CMakeFiles/doct_services.dir/names/name_service.cpp.o" "gcc" "src/services/CMakeFiles/doct_services.dir/names/name_service.cpp.o.d"
  "/root/repo/src/services/pager/pager.cpp" "src/services/CMakeFiles/doct_services.dir/pager/pager.cpp.o" "gcc" "src/services/CMakeFiles/doct_services.dir/pager/pager.cpp.o.d"
  "/root/repo/src/services/termination/termination.cpp" "src/services/CMakeFiles/doct_services.dir/termination/termination.cpp.o" "gcc" "src/services/CMakeFiles/doct_services.dir/termination/termination.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/events/CMakeFiles/doct_events.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/doct_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/doct_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/doct_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/doct_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/doct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/doct_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
