# Empty dependencies file for doct_services.
# This may be replaced when dependencies are built.
