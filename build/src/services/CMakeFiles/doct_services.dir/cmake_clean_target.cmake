file(REMOVE_RECURSE
  "libdoct_services.a"
)
