file(REMOVE_RECURSE
  "CMakeFiles/doct_services.dir/debugger/debugger.cpp.o"
  "CMakeFiles/doct_services.dir/debugger/debugger.cpp.o.d"
  "CMakeFiles/doct_services.dir/exceptions/exceptions.cpp.o"
  "CMakeFiles/doct_services.dir/exceptions/exceptions.cpp.o.d"
  "CMakeFiles/doct_services.dir/locks/lock_manager.cpp.o"
  "CMakeFiles/doct_services.dir/locks/lock_manager.cpp.o.d"
  "CMakeFiles/doct_services.dir/monitor/monitor.cpp.o"
  "CMakeFiles/doct_services.dir/monitor/monitor.cpp.o.d"
  "CMakeFiles/doct_services.dir/names/name_service.cpp.o"
  "CMakeFiles/doct_services.dir/names/name_service.cpp.o.d"
  "CMakeFiles/doct_services.dir/pager/pager.cpp.o"
  "CMakeFiles/doct_services.dir/pager/pager.cpp.o.d"
  "CMakeFiles/doct_services.dir/termination/termination.cpp.o"
  "CMakeFiles/doct_services.dir/termination/termination.cpp.o.d"
  "libdoct_services.a"
  "libdoct_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doct_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
