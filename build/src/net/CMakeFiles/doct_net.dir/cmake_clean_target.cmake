file(REMOVE_RECURSE
  "libdoct_net.a"
)
