file(REMOVE_RECURSE
  "CMakeFiles/doct_net.dir/network.cpp.o"
  "CMakeFiles/doct_net.dir/network.cpp.o.d"
  "libdoct_net.a"
  "libdoct_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doct_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
