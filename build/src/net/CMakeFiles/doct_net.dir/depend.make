# Empty dependencies file for doct_net.
# This may be replaced when dependencies are built.
