file(REMOVE_RECURSE
  "libdoct_dsm.a"
)
