file(REMOVE_RECURSE
  "CMakeFiles/doct_dsm.dir/dsm.cpp.o"
  "CMakeFiles/doct_dsm.dir/dsm.cpp.o.d"
  "libdoct_dsm.a"
  "libdoct_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doct_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
