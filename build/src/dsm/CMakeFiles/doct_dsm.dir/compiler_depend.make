# Empty compiler generated dependencies file for doct_dsm.
# This may be replaced when dependencies are built.
