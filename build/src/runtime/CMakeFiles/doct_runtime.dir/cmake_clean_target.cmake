file(REMOVE_RECURSE
  "libdoct_runtime.a"
)
