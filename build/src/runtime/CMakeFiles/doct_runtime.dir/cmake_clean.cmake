file(REMOVE_RECURSE
  "CMakeFiles/doct_runtime.dir/runtime.cpp.o"
  "CMakeFiles/doct_runtime.dir/runtime.cpp.o.d"
  "libdoct_runtime.a"
  "libdoct_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doct_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
