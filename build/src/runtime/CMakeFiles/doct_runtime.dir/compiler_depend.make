# Empty compiler generated dependencies file for doct_runtime.
# This may be replaced when dependencies are built.
