file(REMOVE_RECURSE
  "CMakeFiles/doct_rpc.dir/rpc.cpp.o"
  "CMakeFiles/doct_rpc.dir/rpc.cpp.o.d"
  "libdoct_rpc.a"
  "libdoct_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doct_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
