# Empty compiler generated dependencies file for doct_rpc.
# This may be replaced when dependencies are built.
