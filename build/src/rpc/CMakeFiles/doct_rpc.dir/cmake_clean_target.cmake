file(REMOVE_RECURSE
  "libdoct_rpc.a"
)
