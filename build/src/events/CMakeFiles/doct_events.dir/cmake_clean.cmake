file(REMOVE_RECURSE
  "CMakeFiles/doct_events.dir/event_system.cpp.o"
  "CMakeFiles/doct_events.dir/event_system.cpp.o.d"
  "CMakeFiles/doct_events.dir/registry.cpp.o"
  "CMakeFiles/doct_events.dir/registry.cpp.o.d"
  "CMakeFiles/doct_events.dir/trace.cpp.o"
  "CMakeFiles/doct_events.dir/trace.cpp.o.d"
  "libdoct_events.a"
  "libdoct_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doct_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
