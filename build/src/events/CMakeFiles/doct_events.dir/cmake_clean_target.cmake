file(REMOVE_RECURSE
  "libdoct_events.a"
)
