# Empty dependencies file for doct_events.
# This may be replaced when dependencies are built.
