file(REMOVE_RECURSE
  "CMakeFiles/doct_objects.dir/manager.cpp.o"
  "CMakeFiles/doct_objects.dir/manager.cpp.o.d"
  "CMakeFiles/doct_objects.dir/store.cpp.o"
  "CMakeFiles/doct_objects.dir/store.cpp.o.d"
  "libdoct_objects.a"
  "libdoct_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doct_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
