# Empty compiler generated dependencies file for doct_objects.
# This may be replaced when dependencies are built.
