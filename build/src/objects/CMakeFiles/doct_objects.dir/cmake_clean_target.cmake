file(REMOVE_RECURSE
  "libdoct_objects.a"
)
