file(REMOVE_RECURSE
  "CMakeFiles/lock_cleanup.dir/lock_cleanup.cpp.o"
  "CMakeFiles/lock_cleanup.dir/lock_cleanup.cpp.o.d"
  "lock_cleanup"
  "lock_cleanup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_cleanup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
