# Empty dependencies file for lock_cleanup.
# This may be replaced when dependencies are built.
