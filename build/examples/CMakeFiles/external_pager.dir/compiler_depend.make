# Empty compiler generated dependencies file for external_pager.
# This may be replaced when dependencies are built.
