# Empty dependencies file for distributed_ctrl_c.
# This may be replaced when dependencies are built.
