file(REMOVE_RECURSE
  "CMakeFiles/distributed_ctrl_c.dir/distributed_ctrl_c.cpp.o"
  "CMakeFiles/distributed_ctrl_c.dir/distributed_ctrl_c.cpp.o.d"
  "distributed_ctrl_c"
  "distributed_ctrl_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_ctrl_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
