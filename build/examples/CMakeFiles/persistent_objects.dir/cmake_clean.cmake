file(REMOVE_RECURSE
  "CMakeFiles/persistent_objects.dir/persistent_objects.cpp.o"
  "CMakeFiles/persistent_objects.dir/persistent_objects.cpp.o.d"
  "persistent_objects"
  "persistent_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
