# Empty dependencies file for bench_e4_sync_async.
# This may be replaced when dependencies are built.
