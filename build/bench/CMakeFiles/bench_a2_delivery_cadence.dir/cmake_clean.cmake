file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_delivery_cadence.dir/bench_a2_delivery_cadence.cpp.o"
  "CMakeFiles/bench_a2_delivery_cadence.dir/bench_a2_delivery_cadence.cpp.o.d"
  "bench_a2_delivery_cadence"
  "bench_a2_delivery_cadence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_delivery_cadence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
