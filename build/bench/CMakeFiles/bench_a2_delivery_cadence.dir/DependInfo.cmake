
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a2_delivery_cadence.cpp" "bench/CMakeFiles/bench_a2_delivery_cadence.dir/bench_a2_delivery_cadence.cpp.o" "gcc" "bench/CMakeFiles/bench_a2_delivery_cadence.dir/bench_a2_delivery_cadence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/doct_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/doct_services.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/doct_events.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/doct_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/doct_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/doct_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/doct_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/doct_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/doct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
