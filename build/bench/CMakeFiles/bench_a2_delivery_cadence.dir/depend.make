# Empty dependencies file for bench_a2_delivery_cadence.
# This may be replaced when dependencies are built.
