file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_monitor.dir/bench_e7_monitor.cpp.o"
  "CMakeFiles/bench_e7_monitor.dir/bench_e7_monitor.cpp.o.d"
  "bench_e7_monitor"
  "bench_e7_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
