file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_addressing.dir/bench_t1_addressing.cpp.o"
  "CMakeFiles/bench_t1_addressing.dir/bench_t1_addressing.cpp.o.d"
  "bench_t1_addressing"
  "bench_t1_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
