file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_termination.dir/bench_e6_termination.cpp.o"
  "CMakeFiles/bench_e6_termination.dir/bench_e6_termination.cpp.o.d"
  "bench_e6_termination"
  "bench_e6_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
