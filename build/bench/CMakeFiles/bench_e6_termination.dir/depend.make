# Empty dependencies file for bench_e6_termination.
# This may be replaced when dependencies are built.
