# Empty dependencies file for bench_e5_pager.
# This may be replaced when dependencies are built.
