file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_pager.dir/bench_e5_pager.cpp.o"
  "CMakeFiles/bench_e5_pager.dir/bench_e5_pager.cpp.o.d"
  "bench_e5_pager"
  "bench_e5_pager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_pager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
