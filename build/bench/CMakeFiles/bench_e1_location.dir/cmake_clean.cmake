file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_location.dir/bench_e1_location.cpp.o"
  "CMakeFiles/bench_e1_location.dir/bench_e1_location.cpp.o.d"
  "bench_e1_location"
  "bench_e1_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
