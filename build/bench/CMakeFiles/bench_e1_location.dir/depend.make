# Empty dependencies file for bench_e1_location.
# This may be replaced when dependencies are built.
