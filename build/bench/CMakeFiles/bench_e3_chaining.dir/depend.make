# Empty dependencies file for bench_e3_chaining.
# This may be replaced when dependencies are built.
