file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_chaining.dir/bench_e3_chaining.cpp.o"
  "CMakeFiles/bench_e3_chaining.dir/bench_e3_chaining.cpp.o.d"
  "bench_e3_chaining"
  "bench_e3_chaining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_chaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
