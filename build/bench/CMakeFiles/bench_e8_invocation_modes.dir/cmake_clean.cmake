file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_invocation_modes.dir/bench_e8_invocation_modes.cpp.o"
  "CMakeFiles/bench_e8_invocation_modes.dir/bench_e8_invocation_modes.cpp.o.d"
  "bench_e8_invocation_modes"
  "bench_e8_invocation_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_invocation_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
