# Empty dependencies file for bench_e8_invocation_modes.
# This may be replaced when dependencies are built.
