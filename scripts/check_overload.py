#!/usr/bin/env python3
"""Validate the E10 overload bench output (the executor acceptance check).

Reads a google-benchmark JSON run of ``bench_e10_overload`` and asserts the
headline property of the priority-lane executor:

* with lanes ON (``lanes=1``), control-lane p99 under the event storm stays
  within 2x of its idle value (an absolute floor of ``--floor-us`` absorbs
  near-zero idle measurements on quiet machines), no control probe was shed,
  and the storm actually overloaded the event lane (``overload_x`` and
  ``event_shed_total`` are both positive);
* the single-lane ablation (``lanes=0``) demonstrates the starvation the
  lanes prevent: its storm p99 is at least ``--starvation-x`` times the
  lanes-on storm p99.

Exits non-zero with a GitHub ::error annotation on violation.

Usage:
  check_overload.py BENCH_e10_overload.json [--floor-us 1000]
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="bench_e10_overload JSON output")
    parser.add_argument(
        "--floor-us",
        type=float,
        default=1000.0,
        help="storm p99 below this passes regardless of the 2x ratio "
        "(guards against a near-zero idle baseline)",
    )
    parser.add_argument(
        "--starvation-x",
        type=float,
        default=10.0,
        help="minimum ablation-vs-lanes storm p99 ratio that counts as "
        "demonstrated starvation",
    )
    args = parser.parse_args()

    with open(args.results) as f:
        doc = json.load(f)

    arms = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if "lanes" not in bench:
            continue
        arms[int(bench["lanes"])] = bench

    errors = []
    if 1 not in arms or 0 not in arms:
        errors.append("expected both lanes=1 and lanes=0 arms in the run")
    else:
        on, off = arms[1], arms[0]
        idle = float(on.get("idle_p99_us", 0))
        storm = float(on.get("storm_p99_us", 0))
        if storm > max(2 * idle, args.floor_us):
            errors.append(
                f"lanes on: storm p99 {storm:.0f}us exceeds 2x idle "
                f"({idle:.0f}us) and the {args.floor_us:.0f}us floor"
            )
        if float(on.get("probe_shed", 0)) > 0:
            errors.append(
                f"lanes on: {on['probe_shed']:.0f} control probes were shed"
            )
        if float(on.get("overload_x", 0)) < 2:
            errors.append(
                f"lanes on: overload factor {on.get('overload_x', 0):.1f}x "
                "— the storm never overloaded the event lane"
            )
        if float(on.get("event_shed_total", 0)) <= 0:
            errors.append(
                "lanes on: no event-lane sheds — overload was not absorbed "
                "as fast errors"
            )
        off_storm = float(off.get("storm_p99_us", 0))
        if storm > 0 and off_storm < args.starvation_x * storm:
            errors.append(
                f"ablation: storm p99 {off_storm:.0f}us is under "
                f"{args.starvation_x:.0f}x the lanes-on value "
                f"({storm:.0f}us) — starvation not demonstrated"
            )

    if errors:
        for err in errors:
            print(f"::error title=overload smoke::{err}")
        return 1

    on, off = arms[1], arms[0]
    print(
        "overload smoke OK: "
        f"idle p99 {on['idle_p99_us']:.0f}us, "
        f"storm p99 {on['storm_p99_us']:.0f}us at "
        f"{on['overload_x']:.1f}x overload "
        f"({on['event_shed_total']:.0f} sheds); "
        f"ablation storm p99 {off['storm_p99_us']:.0f}us"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
