#!/usr/bin/env python3
"""Validate the E10 overload bench output (the executor acceptance check).

Reads a google-benchmark JSON run of ``bench_e10_overload`` and asserts the
headline property of the priority-lane executor.  Arms are keyed by their
``lanes`` and ``width`` counters (Args({lanes, width})):

* with lanes ON (``lanes=1``), control-lane p99 under the event storm stays
  within 2x of its idle value (an absolute floor of ``--floor-us`` absorbs
  near-zero idle measurements on quiet machines) and no control probe was
  shed — at EVERY event-lane width, since widening the lane must not weaken
  the control guarantees; the serial arm (``width=1``) must additionally
  show the storm actually overloaded the event lane (``overload_x`` and
  ``event_shed_total`` positive);
* the single-lane ablation (``lanes=0``) demonstrates the starvation the
  lanes prevent: its storm p99 is at least ``--starvation-x`` times the
  lanes-on serial storm p99, OR it shed control probes outright (probes
  refused admission because control funnels through the overloaded single
  queue — starvation in its bluntest form);
* width scaling (E11, reservation scheduling): absorbed event throughput
  ``handled_per_sec`` at the widest lanes-on arm is at least
  ``--width-scaling-x`` times the serial arm's — disjoint sinks really ran
  in parallel.

Exits non-zero with a GitHub ::error annotation on violation.

Usage:
  check_overload.py BENCH_e10_overload.json [--floor-us 1000]
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="bench_e10_overload JSON output")
    parser.add_argument(
        "--floor-us",
        type=float,
        default=1000.0,
        help="storm p99 below this passes regardless of the 2x ratio "
        "(guards against a near-zero idle baseline)",
    )
    parser.add_argument(
        "--starvation-x",
        type=float,
        default=10.0,
        help="minimum ablation-vs-lanes storm p99 ratio that counts as "
        "demonstrated starvation",
    )
    parser.add_argument(
        "--width-scaling-x",
        type=float,
        default=1.5,
        help="minimum handled_per_sec ratio of the widest lanes-on arm over "
        "the serial arm that counts as demonstrated width scaling",
    )
    args = parser.parse_args()

    with open(args.results) as f:
        doc = json.load(f)

    arms = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if "lanes" not in bench:
            continue
        # Older baselines predate the width counter; treat them as width 1.
        arms[(int(bench["lanes"]), int(bench.get("width", 1)))] = bench

    errors = []
    if (1, 1) not in arms or (0, 1) not in arms:
        errors.append(
            "expected both (lanes=1, width=1) and (lanes=0, width=1) arms "
            "in the run"
        )
    else:
        on, off = arms[(1, 1)], arms[(0, 1)]
        # Control guarantees hold at every lanes-on width: widening the
        # event lane must never starve or shed control work.
        for (lanes, width), arm in sorted(arms.items()):
            if lanes != 1:
                continue
            idle = float(arm.get("idle_p99_us", 0))
            storm = float(arm.get("storm_p99_us", 0))
            if storm > max(2 * idle, args.floor_us):
                errors.append(
                    f"lanes on, width {width}: storm p99 {storm:.0f}us "
                    f"exceeds 2x idle ({idle:.0f}us) and the "
                    f"{args.floor_us:.0f}us floor"
                )
            if float(arm.get("probe_shed", 0)) > 0:
                errors.append(
                    f"lanes on, width {width}: {arm['probe_shed']:.0f} "
                    "control probes were shed"
                )
        if float(on.get("overload_x", 0)) < 2:
            errors.append(
                f"lanes on: overload factor {on.get('overload_x', 0):.1f}x "
                "— the storm never overloaded the event lane"
            )
        if float(on.get("event_shed_total", 0)) <= 0:
            errors.append(
                "lanes on: no event-lane sheds — overload was not absorbed "
                "as fast errors"
            )
        storm = float(on.get("storm_p99_us", 0))
        off_storm = float(off.get("storm_p99_us", 0))
        off_probe_shed = float(off.get("probe_shed", 0))
        if (storm > 0 and off_storm < args.starvation_x * storm
                and off_probe_shed <= 0):
            errors.append(
                f"ablation: storm p99 {off_storm:.0f}us is under "
                f"{args.starvation_x:.0f}x the lanes-on value "
                f"({storm:.0f}us) and no control probes were shed — "
                "starvation not demonstrated"
            )
        # E11: the widest lanes-on arm must absorb meaningfully more of the
        # storm than the serial master handler.
        widest = max((key for key in arms if key[0] == 1),
                     key=lambda key: key[1])
        if widest[1] > 1:
            serial_rate = float(on.get("handled_per_sec", 0))
            wide_rate = float(arms[widest].get("handled_per_sec", 0))
            if serial_rate > 0 and wide_rate < args.width_scaling_x * serial_rate:
                errors.append(
                    f"width scaling: handled_per_sec at width {widest[1]} "
                    f"({wide_rate:.0f}/s) is under {args.width_scaling_x:.1f}x "
                    f"the serial rate ({serial_rate:.0f}/s) — reservation "
                    "parallelism not demonstrated"
                )

    if errors:
        for err in errors:
            print(f"::error title=overload smoke::{err}")
        return 1

    on, off = arms[(1, 1)], arms[(0, 1)]
    widths = sorted(key[1] for key in arms if key[0] == 1)
    rates = ", ".join(
        f"w{width}={float(arms[(1, width)].get('handled_per_sec', 0)):.0f}/s"
        for width in widths
    )
    print(
        "overload smoke OK: "
        f"idle p99 {on['idle_p99_us']:.0f}us, "
        f"storm p99 {on['storm_p99_us']:.0f}us at "
        f"{on['overload_x']:.1f}x overload "
        f"({on['event_shed_total']:.0f} sheds); "
        f"ablation storm p99 {off['storm_p99_us']:.0f}us; "
        f"absorbed throughput {rates}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
