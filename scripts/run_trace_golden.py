#!/usr/bin/env python3
"""Golden trace coverage: drive an example, validate its Perfetto export.

Two modes, both run under ctest:

* ``--mode=local`` runs the observability example in a scratch directory and
  validates obs_trace.json: parses as Chrome trace-event JSON, has at least
  one cross-node trace, and every same-node parent/child pair nests in time
  (check_trace.py --check-nesting).

* ``--mode=multiprocess`` runs the multiprocess driver with --obs-dump so
  every doct-node process writes its own trace dump, merges the per-process
  dumps into one document (trace-id spaces are node-disjoint, so merging is
  a plain concatenation), and validates the STITCHED trace the same way —
  proving causal context survives the real socket wire.

Usage:
  run_trace_golden.py --mode=local --observability=PATH
  run_trace_golden.py --mode=multiprocess --driver=PATH --doct-node=PATH
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCRIPTS = os.path.dirname(os.path.abspath(__file__))
CHECK_TRACE = os.path.join(SCRIPTS, "check_trace.py")


def run(cmd, cwd):
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd, cwd=cwd)
    return proc.returncode


def merge_traces(paths, out_path):
    # The coordinator's collector pulls trace deltas from every shard, so its
    # dump legitimately REPLICATES worker spans; dedup by span id (metadata
    # records have none and always pass through).
    events = []
    seen = set()
    for path in paths:
        with open(path) as f:
            for event in json.load(f)["traceEvents"]:
                sid = event.get("args", {}).get("span_id")
                if sid is not None:
                    if sid in seen:
                        continue
                    seen.add(sid)
                events.append(event)
    with open(out_path, "w") as f:
        json.dump({"traceEvents": events}, f)
    print(f"merged {len(paths)} dumps -> {out_path} ({len(events)} events)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=["local", "multiprocess"],
                        required=True)
    parser.add_argument("--observability", help="observability example binary")
    parser.add_argument("--driver", help="multiprocess driver binary")
    parser.add_argument("--doct-node", help="doct-node binary")
    parser.add_argument("--nodes", type=int, default=3)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="doct-trace-golden-") as tmp:
        if args.mode == "local":
            if not args.observability:
                parser.error("--mode=local requires --observability")
            if run([args.observability], cwd=tmp) != 0:
                print("::error::observability example failed")
                return 1
            return run([sys.executable, CHECK_TRACE,
                        os.path.join(tmp, "obs_trace.json"),
                        "--check-nesting"], cwd=tmp)

        if not args.driver or not args.doct_node:
            parser.error("--mode=multiprocess requires --driver and "
                         "--doct-node")
        dump = os.path.join(tmp, "obs")
        if run([args.driver, f"--nodes={args.nodes}",
                f"--doct-node={args.doct_node}",
                f"--obs-dump={dump}", f"--logs={tmp}/logs"], cwd=tmp) != 0:
            print("::error::multiprocess driver failed")
            return 1
        dumps = [os.path.join(dump, f"trace-node{n}.json")
                 for n in range(1, args.nodes + 1)]
        missing = [p for p in dumps if not os.path.exists(p)]
        if missing:
            print(f"::error::missing trace dumps: {missing}")
            return 1
        merged = os.path.join(tmp, "merged_trace.json")
        merge_traces(dumps, merged)
        return run([sys.executable, CHECK_TRACE, merged, "--check-nesting"],
                   cwd=tmp)


if __name__ == "__main__":
    sys.exit(main())
