#!/usr/bin/env bash
# Run every bench binary and write machine-readable results next to the cwd
# as BENCH_<name>.json (the format CI uploads as an artifact).
#
# Usage: scripts/run_benches.sh [build-dir] [extra benchmark flags...]
set -euo pipefail

build_dir="${1:-build}"
shift || true

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: '$build_dir/bench' not found — build the tree first" >&2
  exit 1
fi

for bin in "$build_dir"/bench/bench_*; do
  [[ -x $bin ]] || continue
  name="$(basename "$bin")"
  echo "== $name"
  "$bin" --benchmark_out="BENCH_${name#bench_}.json" \
         --benchmark_out_format=json "$@"
done
