#!/usr/bin/env python3
"""Bench-regression guard: diff a google-benchmark JSON run against a baseline.

Matches benchmarks by name and compares per-iteration latency (real_time).
Regressions beyond the threshold are reported as GitHub Actions ::warning::
annotations; the exit code stays 0 unless --fail is given, so CI warns
without blocking (runner noise makes hard gates on shared runners flaky).

Usage:
  compare_benches.py BASELINE.json CURRENT.json [--threshold 0.25] [--fail]
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: (time, unit)} for non-aggregate benchmark entries."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions); raw
        # iterations are what the smoke run produces.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        time = bench.get("real_time", bench.get("cpu_time"))
        if name is None or time is None:
            continue
        out[name] = (float(time), bench.get("time_unit", "ns"))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative latency increase that counts as a regression",
    )
    parser.add_argument(
        "--fail",
        action="store_true",
        help="exit non-zero when regressions are found (default: warn only)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    regressions = []
    width = max((len(n) for n in current), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(current):
        cur_time, unit = current[name]
        if name not in baseline:
            print(f"{name:<{width}}  {'--':>12}  {cur_time:>10.1f}{unit}  (new)")
            continue
        base_time, _ = baseline[name]
        delta = (cur_time - base_time) / base_time if base_time > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append((name, base_time, cur_time, delta, unit))
        print(
            f"{name:<{width}}  {base_time:>10.1f}{unit}  {cur_time:>10.1f}{unit}"
            f"  {delta:+7.1%}{flag}"
        )
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  (missing from current run)")

    if regressions:
        for name, base_time, cur_time, delta, unit in regressions:
            print(
                f"::warning title=bench regression::{name}: "
                f"{base_time:.1f}{unit} -> {cur_time:.1f}{unit} ({delta:+.1%}, "
                f"threshold {args.threshold:.0%})"
            )
        if args.fail:
            return 1
    else:
        print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
