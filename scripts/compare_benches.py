#!/usr/bin/env python3
"""Bench-regression guard: diff a google-benchmark JSON run against a baseline.

Matches benchmarks by name and compares per-iteration latency (real_time),
where LOWER is better, plus two families of user counters:

* ``*_per_sec`` rates (such as ``msgs_per_sec``): HIGHER is better — a row
  regresses when the current value drops below baseline * (1 - threshold).
* ``*_p50_us`` / ``*_p90_us`` / ``*_p99_us`` latency percentiles (from the
  obs histogram layer): LOWER is better — a row regresses when the current
  value rises above baseline * (1 + threshold).  ``*_max_us`` is shown for
  context but never flagged: a single scheduler hiccup moves it by orders of
  magnitude.
* ``*_shed_total`` executor admission-refusal counters (the exec layer's
  overload signal): LOWER is better.  A baseline of 0 is never flagged —
  there is no meaningful relative change from zero, and an overload bench
  arm that *expects* sheds reports a non-zero baseline anyway.
* ``*_allocs_per_op`` steady-state allocation counts (the E14 zero-alloc
  substrate gate): LOWER is better, with a HARD-ZERO rule — a baseline of 0
  means the path is certified allocation-free, so ANY current value above
  zero is a regression (no relative threshold applies; 0 -> 1 is the whole
  point of the gate).

Regressions beyond the threshold are reported as GitHub Actions ::warning::
annotations; the exit code stays 0 unless --fail is given, so CI warns
without blocking (runner noise makes hard gates on shared runners flaky).

A metric that exists in the baseline but is absent from the current run is a
hard failure (exit 1) regardless of --fail: a vanished benchmark row or
counter means the bench binary silently lost coverage (a renamed row, a
SkipWithError arm, a counter that stopped being emitted), and "the guard has
nothing to check" must not read as "the guard passed".

Exit codes (so CI can tell the failure modes apart):
  0  compared successfully, no regression beyond the threshold (or
     regressions found but --fail not given — annotations only)
  1  regression beyond the threshold and --fail was given; the CURRENT
     results file is missing/unreadable (the run itself failed); or a
     benchmark/counter present in the baseline is missing from the
     current run
  2  the BASELINE file is missing/unreadable — nothing to compare against.
     CI treats this as a warning (e.g. a brand-new bench binary whose
     baseline has not been committed yet), not a blocking failure.

Usage:
  compare_benches.py BASELINE.json CURRENT.json [--threshold 0.25] [--fail]
"""

import argparse
import json
import sys

# Keys in a benchmark entry that are never user counters.
_RESERVED = {
    "name", "run_name", "run_type", "family_index", "per_family_instance_index",
    "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "aggregate_unit",
    "error_occurred", "error_message", "label",
}


# User-counter suffixes with a defined direction.
_RATE_SUFFIXES = ("_per_sec",)
_LATENCY_SUFFIXES = ("_p50_us", "_p90_us", "_p99_us", "_max_us")
_SHED_SUFFIXES = ("_shed_total",)
_ALLOC_SUFFIXES = ("_allocs_per_op",)
# Shown but never flagged (single outliers dominate the max).
_UNFLAGGED_SUFFIXES = ("_max_us",)


def load_benchmarks(path):
    """Returns {name: {"time": float, "unit": str, "rates": {...},
    "latencies": {...}}} for non-aggregate benchmark entries."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions); raw
        # iterations are what the smoke run produces.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        time = bench.get("real_time", bench.get("cpu_time"))
        if name is None or time is None:
            continue
        # User counters are inlined as extra numeric fields; only the ones
        # with a known suffix have a direction we can reason about
        # (throughput: higher is better; latency percentiles: lower is
        # better) — everything else (ratios like msgs/locate) is
        # informational and skipped.
        rates = {}
        latencies = {}
        sheds = {}
        allocs = {}
        for key, value in bench.items():
            if key in _RESERVED or not isinstance(value, (int, float)):
                continue
            if key.endswith(_RATE_SUFFIXES):
                rates[key] = float(value)
            elif key.endswith(_LATENCY_SUFFIXES):
                latencies[key] = float(value)
            elif key.endswith(_SHED_SUFFIXES):
                sheds[key] = float(value)
            elif key.endswith(_ALLOC_SUFFIXES):
                allocs[key] = float(value)
        out[name] = {
            "time": float(time),
            "unit": bench.get("time_unit", "ns"),
            "rates": rates,
            "latencies": latencies,
            "sheds": sheds,
            "allocs": allocs,
        }
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative change that counts as a regression (latency increase "
        "or throughput decrease)",
    )
    parser.add_argument(
        "--latency-floor-us",
        type=float,
        default=0.0,
        help="latency percentile rows where baseline AND current are both "
        "below this are shown but never flagged — sub-floor values are "
        "scheduler noise, and relative change between them is meaningless",
    )
    parser.add_argument(
        "--fail",
        action="store_true",
        help="exit non-zero when regressions are found (default: warn only)",
    )
    args = parser.parse_args()

    # Distinct failure modes: a missing BASELINE means "nothing to compare
    # against" (exit 2; CI warns — new bench, baseline not committed yet),
    # while a missing CURRENT means the bench run itself failed (exit 1).
    try:
        baseline = load_benchmarks(args.baseline)
    except (OSError, json.JSONDecodeError) as exc:
        print(
            f"::warning title=bench baseline missing::cannot read baseline "
            f"{args.baseline}: {exc}; skipping comparison — commit a "
            "baseline to enable the regression guard"
        )
        return 2
    try:
        current = load_benchmarks(args.current)
    except (OSError, json.JSONDecodeError) as exc:
        print(
            f"::error title=bench results unreadable::cannot read current "
            f"results {args.current}: {exc} — the bench run itself failed"
        )
        return 1

    regressions = []
    rows = []  # (label, baseline_str, current_str, delta, is_regression)
    # Metrics the baseline has but the current run lost — always fatal.
    missing = [name for name in sorted(set(baseline) - set(current))]

    for name in sorted(current):
        cur = current[name]
        unit = cur["unit"]
        if name not in baseline:
            rows.append((name, "--", f"{cur['time']:.1f}{unit}", None, False))
            continue
        base = baseline[name]
        base_time, cur_time = base["time"], cur["time"]
        delta = (cur_time - base_time) / base_time if base_time > 0 else 0.0
        slow = delta > args.threshold
        if slow:
            regressions.append(
                (name, f"{base_time:.1f}{unit}", f"{cur_time:.1f}{unit}", delta)
            )
        rows.append(
            (name, f"{base_time:.1f}{unit}", f"{cur_time:.1f}{unit}", delta, slow)
        )
        # Throughput counters: higher is better, so the sign flips.
        for counter, cur_rate in sorted(cur["rates"].items()):
            base_rate = base["rates"].get(counter)
            label = f"{name} [{counter}]"
            if base_rate is None:
                rows.append((label, "--", f"{cur_rate:,.0f}", None, False))
                continue
            rate_delta = (
                (cur_rate - base_rate) / base_rate if base_rate > 0 else 0.0
            )
            drop = rate_delta < -args.threshold
            if drop:
                regressions.append(
                    (label, f"{base_rate:,.0f}", f"{cur_rate:,.0f}", rate_delta)
                )
            rows.append(
                (label, f"{base_rate:,.0f}", f"{cur_rate:,.0f}", rate_delta, drop)
            )
        # Latency percentile counters: lower is better, same sign as time.
        for counter, cur_lat in sorted(cur["latencies"].items()):
            base_lat = base["latencies"].get(counter)
            label = f"{name} [{counter}]"
            if base_lat is None:
                rows.append((label, "--", f"{cur_lat:,.1f}us", None, False))
                continue
            lat_delta = (cur_lat - base_lat) / base_lat if base_lat > 0 else 0.0
            below_floor = (base_lat < args.latency_floor_us
                           and cur_lat < args.latency_floor_us)
            worse = (lat_delta > args.threshold
                     and not below_floor
                     and not counter.endswith(_UNFLAGGED_SUFFIXES))
            if worse:
                regressions.append(
                    (label, f"{base_lat:,.1f}us", f"{cur_lat:,.1f}us", lat_delta)
                )
            rows.append(
                (label, f"{base_lat:,.1f}us", f"{cur_lat:,.1f}us", lat_delta,
                 worse)
            )
        # Shed counters: lower is better, but a zero baseline has no
        # meaningful relative change — show those rows, never flag them.
        for counter, cur_shed in sorted(cur["sheds"].items()):
            base_shed = base["sheds"].get(counter)
            label = f"{name} [{counter}]"
            if base_shed is None:
                rows.append((label, "--", f"{cur_shed:,.0f}", None, False))
                continue
            if base_shed == 0:
                rows.append(
                    (label, "0", f"{cur_shed:,.0f}", None, False)
                )
                continue
            shed_delta = (cur_shed - base_shed) / base_shed
            worse = shed_delta > args.threshold
            if worse:
                regressions.append(
                    (label, f"{base_shed:,.0f}", f"{cur_shed:,.0f}",
                     shed_delta)
                )
            rows.append(
                (label, f"{base_shed:,.0f}", f"{cur_shed:,.0f}", shed_delta,
                 worse)
            )
        # Allocation counters: lower is better.  A zero baseline is a
        # certification, not a missing signal — the hard-zero gate flags ANY
        # non-zero current value (a fresh allocation on a certified-free path
        # is exactly the regression this family exists to catch).
        for counter, cur_alloc in sorted(cur.get("allocs", {}).items()):
            base_alloc = base.get("allocs", {}).get(counter)
            label = f"{name} [{counter}]"
            if base_alloc is None:
                rows.append((label, "--", f"{cur_alloc:,.2f}", None, False))
                continue
            if base_alloc == 0:
                worse = cur_alloc > 0
                alloc_delta = None
            else:
                alloc_delta = (cur_alloc - base_alloc) / base_alloc
                worse = alloc_delta > args.threshold
            if worse:
                regressions.append(
                    (label, f"{base_alloc:,.2f}", f"{cur_alloc:,.2f}",
                     alloc_delta if alloc_delta is not None else float("inf"))
                )
            rows.append(
                (label, f"{base_alloc:,.2f}", f"{cur_alloc:,.2f}", alloc_delta,
                 worse)
            )
        # Counters the baseline tracked for this row but the current run no
        # longer emits — each one is lost guard coverage.
        for family in ("rates", "latencies", "sheds", "allocs"):
            for counter in sorted(set(base[family]) - set(cur[family])):
                missing.append(f"{name} [{counter}]")

    width = max((len(r[0]) for r in rows), default=9)
    print(f"{'benchmark':<{width}}  {'baseline':>14}  {'current':>14}  delta")
    for label, base_str, cur_str, delta, flagged in rows:
        delta_str = "(new)" if delta is None else f"{delta:+7.1%}"
        flag = "  <-- REGRESSION" if flagged else ""
        print(f"{label:<{width}}  {base_str:>14}  {cur_str:>14}  {delta_str}{flag}")
    for label in missing:
        print(f"{label:<{width}}  (missing from current run)")

    if regressions:
        for label, base_str, cur_str, delta in regressions:
            print(
                f"::warning title=bench regression::{label}: "
                f"{base_str} -> {cur_str} ({delta:+.1%}, "
                f"threshold {args.threshold:.0%})"
            )
    else:
        print(f"\nno regressions beyond {args.threshold:.0%}")
    if missing:
        for label in missing:
            print(
                f"::error title=bench metric vanished::{label} exists in the "
                f"baseline {args.baseline} but is missing from the current "
                "run — a lost row/counter silently disables the regression "
                "guard; fix the bench or regenerate the baseline"
            )
        return 1
    if regressions and args.fail:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
