#!/usr/bin/env python3
"""Always-on telemetry tax gate for bench_e13_telemetry results.

Pairs benchmark rows by name — ``...TelemetryOn`` vs ``...TelemetryOff`` —
and compares their latency-percentile user counters (``*_p50_us`` /
``*_p90_us`` / ``*_p99_us``).  The On arm runs with metrics, tracing, the
flight-recorder ring, AND the collector thread live; the Off arm is the
obs-disabled baseline from the same binary in the same process.

A pair FAILS when the On value exceeds Off by more than ``--pct`` (relative)
AND more than ``--floor-us`` (absolute).  Both conditions must hold: the
percentage alone would flag sub-microsecond scheduler noise on a ~40us
round trip, and the absolute floor alone would let a large slow path hide
inside a big baseline.  ``*_max_us`` is reported but never gated (a single
scheduler hiccup moves it by orders of magnitude).

Exit codes:
  0  every pair within budget
  1  at least one pair over budget, or an On row without its Off twin
  2  results file missing/unreadable

Usage:
  check_telemetry.py RESULTS.json [--pct 0.03] [--floor-us 25]
"""

import argparse
import json
import sys

_GATED_SUFFIXES = ("_p50_us", "_p90_us", "_p99_us")
_SHOWN_SUFFIXES = ("_max_us",)


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # Strip google-benchmark's argument suffixes: the pairing key is the
        # function name ("BM_E13_P2P_TelemetryOn").
        name = bench["name"].split("/")[0]
        rows[name] = bench
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results")
    parser.add_argument("--pct", type=float, default=0.03,
                        help="relative overhead budget (default 3%%)")
    parser.add_argument("--floor-us", type=float, default=25.0,
                        help="absolute overhead floor in us (default 25)")
    args = parser.parse_args()

    try:
        rows = load_rows(args.results)
    except (OSError, ValueError) as e:
        print(f"check_telemetry: cannot read {args.results}: {e}")
        return 2

    pairs = 0
    failures = 0
    for name, on_row in sorted(rows.items()):
        if "TelemetryOn" not in name:
            continue
        off_name = name.replace("TelemetryOn", "TelemetryOff")
        off_row = rows.get(off_name)
        if off_row is None:
            print(f"FAIL {name}: no {off_name} twin in results")
            failures += 1
            continue
        pairs += 1
        for key, on_value in sorted(on_row.items()):
            if not isinstance(on_value, (int, float)):
                continue
            if not key.endswith(_GATED_SUFFIXES + _SHOWN_SUFFIXES):
                continue
            off_value = off_row.get(key)
            if not isinstance(off_value, (int, float)):
                print(f"FAIL {name}.{key}: missing from {off_name}")
                failures += 1
                continue
            delta = on_value - off_value
            rel = delta / off_value if off_value > 0 else 0.0
            gated = key.endswith(_GATED_SUFFIXES)
            over = gated and delta > args.floor_us and rel > args.pct
            tag = "FAIL" if over else "  ok"
            if over:
                failures += 1
            print(f"{tag} {name}.{key}: off={off_value:.1f}us "
                  f"on={on_value:.1f}us ({rel:+.1%})"
                  f"{'' if gated else ' [not gated]'}")

    if pairs == 0:
        print("check_telemetry: no TelemetryOn/Off pairs found")
        return 1
    if failures:
        print(f"check_telemetry: {failures} metric(s) over the "
              f"{args.pct:.0%}+{args.floor_us:.0f}us budget")
        return 1
    print(f"check_telemetry: {pairs} pair(s) within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
