#!/usr/bin/env python3
"""Validate a Chrome trace-event export from the obs layer.

Checks that the file is valid JSON in the ``{"traceEvents": [...]}`` shape,
that it contains complete ("X") spans, and — unless --allow-local is given —
that at least one trace id has spans on two or more nodes (pids), i.e. the
causal context actually crossed the wire.

Usage:
  check_trace.py TRACE.json [--allow-local]
"""

import argparse
import json
import sys
from collections import defaultdict


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--allow-local",
        action="store_true",
        help="don't require a cross-node trace (single-node scenarios)",
    )
    args = parser.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        print(f"::error title=empty trace::{args.trace} has no spans")
        return 1

    nodes_by_trace = defaultdict(set)
    for span in spans:
        nodes_by_trace[span["args"]["trace_id"]].add(span["pid"])
    cross = sum(1 for nodes in nodes_by_trace.values() if len(nodes) >= 2)
    names = sorted({span["name"] for span in spans})
    print(
        f"{args.trace}: {len(spans)} spans, {len(nodes_by_trace)} traces, "
        f"{cross} cross-node, span names: {', '.join(names)}"
    )
    if cross == 0 and not args.allow_local:
        print(
            f"::error title=no cross-node trace::{args.trace} has no trace "
            "spanning two nodes"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
