#!/usr/bin/env python3
"""Validate a Chrome trace-event export from the obs layer.

Checks that the file is valid JSON in the ``{"traceEvents": [...]}`` shape,
that it contains complete ("X") spans, and — unless --allow-local is given —
that at least one trace id has spans on two or more nodes (pids), i.e. the
causal context actually crossed the wire.

With --check-nesting it additionally validates the parent/child structure:
span ids are unique, parent links never form a cycle, and every child whose
parent lives on the SAME node is time-contained within the parent (with a
slack allowance for clock reads taken on either side of a queue hop).
Cross-node children are exempt from containment — the child's wall clock is
a different process's clock.

Usage:
  check_trace.py TRACE.json [--allow-local] [--check-nesting]
                 [--slack-us 1000]
"""

import argparse
import json
import sys
from collections import defaultdict


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--allow-local",
        action="store_true",
        help="don't require a cross-node trace (single-node scenarios)",
    )
    parser.add_argument(
        "--check-nesting",
        action="store_true",
        help="validate span-id uniqueness, acyclic parents, and same-node "
        "parent/child time containment",
    )
    parser.add_argument(
        "--slack-us",
        type=int,
        default=1000,
        help="containment slack in microseconds (default 1000)",
    )
    args = parser.parse_args()

    with open(args.trace) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        print(f"::error title=empty trace::{args.trace} has no spans")
        return 1

    nodes_by_trace = defaultdict(set)
    for span in spans:
        nodes_by_trace[span["args"]["trace_id"]].add(span["pid"])
    cross = sum(1 for nodes in nodes_by_trace.values() if len(nodes) >= 2)
    names = sorted({span["name"] for span in spans})
    print(
        f"{args.trace}: {len(spans)} spans, {len(nodes_by_trace)} traces, "
        f"{cross} cross-node, span names: {', '.join(names)}"
    )
    if cross == 0 and not args.allow_local:
        print(
            f"::error title=no cross-node trace::{args.trace} has no trace "
            "spanning two nodes"
        )
        return 1

    if args.check_nesting and not check_nesting(spans, args.slack_us):
        return 1
    return 0


def check_nesting(spans, slack_us):
    by_id = {}
    for span in spans:
        sid = span["args"]["span_id"]
        if sid in by_id:
            print(f"::error title=duplicate span id::span_id {sid} appears "
                  "more than once")
            return False
        by_id[sid] = span

    contained = 0
    for span in spans:
        parent_id = span["args"].get("parent", "0")
        if parent_id == "0":
            continue
        # Walk the parent chain to the root; a revisited span is a cycle.
        seen = set()
        cursor = span
        while cursor is not None:
            sid = cursor["args"]["span_id"]
            if sid in seen:
                print(f"::error title=parent cycle::span_id {sid} is its "
                      "own ancestor")
                return False
            seen.add(sid)
            cursor = by_id.get(cursor["args"].get("parent", "0"))

        parent = by_id.get(parent_id)
        if parent is None:
            # The parent span may legitimately be missing: ring eviction, or
            # a dump taken from one process of a multi-process trace.
            continue
        if parent["pid"] != span["pid"]:
            continue  # cross-node child: different process clock
        if span["args"]["trace_id"] != parent["args"]["trace_id"]:
            print(f"::error title=trace mismatch::span "
                  f"{span['args']['span_id']} and parent {parent_id} carry "
                  "different trace ids")
            return False
        lo = parent["ts"] - slack_us
        hi = parent["ts"] + parent["dur"] + slack_us
        if span["ts"] < lo or span["ts"] + span["dur"] > hi:
            print(f"::error title=nesting violation::span "
                  f"{span['args']['span_id']} [{span['ts']}, "
                  f"{span['ts'] + span['dur']}] escapes same-node parent "
                  f"{parent_id} [{parent['ts']}, "
                  f"{parent['ts'] + parent['dur']}] beyond {slack_us}us")
            return False
        contained += 1
    print(f"nesting ok: {contained} same-node parent/child containments")
    return True


if __name__ == "__main__":
    sys.exit(main())
