// Shared helpers for the benchmark harness.  Each bench binary regenerates
// one experiment from DESIGN.md §5 (the paper has no quantitative evaluation;
// these benches cover the §5.3 table plus every qualitative performance claim
// — see EXPERIMENTS.md for the measured results and expected shapes).
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"

namespace doct::bench {

using namespace std::chrono_literals;

// Spawns `count` threads in one group that sleep-poll until released; they
// are responsive event targets (delivery points every ~1ms).
struct TargetGroup {
  // `setup` (optional) runs inside each thread before it starts polling —
  // use it to attach handlers.
  TargetGroup(runtime::NodeRuntime& node, GroupId group, int count,
              std::function<void()> setup = {}) {
    for (int i = 0; i < count; ++i) {
      kernel::SpawnOptions options;
      options.group = group;
      tids.push_back(node.kernel.spawn(
          [this, &node, setup] {
            if (setup) setup();
            ready.fetch_add(1);
            while (!release.load()) {
              if (!node.kernel.sleep_for(1ms).is_ok()) return;
            }
          },
          options));
    }
    while (ready.load() < count) std::this_thread::sleep_for(1ms);
  }

  void join(runtime::NodeRuntime& node) {
    release = true;
    for (ThreadId tid : tids) node.kernel.join_thread(tid, 30s);
  }

  std::vector<ThreadId> tids;
  std::atomic<int> ready{0};
  std::atomic<bool> release{false};
};

// A passive object whose handler for `event_name` counts deliveries.
inline std::shared_ptr<objects::PassiveObject> make_counting_object(
    const std::string& event_name, std::shared_ptr<std::atomic<long>> counter) {
  auto object = std::make_shared<objects::PassiveObject>("bench_object");
  object->define_entry(
      "on_event",
      [counter](objects::CallCtx&) -> Result<objects::Payload> {
        counter->fetch_add(1);
        return objects::Payload{
            static_cast<std::uint8_t>(kernel::Verdict::kResume)};
      },
      objects::Visibility::kPrivate);
  object->define_handler(event_name, "on_event");
  return object;
}

inline void spin_until(const std::atomic<long>& counter, long target) {
  while (counter.load() < target) std::this_thread::yield();
}

// Per-operation latency distribution for a bench loop, backed by the obs
// log-bucketed histogram (so benches and production sites share one bucket
// scheme).  Usage:
//
//   LatencyPercentiles lat;
//   for (auto _ : state) { auto t0 = lat.begin(); op(); lat.end(t0); }
//   lat.flush(state, "op");   // -> op_p50_us / op_p90_us / op_p99_us /
//                             //    op_max_us user counters
//
// flush() only emits when samples were recorded, and the counters use the
// latency suffixes compare_benches.py treats as lower-is-better.
class LatencyPercentiles {
 public:
  [[nodiscard]] std::int64_t begin() const { return obs::now_us(); }

  void end(std::int64_t t0) { hist_.record_us(obs::now_us() - t0); }

  void record_us(std::int64_t us) { hist_.record_us(us); }

  // For benches that aggregate across phases/iterations themselves instead
  // of emitting one set of counters per loop.
  [[nodiscard]] obs::HistogramSnapshot snapshot_and_reset() {
    const obs::HistogramSnapshot snap = hist_.snapshot();
    hist_.reset();
    return snap;
  }

  void flush(benchmark::State& state, const std::string& prefix) {
    const obs::HistogramSnapshot snap = hist_.snapshot();
    if (snap.count == 0) return;
    state.counters[prefix + "_p50_us"] = snap.p50;
    state.counters[prefix + "_p90_us"] = snap.p90;
    state.counters[prefix + "_p99_us"] = snap.p99;
    state.counters[prefix + "_max_us"] = static_cast<double>(snap.max);
    hist_.reset();
  }

 private:
  obs::Histogram hist_;
};

}  // namespace doct::bench
