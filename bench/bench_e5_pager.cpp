// E5 — external pager vs kernel default pager (§6.4).
//
// Three fault-service paths over {64, 256, 1024} pages:
//   * kernel DSM pager: remote read faults served by the coherence protocol
//     (requester -> home -> owner),
//   * user-level pager, buddy-handler path: VM_FAULT suspends the thread,
//     the pager server object supplies the page, the thread resumes — the
//     paper's full §6.4 machinery,
//   * user-level pager, direct-fetch path (no logical thread): lower bound
//     for the user pager without the event-chain cost.
//
// Expected shape: the kernel pager is the cheapest (one RPC round trip); the
// buddy-handler path pays the surrogate + unscheduled invocation + install
// RPC on top — that premium is the price of user-level control the paper
// argues is worth paying for flexibility.
#include "bench_util.hpp"

#include "services/pager/pager.hpp"

namespace doct::bench {
namespace {

constexpr std::size_t kPageSize = 4096;

void BM_KernelPager_RemoteFaults(benchmark::State& state) {
  const auto pages = static_cast<std::size_t>(state.range(0));
  runtime::Cluster cluster(2);
  auto& home = cluster.node(0);
  auto& requester = cluster.node(1);
  const SegmentId seg{700};
  if (!home.dsm.create_segment(seg, pages).is_ok() ||
      !requester.dsm.attach_segment(seg, home.id, pages).is_ok()) {
    state.SkipWithError("segment setup failed");
    return;
  }
  for (auto _ : state) {
    for (std::size_t p = 0; p < pages; ++p) {
      auto data = requester.dsm.read(seg, p * kPageSize, 8);
      if (!data.is_ok()) {
        state.SkipWithError("read failed");
        return;
      }
      benchmark::DoNotOptimize(data);
    }
    state.PauseTiming();
    for (std::size_t p = 0; p < pages; ++p) requester.dsm.evict_page(seg, p);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(pages));
  state.counters["faults"] =
      static_cast<double>(requester.dsm.stats().read_faults);
}
BENCHMARK(BM_KernelPager_RemoteFaults)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->MinTime(0.2);

void BM_UserPager_BuddyHandler(benchmark::State& state) {
  const auto pages = static_cast<std::size_t>(state.range(0));
  runtime::Cluster cluster(2);
  auto& server_node = cluster.node(0);
  auto& fault_node = cluster.node(1);
  const ObjectId server = server_node.objects.add_object(
      services::PagerServer::make(server_node.rpc));
  services::PagerClient client(fault_node.events, fault_node.objects,
                               fault_node.dsm, fault_node.rpc);
  const SegmentId seg{701};
  if (!client.create_paged_segment(seg, pages, server).is_ok()) {
    state.SkipWithError("segment setup failed");
    return;
  }

  for (auto _ : state) {
    std::atomic<bool> ok{true};
    const ThreadId tid = fault_node.kernel.spawn([&] {
      client.arm_current_thread(server);
      for (std::size_t p = 0; p < pages; ++p) {
        if (!fault_node.dsm.read(seg, p * kPageSize, 8).is_ok()) {
          ok = false;
          return;
        }
      }
    });
    fault_node.kernel.join_thread(tid, std::chrono::minutes(2));
    if (!ok.load()) {
      state.SkipWithError("fault failed");
      return;
    }
    state.PauseTiming();
    for (std::size_t p = 0; p < pages; ++p) fault_node.dsm.evict_page(seg, p);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(pages));
}
BENCHMARK(BM_UserPager_BuddyHandler)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->MinTime(0.2);

void BM_UserPager_DirectFetch(benchmark::State& state) {
  const auto pages = static_cast<std::size_t>(state.range(0));
  runtime::Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId server =
      n0.objects.add_object(services::PagerServer::make(n0.rpc));
  services::PagerClient client(n0.events, n0.objects, n0.dsm, n0.rpc);
  const SegmentId seg{702};
  if (!client.create_paged_segment(seg, pages, server).is_ok()) {
    state.SkipWithError("segment setup failed");
    return;
  }
  for (auto _ : state) {
    for (std::size_t p = 0; p < pages; ++p) {
      auto data = n0.dsm.read(seg, p * kPageSize, 8);
      if (!data.is_ok()) {
        state.SkipWithError("read failed");
        return;
      }
      benchmark::DoNotOptimize(data);
    }
    state.PauseTiming();
    for (std::size_t p = 0; p < pages; ++p) n0.dsm.evict_page(seg, p);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(pages));
}
BENCHMARK(BM_UserPager_DirectFetch)
    ->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->MinTime(0.2);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
