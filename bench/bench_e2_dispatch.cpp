// E2 — object-event dispatch: master handler thread vs thread-per-event
// (§4.3, §7: "To reduce thread-creation costs, it is preferable to employ a
// master handler thread on behalf of a passive object").
//
// Burst sizes {1, 8, 64, 512} of PING-class events are raised at a passive
// object; the benchmark measures time until every event has been handled.
// Expected shape: kMasterThread wins and the gap grows with burst size (one
// OS thread creation per event vs zero).
//
// The WidthScaling arm (E11) lifts the event lane above the §7 serial
// master handler: bursts fan across 8 objects whose handler BLOCKS for
// 100µs — the common handler shape in this system (§5 handlers invoke
// entries on other objects and wait on RPC), and the one that scales with
// lane width on any core count (compute-bound handlers additionally need
// free cores).  Expected shape: events_per_sec grows ~linearly with width
// while per-object order (checked by reservation_test) is unchanged.
#include "bench_util.hpp"

#include <thread>

namespace doct::bench {
namespace {

void run_dispatch_bench(benchmark::State& state,
                        events::ObjectDispatchMode mode) {
  runtime::ClusterConfig config;
  config.node.events.dispatch_mode = mode;
  runtime::Cluster cluster(1, config);
  auto& n0 = cluster.node(0);

  auto counter = std::make_shared<std::atomic<long>>(0);
  const ObjectId oid =
      n0.objects.add_object(make_counting_object("E2_EVENT", counter));
  const EventId event = cluster.registry().register_event("E2_EVENT");

  const long burst = state.range(0);
  for (auto _ : state) {
    const long start = counter->load();
    for (long i = 0; i < burst; ++i) {
      if (!n0.events.raise(event, oid).is_ok()) {
        state.SkipWithError("raise failed");
        return;
      }
    }
    spin_until(*counter, start + burst);
  }
  state.SetItemsProcessed(state.iterations() * burst);
}

void BM_Dispatch_MasterThread(benchmark::State& state) {
  run_dispatch_bench(state, events::ObjectDispatchMode::kMasterThread);
}
void BM_Dispatch_ThreadPerEvent(benchmark::State& state) {
  run_dispatch_bench(state, events::ObjectDispatchMode::kThreadPerEvent);
}

BENCHMARK(BM_Dispatch_MasterThread)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Dispatch_ThreadPerEvent)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

// E11 — width scaling.  Arg = event-lane width.  Eight objects, a handler
// that blocks 100µs (an invocation/RPC wait), 256-event bursts spread
// round-robin.  At width 1 this is the paper's serial master handler — the
// lane drains one blocked handler at a time; wider lanes overlap the waits
// of disjoint objects under reservation keys.  events_per_sec is computed
// from WALL time (kIsRate counters divide by CPU time, which blocking
// handlers barely consume).
void BM_Dispatch_WidthScaling(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  runtime::ClusterConfig config;
  config.node.kernel.executor.workers = 8;
  config.node.kernel.executor.event.width = width;
  config.node.kernel.executor.event.capacity = 0;  // measure service, not shed
  runtime::Cluster cluster(1, config);
  auto& n0 = cluster.node(0);

  constexpr int kObjects = 8;
  constexpr long kBurst = 256;
  auto counter = std::make_shared<std::atomic<long>>(0);
  const EventId event = cluster.registry().register_event("E11_EVENT");
  std::vector<ObjectId> oids;
  for (int i = 0; i < kObjects; ++i) {
    auto object = std::make_shared<objects::PassiveObject>("bench_object");
    object->define_entry(
        "on_event",
        [counter](objects::CallCtx&) -> Result<objects::Payload> {
          std::this_thread::sleep_for(100us);
          counter->fetch_add(1);
          return objects::Payload{
              static_cast<std::uint8_t>(kernel::Verdict::kResume)};
        },
        objects::Visibility::kPrivate);
    object->define_handler("E11_EVENT", "on_event");
    oids.push_back(n0.objects.add_object(object));
  }

  std::int64_t wall_us = 0;
  for (auto _ : state) {
    const long start = counter->load();
    const std::int64_t t0 = obs::now_us();
    for (long i = 0; i < kBurst; ++i) {
      if (!n0.events.raise(event, oids[i % kObjects]).is_ok()) {
        state.SkipWithError("raise failed");
        return;
      }
    }
    spin_until(*counter, start + kBurst);
    wall_us += obs::now_us() - t0;
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
  state.counters["width"] = static_cast<double>(width);
  if (wall_us > 0) {
    state.counters["events_per_sec"] =
        static_cast<double>(state.iterations() * kBurst) * 1e6 /
        static_cast<double>(wall_us);
  }
}

BENCHMARK(BM_Dispatch_WidthScaling)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
