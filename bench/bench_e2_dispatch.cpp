// E2 — object-event dispatch: master handler thread vs thread-per-event
// (§4.3, §7: "To reduce thread-creation costs, it is preferable to employ a
// master handler thread on behalf of a passive object").
//
// Burst sizes {1, 8, 64, 512} of PING-class events are raised at a passive
// object; the benchmark measures time until every event has been handled.
// Expected shape: kMasterThread wins and the gap grows with burst size (one
// OS thread creation per event vs zero).
#include "bench_util.hpp"

namespace doct::bench {
namespace {

void run_dispatch_bench(benchmark::State& state,
                        events::ObjectDispatchMode mode) {
  runtime::ClusterConfig config;
  config.node.events.dispatch_mode = mode;
  runtime::Cluster cluster(1, config);
  auto& n0 = cluster.node(0);

  auto counter = std::make_shared<std::atomic<long>>(0);
  const ObjectId oid =
      n0.objects.add_object(make_counting_object("E2_EVENT", counter));
  const EventId event = cluster.registry().register_event("E2_EVENT");

  const long burst = state.range(0);
  for (auto _ : state) {
    const long start = counter->load();
    for (long i = 0; i < burst; ++i) {
      if (!n0.events.raise(event, oid).is_ok()) {
        state.SkipWithError("raise failed");
        return;
      }
    }
    spin_until(*counter, start + burst);
  }
  state.SetItemsProcessed(state.iterations() * burst);
}

void BM_Dispatch_MasterThread(benchmark::State& state) {
  run_dispatch_bench(state, events::ObjectDispatchMode::kMasterThread);
}
void BM_Dispatch_ThreadPerEvent(benchmark::State& state) {
  run_dispatch_bench(state, events::ObjectDispatchMode::kThreadPerEvent);
}

BENCHMARK(BM_Dispatch_MasterThread)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Dispatch_ThreadPerEvent)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
