// T1 — the paper's §5.3 addressing/blocking table.
//
// | raise(e,tid)           | thread tid                        |
// | raise(e,gtid)          | threads in group gtid             |
// | raise(e,oid)           | object oid                        |
// | raise_and_wait(e,tid)  | thread tid, synchronously         |
// | raise_and_wait(e,gtid) | group gtid, synchronously         |
// | raise_and_wait(e,oid)  | object oid, synchronously         |
//
// Setup: 4-node cluster, a group of 8 target threads spread over nodes 1-2,
// a passive object on node 3, raiser on node 0.  Each benchmark measures one
// row.  Async rows measure time-to-accepted (delivery is asynchronous);
// sync rows measure raise -> handler -> resume round trip.  Thread targets
// poll every ~1ms, so sync rows include that cooperative-delivery wait —
// that IS the cost model of delivery-point-based notification.
#include "bench_util.hpp"

#include "events/event_system.hpp"

namespace doct::bench {
namespace {

struct T1World {
  T1World() : cluster(4) {
    auto& raiser_node = cluster.node(0);
    group = raiser_node.kernel.create_group();
    counter = std::make_shared<std::atomic<long>>(0);
    object_id = cluster.node(3).objects.add_object(
        make_counting_object("T1_EVENT", counter));
    event = cluster.registry().register_event("T1_EVENT");
    // Every target thread attaches a cheap per-thread handler at spawn so
    // deliveries are actually handled and sync raises are resumed by the
    // handler's completion.
    cluster.procedures().register_procedure(
        "t1_handler", [this](events::PerThreadCallCtx&) {
          handled.fetch_add(1);
          return kernel::Verdict::kResume;
        });
    const auto attach1 = [this] {
      cluster.node(1).events.attach_handler(event, "t1_handler", events::OWN_CONTEXT);
    };
    const auto attach2 = [this] {
      cluster.node(2).events.attach_handler(event, "t1_handler", events::OWN_CONTEXT);
    };
    targets1 = std::make_unique<TargetGroup>(cluster.node(1), group, 4, attach1);
    targets2 = std::make_unique<TargetGroup>(cluster.node(2), group, 4, attach2);
  }

  ~T1World() {
    targets1->join(cluster.node(1));
    targets2->join(cluster.node(2));
  }

  runtime::Cluster cluster;
  GroupId group;
  std::unique_ptr<TargetGroup> targets1, targets2;
  std::shared_ptr<std::atomic<long>> counter;
  std::atomic<long> handled{0};
  ObjectId object_id;
  EventId event;
};

T1World& world() {
  static T1World* w = new T1World();  // leaked deliberately: benchmark exit order
  return *w;
}

void BM_Row1_Raise_Thread(benchmark::State& state) {
  auto& w = world();
  std::size_t i = 0;
  for (auto _ : state) {
    const ThreadId target = w.targets1->tids[i++ % w.targets1->tids.size()];
    benchmark::DoNotOptimize(w.cluster.node(0).events.raise(w.event, target));
  }
}
BENCHMARK(BM_Row1_Raise_Thread)->Unit(benchmark::kMicrosecond);

void BM_Row2_Raise_Group(benchmark::State& state) {
  auto& w = world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.cluster.node(0).events.raise(w.event, w.group));
  }
}
BENCHMARK(BM_Row2_Raise_Group)->Unit(benchmark::kMicrosecond);

void BM_Row3_Raise_Object(benchmark::State& state) {
  auto& w = world();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.cluster.node(0).events.raise(w.event, w.object_id));
  }
  state.counters["handled"] = static_cast<double>(w.counter->load());
}
BENCHMARK(BM_Row3_Raise_Object)->Unit(benchmark::kMicrosecond);

void BM_Row4_RaiseAndWait_Thread(benchmark::State& state) {
  auto& w = world();
  std::size_t i = 0;
  for (auto _ : state) {
    const ThreadId target = w.targets2->tids[i++ % w.targets2->tids.size()];
    auto verdict = w.cluster.node(0).events.raise_and_wait(w.event, target);
    if (!verdict.is_ok()) state.SkipWithError("sync raise failed");
  }
}
BENCHMARK(BM_Row4_RaiseAndWait_Thread)->Unit(benchmark::kMicrosecond);

void BM_Row5_RaiseAndWait_Group(benchmark::State& state) {
  auto& w = world();
  for (auto _ : state) {
    auto verdict = w.cluster.node(0).events.raise_and_wait(w.event, w.group);
    if (!verdict.is_ok()) state.SkipWithError("sync group raise failed");
  }
}
BENCHMARK(BM_Row5_RaiseAndWait_Group)->Unit(benchmark::kMicrosecond);

void BM_Row6_RaiseAndWait_Object(benchmark::State& state) {
  auto& w = world();
  for (auto _ : state) {
    auto verdict =
        w.cluster.node(0).events.raise_and_wait(w.event, w.object_id);
    if (!verdict.is_ok()) state.SkipWithError("sync object raise failed");
  }
}
BENCHMARK(BM_Row6_RaiseAndWait_Object)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
