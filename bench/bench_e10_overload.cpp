// E10 — control-lane latency under event overload (the executor's reason to
// exist).  A raiser storm drives the event lane far past its service
// capacity while a probe measures how long control-lane work waits to run.
//
// Sweep: Args are {lanes, width}.  `lanes=1` is the shipped configuration:
// three bounded priority lanes, a control reserve, shed-newest on the event
// lane.  `lanes=0` is the single-lane ablation — every admission funnels
// through one FIFO queue, which is the pre-executor world of "one pool,
// first come first served".  `width` is the event-lane width (E11): the
// storm fans across four sink objects, so reservation scheduling lets a
// wider lane service disjoint sinks concurrently — handled_per_sec should
// scale with width while the control-lane guarantees hold unchanged.
//
// Expected shape: with lanes on, storm_p99_us stays within ~2x idle_p99_us
// (control work overtakes the backlog; the reserve worker never touches it)
// and the overload is absorbed as event-lane sheds, visible to the raisers
// as fast ERROR returns.  With lanes off, control probes queue behind the
// full event backlog: storm_p99_us explodes to the backlog drain time and
// probes themselves start shedding (probe_shed), demonstrating the
// starvation the lanes were built to prevent.
#include "bench_util.hpp"

#include <algorithm>
#include <thread>

namespace doct::bench {
namespace {

constexpr auto kHandlerCost = 200us;  // event-lane service time per event
constexpr auto kStormWindow = 400ms;
constexpr int kRaisers = 6;
constexpr auto kRaiseGap = 50us;  // per-raiser pacing => ~10x+ overcapacity
constexpr int kIdleProbes = 200;
constexpr auto kProbeGap = 1ms;

constexpr int kSinks = 4;

void BM_ControlUnderOverload(benchmark::State& state) {
  const bool lanes = state.range(0) == 1;
  const auto width = static_cast<std::size_t>(state.range(1));

  double idle_p99 = 0;
  double storm_p99 = 0;
  std::uint64_t event_shed = 0;
  std::uint64_t event_submitted = 0;
  std::uint64_t probe_shed_total = 0;
  long raised_total = 0;
  long handled_total = 0;
  std::int64_t storm_wall_us = 0;

  for (auto _ : state) {
    state.PauseTiming();
    runtime::ClusterConfig config;
    config.node.kernel.executor.single_lane = !lanes;
    config.node.kernel.executor.event.width = width;
    runtime::Cluster cluster(1, config);
    auto& n0 = cluster.node(0);

    // The sink objects: each delivery costs kHandlerCost of handler time,
    // so the event lane services ~5k events/s per admitted worker; with
    // width > 1 the reservation scheduler runs disjoint sinks in parallel.
    auto handled = std::make_shared<std::atomic<long>>(0);
    const EventId storm = n0.events.registry().register_event("E10_STORM");
    std::vector<ObjectId> targets;
    for (int i = 0; i < kSinks; ++i) {
      auto object = std::make_shared<objects::PassiveObject>("e10_sink");
      object->define_entry(
          "on_event",
          [handled](objects::CallCtx&) -> Result<objects::Payload> {
            std::this_thread::sleep_for(kHandlerCost);
            handled->fetch_add(1);
            return objects::Payload{
                static_cast<std::uint8_t>(kernel::Verdict::kResume)};
          },
          objects::Visibility::kPrivate);
      object->define_handler("E10_STORM", "on_event");
      targets.push_back(n0.objects.add_object(object));
    }

    // Control-lane probe: timestamped no-op; the latency IS the wait.
    std::atomic<int> probes_done{0};
    std::atomic<int> probes_shed{0};
    auto probe = [&](LatencyPercentiles& lat) {
      const std::int64_t t0 = obs::now_us();
      const Status admitted =
          n0.executor.try_submit(exec::Lane::kControl, [t0, &lat,
                                                        &probes_done] {
            lat.record_us(obs::now_us() - t0);
            probes_done.fetch_add(1);
          });
      if (!admitted.is_ok()) probes_shed.fetch_add(1);
    };
    auto await_probes = [&](int sent) {
      while (probes_done.load() + probes_shed.load() < sent) {
        std::this_thread::sleep_for(1ms);
      }
    };

    // Idle baseline: probe cadence with no competing traffic.
    LatencyPercentiles idle_lat;
    for (int i = 0; i < kIdleProbes; ++i) {
      probe(idle_lat);
      std::this_thread::sleep_for(kProbeGap / 5);
    }
    await_probes(kIdleProbes);
    probes_done = 0;
    probes_shed = 0;
    n0.executor.reset_stats();

    state.ResumeTiming();

    // The storm: paced raisers drive the event lane ~10x past capacity for
    // the whole window; shed raises come back as immediate errors.
    std::atomic<bool> stop{false};
    std::atomic<long> raised{0};
    std::atomic<long> refused{0};
    std::vector<std::thread> raisers;
    raisers.reserve(kRaisers);
    for (int i = 0; i < kRaisers; ++i) {
      raisers.emplace_back([&, i] {
        // Round-robin over the sinks, offset per raiser.
        std::size_t next = static_cast<std::size_t>(i);
        while (!stop.load(std::memory_order_relaxed)) {
          const ObjectId target = targets[next++ % targets.size()];
          if (n0.events.raise(storm, target).is_ok()) {
            raised.fetch_add(1, std::memory_order_relaxed);
          } else {
            refused.fetch_add(1, std::memory_order_relaxed);
          }
          std::this_thread::sleep_for(kRaiseGap);
        }
      });
    }

    LatencyPercentiles storm_lat;
    int storm_probes = 0;
    const std::int64_t storm_begin = obs::now_us();
    const std::int64_t storm_end =
        storm_begin +
        std::chrono::duration_cast<std::chrono::microseconds>(kStormWindow)
            .count();
    while (obs::now_us() < storm_end) {
      probe(storm_lat);
      storm_probes++;
      std::this_thread::sleep_for(kProbeGap);
    }
    stop = true;
    for (auto& raiser : raisers) raiser.join();
    // Probes queued behind a single-lane backlog only finish once the
    // backlog drains; wait so the p99 includes them.
    await_probes(storm_probes);
    storm_wall_us += obs::now_us() - storm_begin;

    state.PauseTiming();
    const exec::ExecutorStats stats = n0.executor.stats();
    const auto& ev = stats.lanes[static_cast<size_t>(exec::Lane::kEvent)];
    event_shed += ev.shed;
    event_submitted += ev.submitted;
    probe_shed_total += static_cast<std::uint64_t>(probes_shed.load());
    raised_total += raised.load() + refused.load();
    handled_total += handled->load();

    const obs::HistogramSnapshot idle_snap = idle_lat.snapshot_and_reset();
    const obs::HistogramSnapshot storm_snap = storm_lat.snapshot_and_reset();
    idle_p99 = std::max(idle_p99, idle_snap.p99);
    storm_p99 = std::max(storm_p99, storm_snap.p99);
    state.ResumeTiming();
  }

  state.counters["idle_p99_us"] = idle_p99;
  state.counters["storm_p99_us"] = storm_p99;
  state.counters["p99_blowup_x"] = idle_p99 > 0 ? storm_p99 / idle_p99 : 0;
  // Attempted raise rate over what the handler actually absorbed — the
  // achieved overload factor (target: >= 10x).
  const double raised = static_cast<double>(raised_total);
  const double handled = static_cast<double>(handled_total);
  state.counters["overload_x"] = handled > 0 ? raised / handled : 0;
  state.counters["event_shed_total"] = static_cast<double>(event_shed);
  const double shed = static_cast<double>(event_shed);
  const double submitted = static_cast<double>(event_submitted);
  state.counters["event_shed_rate"] = submitted > 0 ? shed / submitted : 0;
  state.counters["probe_shed"] = static_cast<double>(probe_shed_total);
  state.counters["lanes"] = lanes ? 1 : 0;
  state.counters["width"] = static_cast<double>(width);
  // Absorbed event throughput over the storm WALL time (kIsRate divides by
  // CPU time, which sleeping handlers barely consume) — the E11
  // width-scaling headline; compare_benches tracks the _per_sec suffix.
  if (storm_wall_us > 0) {
    state.counters["handled_per_sec"] = static_cast<double>(handled_total) *
                                        1e6 /
                                        static_cast<double>(storm_wall_us);
  }
}

BENCHMARK(BM_ControlUnderOverload)
    ->Args({1, 1})   // priority lanes on, serial event lane (shipped config)
    ->Args({1, 2})   // E11: width 2
    ->Args({1, 4})   // E11: width 4
    ->Args({0, 1})   // single-lane ablation
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
