// E3 — handler chaining cost vs chain depth (§4.2).
//
// A target thread carries a LIFO chain of d handlers for one event, all of
// which render kPropagate, so a single raise walks the ENTIRE chain (the
// distributed-lock-cleanup access pattern: d chained unlock routines).
// Expected shape: handling latency linear in d with a small constant;
// attach+detach cost also linear.
#include "bench_util.hpp"

#include "events/event_system.hpp"

namespace doct::bench {
namespace {

void BM_Chain_WalkDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  runtime::Cluster cluster(1);
  auto& n0 = cluster.node(0);

  std::atomic<long> walked{0};
  cluster.procedures().register_procedure(
      "link", [&](events::PerThreadCallCtx&) {
        walked.fetch_add(1);
        return kernel::Verdict::kPropagate;  // continue outward
      });
  const EventId event = cluster.registry().register_event("E3_EVENT");

  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId target = n0.kernel.spawn([&] {
    for (int i = 0; i < depth; ++i) {
      if (!n0.events.attach_handler(event, "link", events::OWN_CONTEXT).is_ok()) {
        return;
      }
    }
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(std::chrono::microseconds(200)).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);

  for (auto _ : state) {
    const long start = walked.load();
    if (!n0.events.raise(event, target).is_ok()) {
      state.SkipWithError("raise failed");
      break;
    }
    spin_until(walked, start + depth);
  }
  state.counters["handlers/raise"] = static_cast<double>(depth);
  release = true;
  n0.kernel.join_thread(target, 30s);
}

BENCHMARK(BM_Chain_WalkDepth)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

void BM_Chain_AttachDetach(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  runtime::Cluster cluster(1);
  auto& n0 = cluster.node(0);
  cluster.procedures().register_procedure(
      "noop", [](events::PerThreadCallCtx&) { return kernel::Verdict::kResume; });
  const EventId event = cluster.registry().register_event("E3_ATTACH");

  // Drive the loop from inside a logical thread (attach targets the current
  // thread); manual timing reports per-(attach depth + detach depth) cost.
  std::atomic<long> ns_total{0};
  std::atomic<long> rounds{0};
  for (auto _ : state) {
    const ThreadId tid = n0.kernel.spawn([&] {
      const auto begin = std::chrono::steady_clock::now();
      std::vector<HandlerId> ids;
      ids.reserve(static_cast<std::size_t>(depth));
      for (int i = 0; i < depth; ++i) {
        auto h = n0.events.attach_handler(event, "noop", events::OWN_CONTEXT);
        if (h.is_ok()) ids.push_back(h.value());
      }
      for (HandlerId id : ids) n0.events.detach_handler(id);
      ns_total += std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - begin)
                      .count();
      rounds++;
    });
    n0.kernel.join_thread(tid, 30s);
  }
  if (rounds.load() > 0) {
    state.counters["ns/attach+detach"] = benchmark::Counter(
        static_cast<double>(ns_total.load()) /
        (static_cast<double>(rounds.load()) * depth));
  }
}

BENCHMARK(BM_Chain_AttachDetach)
    ->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.1);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
