// E8 — invocation vehicles: design goal 2 of §2 says the event mechanism
// "works identically regardless of whether the objects are invoked using RPC
// or DSM".  This bench measures the cost of each vehicle so the semantic
// equivalence (verified by tests) can be weighed against the performance
// trade-off:
//
//   * local        — same-node procedure-call invocation (baseline),
//   * forced RPC   — full travel machinery on one node (serialization +
//                    adopt + delivery points, no real network distance),
//   * remote RPC   — the thread travels to the object's node,
//   * DSM mode     — the thread stays put; the object's state pages fault
//                    over (first access) then hit locally (steady state).
//
// Sweep: nested invocation depth {1, 4}.
#include "bench_util.hpp"

namespace doct::bench {
namespace {

objects::Payload int_payload(std::int64_t v) {
  Writer w;
  w.put(v);
  return std::move(w).take();
}

// Builds `depth` chained objects on `target`; entry "run" recurses through
// the chain and returns a sum.
ObjectId build_chain(runtime::NodeRuntime& target, int depth,
                     objects::InvokeMode mode) {
  ObjectId next;
  for (int i = depth - 1; i >= 0; --i) {
    auto object = std::make_shared<objects::PassiveObject>(
        "e8_" + std::to_string(i));
    const ObjectId next_copy = next;
    object->define_entry("run", [next_copy, mode](objects::CallCtx& ctx)
                                    -> Result<objects::Payload> {
      const auto v = ctx.args.get<std::int64_t>();
      if (!next_copy.valid()) return int_payload(v + 1);
      auto nested = ctx.manager.invoke(next_copy, "run", int_payload(v + 1), mode);
      return nested;
    });
    next = target.objects.add_object(object);
  }
  return next;
}

void run_invoke_bench(benchmark::State& state, bool remote,
                      objects::InvokeMode mode) {
  const int depth = static_cast<int>(state.range(0));
  runtime::Cluster cluster(2);
  auto& caller = cluster.node(0);
  auto& target = remote ? cluster.node(1) : cluster.node(0);
  const ObjectId head = build_chain(target, depth, mode);

  std::atomic<bool> failed{false};
  std::atomic<bool> stop{false};
  std::atomic<long> completed{0};
  // Drive invocations from a logical thread; the benchmark thread paces it.
  std::atomic<long> requested{0};
  const ThreadId driver = caller.kernel.spawn([&] {
    while (!stop.load()) {
      if (requested.load() > completed.load()) {
        auto result = caller.objects.invoke(head, "run", int_payload(0), mode);
        if (!result.is_ok()) {
          failed = true;
          stop = true;
          return;
        }
        completed.fetch_add(1);
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (auto _ : state) {
    const long turn = requested.fetch_add(1) + 1;
    while (completed.load() < turn && !failed.load()) std::this_thread::yield();
    if (failed.load()) {
      state.SkipWithError("invocation failed");
      break;
    }
  }
  stop = true;
  caller.kernel.join_thread(driver, std::chrono::minutes(1));
}

void BM_Invoke_Local(benchmark::State& state) {
  run_invoke_bench(state, false, objects::InvokeMode::kAuto);
}
void BM_Invoke_ForcedRpc_SameNode(benchmark::State& state) {
  run_invoke_bench(state, false, objects::InvokeMode::kRpc);
}
void BM_Invoke_RemoteRpc(benchmark::State& state) {
  run_invoke_bench(state, true, objects::InvokeMode::kRpc);
}

BENCHMARK(BM_Invoke_Local)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Invoke_ForcedRpc_SameNode)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_Invoke_RemoteRpc)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

// DSM mode: counter object whose state lives in a DSM segment homed at node
// 1; the caller on node 0 runs the entry locally and the state pages over.
void BM_Invoke_DsmMode(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  runtime::Cluster cluster(2);
  auto& caller = cluster.node(0);
  auto& home = cluster.node(1);
  const SegmentId seg{800};
  if (!home.dsm.create_segment(seg, 4).is_ok() ||
      !caller.dsm.attach_segment(seg, home.id, 4).is_ok()) {
    state.SkipWithError("segment setup failed");
    return;
  }

  // Chain of DSM-backed objects replicated on the caller.
  ObjectId next;
  for (int i = depth - 1; i >= 0; --i) {
    auto object = std::make_shared<objects::PassiveObject>(
        "e8dsm_" + std::to_string(i));
    const ObjectId next_copy = next;
    const auto offset = static_cast<std::size_t>(i) * 16;
    object->define_entry("run", [next_copy, offset, &caller, seg](
                                    objects::CallCtx& ctx)
                                    -> Result<objects::Payload> {
      auto current = caller.dsm.read(seg, offset, 8);
      if (!current.is_ok()) return current.status();
      Reader r(current.value());
      const auto v = r.get<std::uint64_t>() + 1;
      Writer w;
      w.put(v);
      const Status written = caller.dsm.write(seg, offset, std::move(w).take());
      if (!written.is_ok()) return written;
      if (!next_copy.valid()) return objects::Payload{};
      return ctx.manager.invoke(next_copy, "run", {}, objects::InvokeMode::kDsm);
    });
    const ObjectId oid = home.objects.make_object_id();
    // Register at the HOME (canonical) and replicate at the caller.
    caller.objects.add_replica(oid, object);
    next = oid;
  }
  const ObjectId head = next;

  for (auto _ : state) {
    auto result = caller.objects.invoke(head, "run", {},
                                        objects::InvokeMode::kDsm);
    if (!result.is_ok()) {
      state.SkipWithError(result.status().to_string().c_str());
      break;
    }
  }
  state.counters["dsm_faults"] = static_cast<double>(
      caller.dsm.stats().read_faults + caller.dsm.stats().write_faults);
}
BENCHMARK(BM_Invoke_DsmMode)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
