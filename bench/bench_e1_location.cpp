// E1 — thread location cost: broadcast vs path-following vs multicast (§7.1).
//
// Two sweeps tease apart the two scaling dimensions:
//
//   * DeepTrail: the thread's trail crosses EVERY node (hops = n-1).  Shows
//     path-following latency growing linearly with trail length, while the
//     one-round-trip strategies stay flat.
//   * FixedTrail: the trail is pinned at 3 hops while the CLUSTER grows.
//     Shows broadcast fan-out ("communication intensive and wasteful")
//     growing with n even though the thread is 3 hops away, while
//     path-following and multicast costs are independent of cluster size.
//
// A third sweep ablates the kernel's thread-location cache: the strategy
// rows run with the cache DISABLED (bare §7.1 costs); the Cached rows warm
// the cache once and then every locate is a hit validated by a single probe
// RPC — flat in both trail length and cluster size.
//
// Counters: msgs/locate (point-to-point + fan-out), probes/locate.
#include "bench_util.hpp"

namespace doct::bench {
namespace {

runtime::ClusterConfig chain_config(bool cache_enabled) {
  runtime::ClusterConfig config;
  config.node.kernel.location_cache.enabled = cache_enabled;
  return config;
}

struct ChainWorld {
  // Chain over nodes 1..hops; the thread ends up at node index `hops`.
  ChainWorld(int n, int hops, bool cache_enabled = false)
      : cluster(static_cast<std::size_t>(n), chain_config(cache_enabled)) {
    last_index = hops;
    std::vector<ObjectId> ids(static_cast<std::size_t>(hops) + 1);
    for (int i = hops; i >= 1; --i) {
      auto& node = cluster.node(static_cast<std::size_t>(i));
      auto object = std::make_shared<objects::PassiveObject>(
          "chain_" + std::to_string(i));
      const bool last = i == hops;
      const ObjectId next =
          last ? ObjectId{} : ids[static_cast<std::size_t>(i) + 1];
      object->define_entry("hop", [this, last, next](objects::CallCtx& ctx)
                                      -> Result<objects::Payload> {
        if (last) {
          arrived = true;
          while (!release.load()) {
            if (!ctx.manager.kernel().sleep_for(1ms).is_ok()) break;
          }
          return objects::Payload{};
        }
        return ctx.manager.invoke(next, "hop", {});
      });
      ids[static_cast<std::size_t>(i)] = node.objects.add_object(object);
    }
    traveller = cluster.node(0).kernel.spawn([this, first = ids[1]] {
      (void)cluster.node(0).objects.invoke(first, "hop", {});
    });
    while (!arrived.load()) std::this_thread::sleep_for(1ms);
  }

  ~ChainWorld() {
    release = true;
    cluster.node(0).kernel.join_thread(traveller, 60s);
  }

  runtime::Cluster cluster;
  ThreadId traveller;
  int last_index = 0;
  std::atomic<bool> arrived{false};
  std::atomic<bool> release{false};
};

void run_locate_bench(benchmark::State& state, kernel::LocatorKind kind,
                      int hops, bool cached = false) {
  const int n = static_cast<int>(state.range(0));
  ChainWorld world(n, hops, cached);
  auto& net = world.cluster.network();
  auto& kernel0 = world.cluster.node(0).kernel;
  const NodeId expect =
      world.cluster.node(static_cast<std::size_t>(world.last_index)).id;

  if (cached) {
    // Warm the cache: the first locate pays the full strategy, every timed
    // one below is a hit.
    auto warm = kernel0.locate(world.traveller, kind);
    if (!warm.is_ok()) {
      state.SkipWithError(
          ("warm locate failed: " + warm.status().to_string()).c_str());
      return;
    }
    kernel0.location_cache().reset_stats();
  }
  net.reset_stats();
  kernel0.reset_stats();
  long located = 0;
  for (auto _ : state) {
    auto result = kernel0.locate(world.traveller, kind);
    if (!result.is_ok() || result.value() != expect) {
      state.SkipWithError(
          ("locate failed: " + result.status().to_string()).c_str());
      break;
    }
    located++;
  }
  if (located > 0) {
    const auto stats = net.stats();
    state.counters["msgs/locate"] = benchmark::Counter(
        static_cast<double>(stats.sent + stats.fanout_messages) /
        static_cast<double>(located));
    state.counters["probes/locate"] = benchmark::Counter(
        static_cast<double>(kernel0.stats().locate_probes_sent) /
        static_cast<double>(located));
    if (cached) {
      state.counters["cache_hits/locate"] = benchmark::Counter(
          static_cast<double>(kernel0.location_cache().stats().hits) /
          static_cast<double>(located));
    }
  }
}

// --- deep trail: hops = n-1 (path length scales with the sweep) ---------------

void BM_Locate_Broadcast_DeepTrail(benchmark::State& state) {
  run_locate_bench(state, kernel::LocatorKind::kBroadcast,
                   static_cast<int>(state.range(0)) - 1);
}
void BM_Locate_PathFollow_DeepTrail(benchmark::State& state) {
  run_locate_bench(state, kernel::LocatorKind::kPathFollow,
                   static_cast<int>(state.range(0)) - 1);
}
void BM_Locate_Multicast_DeepTrail(benchmark::State& state) {
  run_locate_bench(state, kernel::LocatorKind::kMulticast,
                   static_cast<int>(state.range(0)) - 1);
}

BENCHMARK(BM_Locate_Broadcast_DeepTrail)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_Locate_PathFollow_DeepTrail)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_Locate_Multicast_DeepTrail)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.05);

// --- fixed trail (3 hops): cluster size scales around a nearby thread ---------

void BM_Locate_Broadcast_FixedTrail(benchmark::State& state) {
  run_locate_bench(state, kernel::LocatorKind::kBroadcast, 3);
}
void BM_Locate_PathFollow_FixedTrail(benchmark::State& state) {
  run_locate_bench(state, kernel::LocatorKind::kPathFollow, 3);
}
void BM_Locate_Multicast_FixedTrail(benchmark::State& state) {
  run_locate_bench(state, kernel::LocatorKind::kMulticast, 3);
}

BENCHMARK(BM_Locate_Broadcast_FixedTrail)
    ->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_Locate_PathFollow_FixedTrail)
    ->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_Locate_Multicast_FixedTrail)
    ->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.05);

// --- cached locator (ablation): warm hint + one probe RTT ---------------------
//
// The fallback strategy is path-following, but after the warm-up it never
// runs: each timed locate is a cache hit validated by a single probe RPC, so
// latency stays flat across both sweeps.

void BM_Locate_Cached_DeepTrail(benchmark::State& state) {
  run_locate_bench(state, kernel::LocatorKind::kPathFollow,
                   static_cast<int>(state.range(0)) - 1, /*cached=*/true);
}
void BM_Locate_Cached_FixedTrail(benchmark::State& state) {
  run_locate_bench(state, kernel::LocatorKind::kPathFollow, 3,
                   /*cached=*/true);
}

BENCHMARK(BM_Locate_Cached_DeepTrail)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_Locate_Cached_FixedTrail)
    ->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.05);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
