// E9 — hot-path spine: the sharded network core, zero-copy fan-out, and the
// thread-location cache measured end to end.
//
// Rows:
//
//   * P2P_RoundTrip        — the latency floor: one rpc call round trip to a
//     no-op method on a neighbour node.
//   * RemoteRaise_Cached   — events.raise() to a thread on a remote node with
//     a warm location cache: the raise skips the §7.1 locator entirely and
//     pays one deliver RPC.  Expected within ~1.2x of the p2p floor.
//   * RemoteRaise_Uncached — the same raise with the cache disabled: every
//     raise runs the broadcast locator (flood + reply) before the deliver
//     RPC, so the row shows what the cache saves.
//   * BroadcastStorm       — raw fan-out throughput: `senders` threads each
//     blast 200 one-KiB broadcasts across an 8-node mesh at zero latency, so
//     every leg takes the direct-push fast path (no wire-thread hop) and all
//     legs of one broadcast share a single payload buffer.
//
// Counters: msgs_per_sec (storm), cached/raise + locates/raise (raise rows),
// plus per-operation latency percentiles (*_p50_us/.../_max_us) on the p2p
// and raise rows so tail regressions show up even when the mean stays flat.
// Observability stays OFF here — the row doubles as the obs-disabled
// regression guard in CI (compare_benches.py vs bench/baseline/).
#include "bench_util.hpp"

#include "events/registry.hpp"

namespace doct::bench {
namespace {

// --- latency floor: one no-op RPC round trip ---------------------------------

void BM_E9_P2P_RoundTrip(benchmark::State& state) {
  runtime::Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  n1.rpc.register_method(
      "bench.noop", [](NodeId, Reader&) -> Result<rpc::Payload> {
        return rpc::Payload{};
      });
  const rpc::Payload args(32, 0x42);
  LatencyPercentiles lat;
  for (auto _ : state) {
    const std::int64_t t0 = lat.begin();
    auto reply = n0.rpc.call(n1.id, "bench.noop", args);
    if (!reply.is_ok()) {
      state.SkipWithError(
          ("p2p call failed: " + reply.status().to_string()).c_str());
      break;
    }
    lat.end(t0);
  }
  lat.flush(state, "call");
}

BENCHMARK(BM_E9_P2P_RoundTrip)->Unit(benchmark::kMicrosecond)->MinTime(0.2);

// --- remote raise: cache hit vs full locate ----------------------------------

void run_remote_raise(benchmark::State& state, bool cached) {
  runtime::ClusterConfig config;
  // Broadcast is the most expensive locator; the cached row must not care.
  config.node.kernel.locator = kernel::LocatorKind::kBroadcast;
  config.node.kernel.location_cache.enabled = cached;
  runtime::Cluster cluster(4, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const GroupId group = n1.kernel.create_group();
  TargetGroup targets(n1, group, 1);
  const ThreadId tid = targets.tids[0];

  // kTimer's default action is ignore, so the parked target absorbs raises
  // without needing a handler.  One warm raise populates the cache (or, for
  // the uncached row, proves the path works before timing starts).
  auto warm = n0.events.raise(events::sys::kTimer, tid);
  if (!warm.is_ok()) {
    state.SkipWithError(("warm raise failed: " + warm.to_string()).c_str());
    targets.join(n1);
    return;
  }
  n0.kernel.reset_stats();
  n0.kernel.location_cache().reset_stats();
  cluster.network().reset_stats();
  long raised = 0;
  LatencyPercentiles lat;
  for (auto _ : state) {
    const std::int64_t t0 = lat.begin();
    auto status = n0.events.raise(events::sys::kTimer, tid);
    if (!status.is_ok()) {
      state.SkipWithError(("raise failed: " + status.to_string()).c_str());
      break;
    }
    lat.end(t0);
    raised++;
  }
  lat.flush(state, "raise");
  if (raised > 0) {
    const auto stats = n0.kernel.stats();
    state.counters["cached/raise"] = benchmark::Counter(
        static_cast<double>(stats.cached_deliveries) /
        static_cast<double>(raised));
    // The broadcast locator floods one probe per locate; a warm cache never
    // floods at all.
    state.counters["locates/raise"] = benchmark::Counter(
        static_cast<double>(cluster.network().stats().broadcast_sends) /
        static_cast<double>(raised));
  }
  targets.join(n1);
}

void BM_E9_RemoteRaise_Cached(benchmark::State& state) {
  run_remote_raise(state, /*cached=*/true);
}
void BM_E9_RemoteRaise_Uncached(benchmark::State& state) {
  run_remote_raise(state, /*cached=*/false);
}

BENCHMARK(BM_E9_RemoteRaise_Cached)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_E9_RemoteRaise_Uncached)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

// --- broadcast storm: direct-push + shared-payload fan-out throughput --------

void BM_E9_BroadcastStorm(benchmark::State& state) {
  const int senders = static_cast<int>(state.range(0));
  constexpr int kNodes = 8;
  constexpr int kBroadcastsPerSender = 200;
  net::Network net;
  std::atomic<long> delivered{0};
  for (int i = 0; i < kNodes; ++i) {
    net.register_node(NodeId{static_cast<std::uint64_t>(i + 1)},
                      [&delivered](const net::Message&) {
                        delivered.fetch_add(1, std::memory_order_relaxed);
                      });
  }
  // One marshalled body, shared by every leg of every broadcast.
  const net::SharedPayload body{std::vector<std::uint8_t>(1024, 0xAB)};
  long expected = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(senders));
    for (int s = 0; s < senders; ++s) {
      threads.emplace_back([&net, &body, s] {
        const NodeId from{static_cast<std::uint64_t>(s + 1)};
        for (int i = 0; i < kBroadcastsPerSender; ++i) {
          (void)net.broadcast(net::Message{.from = from,
                                           .to = NodeId{},
                                           .kind = 0x5709,
                                           .call = CallId{},
                                           .payload = body});
        }
      });
    }
    for (auto& t : threads) t.join();
    net.quiesce();
    expected +=
        static_cast<long>(senders) * kBroadcastsPerSender * (kNodes - 1);
  }
  if (delivered.load() != expected) {
    state.SkipWithError("delivery count mismatch");
    return;
  }
  state.counters["msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(expected), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_E9_BroadcastStorm)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MinTime(0.2);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
