// A2 — delivery-point cadence vs synchronous-notification latency.
//
// The cost model of cooperative delivery (§3, and our DESIGN.md substitution
// note): a thread is stopped "at the point of delivery", which in this
// implementation means at its next delivery point.  This bench quantifies
// exactly that coupling — raise_and_wait latency against targets that reach
// delivery points every {0.2, 1, 5, 20} ms.
//
// Expected shape: sync latency ≈ poll interval / 2 + fixed handling cost.
// This is the number an application designer needs when deciding how often
// long-running entry points should poll_events().
//
// Note the contrast with BLOCKED targets: a thread sleeping in a kernel wait
// is woken by the notice enqueue immediately (its context condition variable
// fires), so only compute-bound stretches pay the cadence.  The target here
// BUSY-COMPUTES between explicit poll_events() calls to isolate that cost.
#include "bench_util.hpp"

#include "events/event_system.hpp"

namespace doct::bench {
namespace {

void BM_SyncLatency_VsCadence(benchmark::State& state) {
  const auto poll_us = state.range(0);
  runtime::Cluster cluster(1);
  auto& n0 = cluster.node(0);

  cluster.procedures().register_procedure(
      "a2_ack",
      [](events::PerThreadCallCtx&) { return kernel::Verdict::kResume; });
  const EventId event = cluster.registry().register_event("A2_EVENT");

  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId target = n0.kernel.spawn([&] {
    n0.events.attach_handler(event, "a2_ack", events::OWN_CONTEXT);
    armed = true;
    while (!release.load()) {
      // Simulated computation: busy until the next delivery point.
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::microseconds(poll_us);
      while (std::chrono::steady_clock::now() < until) {
        benchmark::DoNotOptimize(until);
      }
      if (!n0.kernel.poll_events().is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);

  for (auto _ : state) {
    // De-correlate from the target's windows: without this pause a hot
    // raiser re-enqueues inside the target's still-draining poll_events loop
    // and measures the parked-at-delivery-point fast path (~5 µs) instead of
    // the cadence.  The pause is untimed.
    state.PauseTiming();
    std::this_thread::sleep_for(std::chrono::microseconds(poll_us * 4 / 3));
    state.ResumeTiming();
    auto verdict = n0.events.raise_and_wait(event, target);
    if (!verdict.is_ok()) {
      state.SkipWithError("sync raise failed");
      break;
    }
  }
  state.counters["poll_us"] = static_cast<double>(poll_us);
  release = true;
  n0.kernel.join_thread(target, std::chrono::minutes(1));
}

BENCHMARK(BM_SyncLatency_VsCadence)
    ->Arg(200)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMicrosecond)->Iterations(50);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
