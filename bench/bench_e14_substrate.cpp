// E14 — the queueing & timing substrate (DESIGN §14).
//
// Four measurements:
//
//   * Queue push→drain throughput, locked vs lockfree: one producer bursts
//     into a Mailbox while the bench loop batch-drains it.  The lockfree arm
//     is the MPSC chain + wakeup gate; the locked arm is the mutex+condvar
//     BlockingQueue ablation (the same pair DOCT_QUEUE toggles at runtime).
//   * Wakeup coalescing: wakeups actually paid per 1k pushes under a
//     concurrent producer/consumer pair (the gate's whole point — a burst of
//     N pushes should cost far fewer than N notifies).
//   * Timer-wheel schedule/cancel throughput: O(1) slot filing vs the old
//     scan-all-deadlines loops it replaced.
//   * Local delivery allocations: same-node raise→object-handler steady-state
//     heap allocations per op, measured with the global alloc probe (this TU
//     replaces operator new/delete for the binary).  The committed baseline
//     is 0.00; compare_benches.py's hard-zero rule flags ANY regrowth.
#include "bench_util.hpp"

#include <thread>

#include "common/alloc_probe.hpp"
#include "common/mpsc_queue.hpp"
#include "common/timer_wheel.hpp"

namespace doct::bench {
namespace {

using common::Mailbox;
using common::QueueBackend;
using common::TimerWheel;

constexpr int kBurst = 4096;

void run_queue_push_drain(benchmark::State& state, QueueBackend backend) {
  std::int64_t items = 0;
  // Wall-clock rate: Counter::kIsRate divides by the *main thread's* CPU
  // time, and in the locked arm the main thread spends the iteration asleep
  // in pop_all — that denominator would inflate its rate by an order of
  // magnitude vs the lockfree arm, whose consumer burns CPU harvesting.
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    Mailbox<int> box(backend);
    std::thread producer([&] {
      for (int i = 0; i < kBurst; ++i) box.push(i);
      box.close();
    });
    int received = 0;
    for (;;) {
      const std::deque<int> batch = box.pop_all();
      if (batch.empty()) break;
      received += static_cast<int>(batch.size());
    }
    producer.join();
    if (received != kBurst) {
      state.SkipWithError("lost items in push/drain loop");
      break;
    }
    items += received;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (elapsed > 0) {
    state.counters["push_drain_per_sec"] = static_cast<double>(items) / elapsed;
  }
}

void BM_E14_QueuePushDrain_Locked(benchmark::State& state) {
  run_queue_push_drain(state, QueueBackend::kLocked);
}
void BM_E14_QueuePushDrain_Lockfree(benchmark::State& state) {
  run_queue_push_drain(state, QueueBackend::kLockfree);
}

// Wakeups paid per 1k pushes with a live consumer.  The consumer drains as
// fast as pop_all lets it; every drain re-arms the gate, so the measured
// number is the real notify traffic of a producer/consumer pair — not the
// degenerate "consumer never runs" case (which coalesces to exactly 1).
void BM_E14_WakeupCoalescing(benchmark::State& state) {
  constexpr int kPushes = 200000;
  std::uint64_t wakeups = 0;
  std::uint64_t signals = 0;
  std::uint64_t pushes = 0;
  for (auto _ : state) {
    Mailbox<int> box(QueueBackend::kLockfree);
    std::thread producer([&] {
      for (int i = 0; i < kPushes; ++i) box.push(i);
      box.close();
    });
    int received = 0;
    for (;;) {
      const std::deque<int> batch = box.pop_all();
      if (batch.empty()) break;
      received += static_cast<int>(batch.size());
    }
    producer.join();
    if (received != kPushes) {
      state.SkipWithError("lost items under coalescing load");
      break;
    }
    wakeups += box.wakeups();
    signals += box.signals();
    pushes += kPushes;
  }
  if (pushes != 0) {
    state.counters["wakeups_per_1k"] =
        1000.0 * static_cast<double>(wakeups) / static_cast<double>(pushes);
    state.counters["signals_per_1k"] =
        1000.0 * static_cast<double>(signals) / static_cast<double>(pushes);
  }
}

void BM_E14_WheelScheduleCancel(benchmark::State& state) {
  TimerWheel wheel;
  std::int64_t ops = 0;
  for (auto _ : state) {
    // Far-future deadline: the pair exercises pure filing/unfiling cost, the
    // tick thread never touches these slots during the loop.
    const common::TimerId id = wheel.schedule(10s, [] {});
    benchmark::DoNotOptimize(id);
    wheel.cancel(id);
    ++ops;
  }
  wheel.stop();
  state.counters["sched_cancel_per_sec"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}

// Same-node raise→object-handler allocations per op (the E14 gate shape:
// event-lane width 4, reservations on, lockfree substrate).
void BM_E14_LocalDeliveryAllocs(benchmark::State& state) {
  runtime::ClusterConfig config;
  config.node.kernel.executor.workers = 4;
  config.node.kernel.executor.event.width = 4;
  config.node.kernel.executor.reservations = true;
  config.node.kernel.executor.event.capacity = 0;
  runtime::Cluster cluster(1, config);
  auto& n0 = cluster.node(0);

  const EventId ev = cluster.registry().register_event("E14");
  auto handled = std::make_shared<std::atomic<long>>(0);
  // Not make_counting_object: its handler returns a 1-byte verdict payload,
  // which heap-allocates — this arm measures the substrate, so the handler
  // returns the empty payload like the gate test does.
  auto object = std::make_shared<objects::PassiveObject>("e14");
  object->define_entry(
      "on_e14",
      [handled](objects::CallCtx&) -> Result<objects::Payload> {
        handled->fetch_add(1);
        return objects::Payload{};
      },
      objects::Visibility::kPrivate);
  object->define_handler("E14", "on_e14");
  const ObjectId target = n0.objects.add_object(object);

  // Paced rounds: a drained burst per round keeps the in-flight depth at the
  // warmed pool shape (an unpaced storm would outgrow the warm pools and
  // charge honest-but-uninteresting pool-growth allocations to the path).
  constexpr int kRound = 100;
  constexpr int kRounds = 10;
  long raised = 0;
  const auto round = [&] {
    for (int i = 0; i < kRound; ++i) {
      if (n0.events.raise(ev, target).is_ok()) ++raised;
    }
    spin_until(*handled, raised);
  };
  round();
  round();

  for (auto _ : state) {
    common::alloc_probe_reset();
    for (int r = 0; r < kRounds; ++r) round();
    const std::uint64_t allocs = common::alloc_probe_allocs();
    state.counters["delivery_allocs_per_op"] =
        static_cast<double>(allocs) / (kRounds * kRound);
  }
}

BENCHMARK(BM_E14_QueuePushDrain_Locked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E14_QueuePushDrain_Lockfree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E14_WakeupCoalescing)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_E14_WheelScheduleCancel)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E14_LocalDeliveryAllocs)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
