// E13 — the always-on telemetry tax.
//
// The telemetry plane is designed to be left ON in production: metrics,
// tracing, the flight-recorder ring, and a 100ms collector thread.  This
// bench prices that posture against the obs-disabled baseline on the two
// latency shapes operators care about:
//
//   * P2P        — the E9 latency floor: one rpc round trip to a no-op
//                  method on a neighbour node (call_p50_us / call_p99_us).
//   * Control    — the E10 guarantee: control-lane probe wait time while a
//                  paced event load runs (probe_p50_us / probe_p99_us).
//
// Rows come in TelemetryOff / TelemetryOn pairs; scripts/check_telemetry.py
// pairs them and fails the build when the On arm's p99 exceeds Off by more
// than 3% AND more than a small absolute floor (shields the ratio test from
// sub-microsecond noise).  The Off rows also feed compare_benches.py against
// bench/baseline/ like every other experiment.
//
// Off rows are REGISTERED (and therefore run) before On rows: the flight
// recorder has no disable switch — its production posture is "configured at
// boot, on for the process lifetime" — so the Off arms must run first.
#include "bench_util.hpp"

#include <thread>

#include "obs/flight.hpp"

namespace doct::bench {
namespace {

constexpr auto kCollectPeriod = 100ms;
constexpr int kProbes = 400;
constexpr auto kProbeGap = 500us;
constexpr auto kLoadGap = 100us;  // paced background raises during Control

void set_telemetry(bool on) {
  obs::set_metrics_enabled(on);
  obs::set_tracing_enabled(on);
  if (on) {
    // Ring only: breadcrumbs record, nothing dumps.  Once configured the
    // recorder stays on for the process — see the header comment.
    obs::flight().configure(1, "/tmp");
  }
}

runtime::ClusterConfig telemetry_config(bool on) {
  runtime::ClusterConfig config;
  config.telemetry.collector = on;
  config.telemetry.period = kCollectPeriod;
  return config;
}

void run_p2p(benchmark::State& state, bool on) {
  set_telemetry(on);
  runtime::Cluster cluster(2, telemetry_config(on));
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  n1.rpc.register_method("bench.noop",
                         [](NodeId, Reader&) -> Result<rpc::Payload> {
                           return rpc::Payload{};
                         });
  const rpc::Payload args(32, 0x42);
  LatencyPercentiles lat;
  for (auto _ : state) {
    const std::int64_t t0 = lat.begin();
    auto reply = n0.rpc.call(n1.id, "bench.noop", args);
    if (!reply.is_ok()) {
      state.SkipWithError(
          ("p2p call failed: " + reply.status().to_string()).c_str());
      break;
    }
    lat.end(t0);
  }
  lat.flush(state, "call");
  set_telemetry(false);
}

void run_control(benchmark::State& state, bool on) {
  set_telemetry(on);
  runtime::Cluster cluster(1, telemetry_config(on));
  auto& n0 = cluster.node(0);

  auto handled = std::make_shared<std::atomic<long>>(0);
  const EventId load = n0.events.registry().register_event("E13_LOAD");
  const ObjectId target =
      n0.objects.add_object(make_counting_object("E13_LOAD", handled));

  for (auto _ : state) {
    // Paced background event load: enough traffic that delivery, handler
    // dispatch, and (on the On arm) their metrics/trace/breadcrumb sites all
    // run hot — but below lane capacity, so probes measure overhead, not
    // queueing.
    std::atomic<bool> stop{false};
    long raised = 0;
    std::thread raiser([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (n0.events.raise(load, target).is_ok()) ++raised;
        std::this_thread::sleep_for(kLoadGap);
      }
    });

    LatencyPercentiles lat;
    std::atomic<int> probes_done{0};
    for (int i = 0; i < kProbes; ++i) {
      const std::int64_t t0 = obs::now_us();
      const Status admitted =
          n0.executor.try_submit(exec::Lane::kControl, [t0, &lat,
                                                        &probes_done] {
            lat.record_us(obs::now_us() - t0);
            probes_done.fetch_add(1);
          });
      if (!admitted.is_ok()) probes_done.fetch_add(1);
      std::this_thread::sleep_for(kProbeGap);
    }
    while (probes_done.load() < kProbes) std::this_thread::sleep_for(1ms);

    stop = true;
    raiser.join();
    spin_until(*handled, raised);
    lat.flush(state, "probe");
    state.counters["raises"] = static_cast<double>(raised);
  }
  set_telemetry(false);
}

void BM_E13_P2P_TelemetryOff(benchmark::State& state) {
  run_p2p(state, false);
}
void BM_E13_Control_TelemetryOff(benchmark::State& state) {
  run_control(state, false);
}
void BM_E13_P2P_TelemetryOn(benchmark::State& state) { run_p2p(state, true); }
void BM_E13_Control_TelemetryOn(benchmark::State& state) {
  run_control(state, true);
}

// Off before On — see the header comment on flight-recorder ordering.
BENCHMARK(BM_E13_P2P_TelemetryOff)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_E13_Control_TelemetryOff)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(1);
BENCHMARK(BM_E13_P2P_TelemetryOn)->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_E13_Control_TelemetryOn)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(1);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
