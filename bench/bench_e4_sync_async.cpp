// E4 — raiser-side cost of synchronous vs asynchronous raising (§3, §5.3).
//
// "If raising the event causes the signaling thread to block until it is
//  explicitly resumed by a handler, it is termed a synchronous notification.
//  If the thread raises the event but does not block, it is termed an
//  asynchronous notification."
//
// raise() returns once the notice is accepted for delivery (the raiser does
// not block on handling); raise_and_wait() blocks through delivery, handler
// execution, and resume.  Swept over 1..16 concurrent raisers to show how
// the sync round trip serializes against the target's delivery points.
#include "bench_util.hpp"

#include "events/event_system.hpp"

namespace doct::bench {
namespace {

struct E4World {
  E4World() : cluster(2) {
    group = cluster.node(0).kernel.create_group();
    cluster.procedures().register_procedure(
        "e4", [this](events::PerThreadCallCtx&) {
          handled.fetch_add(1);
          return kernel::Verdict::kResume;
        });
    event = cluster.registry().register_event("E4_EVENT");
    targets = std::make_unique<TargetGroup>(cluster.node(1), group, 8, [this] {
      cluster.node(1).events.attach_handler(event, "e4", events::OWN_CONTEXT);
    });
  }
  ~E4World() {
    targets->join(cluster.node(1));
  }

  runtime::Cluster cluster;
  GroupId group;
  EventId event;
  std::unique_ptr<TargetGroup> targets;
  std::atomic<long> handled{0};
};

E4World& world() {
  static E4World* w = new E4World();
  return *w;
}

// Async: each benchmark thread raises at a distinct target.
void BM_Raise_Async(benchmark::State& state) {
  auto& w = world();
  const auto target =
      w.targets->tids[static_cast<std::size_t>(state.thread_index()) %
                      w.targets->tids.size()];
  for (auto _ : state) {
    if (!w.cluster.node(0).events.raise(w.event, target).is_ok()) {
      state.SkipWithError("raise failed");
      break;
    }
  }
}
BENCHMARK(BM_Raise_Async)
    ->Threads(1)->Threads(4)->Threads(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

// Sync: full round trip through the target's delivery point.
void BM_RaiseAndWait_Sync(benchmark::State& state) {
  auto& w = world();
  const auto target =
      w.targets->tids[static_cast<std::size_t>(state.thread_index()) %
                      w.targets->tids.size()];
  for (auto _ : state) {
    auto verdict = w.cluster.node(0).events.raise_and_wait(w.event, target);
    if (!verdict.is_ok()) {
      state.SkipWithError("sync raise failed");
      break;
    }
  }
}
BENCHMARK(BM_RaiseAndWait_Sync)
    ->Threads(1)->Threads(4)->Threads(16)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
