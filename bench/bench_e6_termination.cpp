// E6 — distributed ^C latency (§6.3): time from raising TERMINATE at the
// root thread until every group member is dead and joined.
//
// Sweep: nodes {2, 4} x workers {2, 8, 32}.  Each worker sits inside a
// remote object invocation (chain depth 1), so termination must traverse
// root-handler -> group QUIT broadcast -> per-member delivery points ->
// invocation unwind across nodes.
//
// Expected shape: termination time grows mildly with worker count (group
// QUIT is a broadcast, members die in parallel) and is dominated by the
// slowest member's delivery-point latency — not by total object count.
#include "bench_util.hpp"

#include "services/termination/termination.hpp"

namespace doct::bench {
namespace {

void BM_DistributedCtrlC(benchmark::State& state) {
  const int num_nodes = static_cast<int>(state.range(0));
  const int num_workers = static_cast<int>(state.range(1));

  for (auto _ : state) {
    state.PauseTiming();
    runtime::ClusterConfig config;
    // Every worker parks inside a remote `spin` entry, occupying one
    // executor worker at the target node for its whole life — size the
    // executor so all of them can be resident at once with slack for
    // control/event traffic.
    config.node.kernel.executor.workers =
        static_cast<std::size_t>(num_workers) + 6;
    runtime::Cluster cluster(static_cast<std::size_t>(num_nodes), config);
    auto& n0 = cluster.node(0);
    std::vector<std::unique_ptr<services::TerminationService>> services;
    for (int i = 0; i < num_nodes; ++i) {
      services.push_back(std::make_unique<services::TerminationService>(
          cluster.node(static_cast<std::size_t>(i)).events));
    }

    // One spin object per non-root node.
    std::atomic<int> busy{0};
    std::vector<ObjectId> spin_objects;
    for (int i = 1; i < num_nodes; ++i) {
      auto& node = cluster.node(static_cast<std::size_t>(i));
      auto object = std::make_shared<objects::PassiveObject>("spin");
      object->define_entry("spin", [&busy, &node](objects::CallCtx&)
                                       -> Result<objects::Payload> {
        busy++;
        while (true) {
          if (!node.kernel.sleep_for(1ms).is_ok()) break;
        }
        return objects::Payload{};
      });
      services[static_cast<std::size_t>(i)]->arm_object(*object,
                                                        [](ThreadId) {});
      spin_objects.push_back(node.objects.add_object(object));
    }

    ThreadId root_tid;
    std::atomic<bool> armed{false};
    std::vector<ThreadId> workers;
    std::mutex workers_mu;
    const ThreadId root = n0.kernel.spawn([&] {
      root_tid = kernel::Kernel::current()->tid();
      services[0]->arm_current_thread();
      for (int i = 0; i < num_workers; ++i) {
        const ObjectId target =
            spin_objects[static_cast<std::size_t>(i) % spin_objects.size()];
        const ThreadId worker = n0.kernel.spawn(
            [&n0, target] { (void)n0.objects.invoke(target, "spin", {}); });
        std::lock_guard<std::mutex> lock(workers_mu);
        workers.push_back(worker);
      }
      armed = true;
      while (true) {
        if (!n0.kernel.sleep_for(1ms).is_ok()) return;
      }
    });
    while (!armed.load() || busy.load() < num_workers) {
      std::this_thread::sleep_for(1ms);
    }
    state.ResumeTiming();

    // ^C and wait for full death.
    services[0]->request_termination(root_tid);
    n0.kernel.join_thread(root, std::chrono::minutes(1));
    {
      std::lock_guard<std::mutex> lock(workers_mu);
      for (ThreadId worker : workers) {
        n0.kernel.join_thread(worker, std::chrono::minutes(1));
      }
    }
    state.PauseTiming();
    // Cluster destruction outside the timed region.
    services.clear();
    state.ResumeTiming();
  }
  state.counters["workers"] = num_workers;
  state.counters["nodes"] = num_nodes;
}

BENCHMARK(BM_DistributedCtrlC)
    ->Args({2, 2})->Args({2, 8})->Args({2, 32})
    ->Args({4, 2})->Args({4, 8})->Args({4, 32})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
