// E7 — monitoring overhead (§6.2): wall-time cost of a timer-sampled thread
// vs an unmonitored one, across sampling periods.
//
// The worker performs a fixed unit of work (a sequence of interruptible
// sleeps — i.e., delivery points, which is where sampling can preempt it).
// Expected shape: overhead falls as the period grows; at 20ms it is noise,
// at 2ms the handler + sample-post cost appears on every other delivery
// point.
#include "bench_util.hpp"

#include "services/monitor/monitor.hpp"

namespace doct::bench {
namespace {

constexpr int kWorkSteps = 50;

void run_workload(runtime::Cluster& cluster, Duration period, bool monitored,
                  benchmark::State& state) {
  auto& n0 = cluster.node(0);
  const ObjectId server =
      n0.objects.add_object(services::MonitorServer::make());
  for (auto _ : state) {
    services::MonitorClient client(n0.events, n0.objects, server);
    const ThreadId tid = n0.kernel.spawn([&] {
      if (monitored) client.arm(period);
      services::set_pc_marker("bench");
      for (int i = 0; i < kWorkSteps; ++i) {
        if (!n0.kernel.sleep_for(std::chrono::microseconds(500)).is_ok()) {
          return;
        }
      }
      if (monitored) client.disarm();
    });
    n0.kernel.join_thread(tid, std::chrono::minutes(1));
  }
}

void BM_Unmonitored(benchmark::State& state) {
  runtime::Cluster cluster(1);
  run_workload(cluster, 1ms, false, state);
}
BENCHMARK(BM_Unmonitored)->Unit(benchmark::kMillisecond)->MinTime(0.5);

void BM_Monitored(benchmark::State& state) {
  runtime::Cluster cluster(1);
  run_workload(cluster, std::chrono::milliseconds(state.range(0)), true,
               state);
  state.counters["period_ms"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Monitored)
    ->Arg(2)->Arg(5)->Arg(20)
    ->Unit(benchmark::kMillisecond)->MinTime(0.5);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
