// E12 — transport tax: the same two hot-path shapes as E9 (one no-op RPC
// round trip; a broadcast storm) measured across the three Transport
// backends, so the cost of real sockets + the versioned wire format is a
// number and not a guess.
//
// Rows:
//
//   * P2P_RoundTrip_{InProcess,Unix,Tcp} — a 2-node runtime::Cluster with
//     NetworkConfig::transport flipped per row; everything above the
//     transport (rpc, kernel, dispatch) is identical, so row deltas isolate
//     serialization + syscalls + the socket thread hops.  The InProcess row
//     should track BM_E9_P2P_RoundTrip; the Unix row is the cross-process
//     latency floor the multiprocess example pays.
//   * BroadcastStorm_{InProcess,Unix,Tcp} — raw transport fan-out: 4 senders
//     each blast 200 one-KiB broadcasts across a 4-node mesh.  The socket
//     arms run a real loopback mesh in one process (4 SocketTransports, 12
//     simplex connections); every leg of one broadcast shares a single
//     SharedPayload buffer on the send side, so the row prices the
//     per-leg encode + write, not 3x marshalling.
//
// Counters: per-call latency percentiles on the p2p rows, msgs_per_sec on
// the storm rows, plus drops (must stay 0 — a lossy storm row is a skip, not
// a number).  Socket arms have no quiesce(); delivery is confirmed by
// polling the receive-side counter up to the exact expected count.
#include "bench_util.hpp"

#include <unistd.h>

#include <string>
#include <thread>

#include "net/socket_transport.hpp"

namespace doct::bench {
namespace {

using namespace std::chrono_literals;

// --- p2p round trip per backend ----------------------------------------------

void run_p2p(benchmark::State& state, net::TransportKind kind) {
  runtime::ClusterConfig config;
  config.network.transport = kind;
  runtime::Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  n1.rpc.register_method(
      "bench.noop", [](NodeId, Reader&) -> Result<rpc::Payload> {
        return rpc::Payload{};
      });
  const rpc::Payload args(32, 0x42);
  LatencyPercentiles lat;
  for (auto _ : state) {
    const std::int64_t t0 = lat.begin();
    auto reply = n0.rpc.call(n1.id, "bench.noop", args);
    if (!reply.is_ok()) {
      state.SkipWithError(
          ("p2p call failed: " + reply.status().to_string()).c_str());
      break;
    }
    lat.end(t0);
  }
  lat.flush(state, "call");
}

void BM_E12_P2P_RoundTrip_InProcess(benchmark::State& state) {
  run_p2p(state, net::TransportKind::kInProcess);
}
void BM_E12_P2P_RoundTrip_Unix(benchmark::State& state) {
  run_p2p(state, net::TransportKind::kUnixSocket);
}
void BM_E12_P2P_RoundTrip_Tcp(benchmark::State& state) {
  run_p2p(state, net::TransportKind::kTcp);
}

BENCHMARK(BM_E12_P2P_RoundTrip_InProcess)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_E12_P2P_RoundTrip_Unix)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);
BENCHMARK(BM_E12_P2P_RoundTrip_Tcp)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.2);

// --- broadcast storm per backend ---------------------------------------------

constexpr int kStormNodes = 4;
constexpr int kStormSenders = 4;
constexpr int kBroadcastsPerSender = 200;

void BM_E12_BroadcastStorm_InProcess(benchmark::State& state) {
  net::Network net;
  std::atomic<long> delivered{0};
  for (int i = 0; i < kStormNodes; ++i) {
    net.register_node(NodeId{static_cast<std::uint64_t>(i + 1)},
                      [&delivered](const net::Message&) {
                        delivered.fetch_add(1, std::memory_order_relaxed);
                      });
  }
  const net::SharedPayload body{std::vector<std::uint8_t>(1024, 0xAB)};
  long expected = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(kStormSenders);
    for (int s = 0; s < kStormSenders; ++s) {
      threads.emplace_back([&net, &body, s] {
        const NodeId from{static_cast<std::uint64_t>(s + 1)};
        for (int i = 0; i < kBroadcastsPerSender; ++i) {
          (void)net.broadcast(net::Message{.from = from,
                                           .to = NodeId{},
                                           .kind = 0x5712,
                                           .call = CallId{},
                                           .payload = body});
        }
      });
    }
    for (auto& t : threads) t.join();
    net.quiesce();
    expected += static_cast<long>(kStormSenders) * kBroadcastsPerSender *
                (kStormNodes - 1);
  }
  if (delivered.load() != expected) {
    state.SkipWithError("delivery count mismatch");
    return;
  }
  state.counters["msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(expected), benchmark::Counter::kIsRate);
}

void run_socket_storm(benchmark::State& state, bool tcp) {
  static std::atomic<int> mesh_tag{0};
  const int tag = mesh_tag.fetch_add(1);
  std::atomic<long> delivered{0};

  // A full loopback mesh of real transports in one process: 4 listeners,
  // every pair connected both ways.
  std::vector<std::unique_ptr<net::SocketTransport>> mesh;
  for (int i = 0; i < kStormNodes; ++i) {
    net::SocketTransportConfig config;
    config.self = NodeId{static_cast<std::uint64_t>(i + 1)};
    config.listen = tcp ? std::string("tcp:127.0.0.1:0")
                        : "unix:/tmp/doct-e12-" + std::to_string(::getpid()) +
                              "-" + std::to_string(tag) + "-n" +
                              std::to_string(i + 1) + ".sock";
    auto node = std::make_unique<net::SocketTransport>(config);
    (void)node->register_node(config.self,
                              [&delivered](const net::Message&) {
                                delivered.fetch_add(
                                    1, std::memory_order_relaxed);
                              });
    if (!node->start().is_ok()) {
      state.SkipWithError("socket mesh failed to bind");
      return;
    }
    mesh.push_back(std::move(node));
  }
  for (int i = 0; i < kStormNodes; ++i) {
    for (int j = 0; j < kStormNodes; ++j) {
      if (i == j) continue;
      mesh[static_cast<std::size_t>(i)]->add_peer(
          NodeId{static_cast<std::uint64_t>(j + 1)},
          mesh[static_cast<std::size_t>(j)]->listen_address());
    }
  }
  for (auto& node : mesh) {
    if (!node->wait_for_peers(kStormNodes - 1, 10s)) {
      state.SkipWithError("socket mesh never fully connected");
      return;
    }
  }

  const net::SharedPayload body{std::vector<std::uint8_t>(1024, 0xAB)};
  long expected = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(kStormSenders);
    for (int s = 0; s < kStormSenders; ++s) {
      threads.emplace_back([&mesh, &body, s] {
        net::SocketTransport& from = *mesh[static_cast<std::size_t>(s)];
        for (int i = 0; i < kBroadcastsPerSender; ++i) {
          (void)from.broadcast(
              net::Message{.from = NodeId{static_cast<std::uint64_t>(s + 1)},
                           .to = NodeId{},
                           .kind = 0x5712,
                           .call = CallId{},
                           .payload = body});
        }
      });
    }
    for (auto& t : threads) t.join();
    expected += static_cast<long>(kStormSenders) * kBroadcastsPerSender *
                (kStormNodes - 1);
    // No quiesce() on sockets: delivery completes when the receive-side
    // counter reaches the exact expected total.
    const auto deadline = std::chrono::steady_clock::now() + 60s;
    while (delivered.load() < expected &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    if (delivered.load() < expected) {
      state.SkipWithError("storm delivery timed out");
      return;
    }
  }
  long drops = 0;
  for (const auto& node : mesh) {
    const auto s = node->stats();
    drops += static_cast<long>(s.dropped_backpressure + s.dropped_inbound +
                               s.dropped_no_peer + s.decode_errors);
  }
  if (drops != 0 || delivered.load() != expected) {
    state.SkipWithError("storm dropped or over-delivered frames");
    return;
  }
  state.counters["msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(expected), benchmark::Counter::kIsRate);
}

void BM_E12_BroadcastStorm_Unix(benchmark::State& state) {
  run_socket_storm(state, /*tcp=*/false);
}
void BM_E12_BroadcastStorm_Tcp(benchmark::State& state) {
  run_socket_storm(state, /*tcp=*/true);
}

BENCHMARK(BM_E12_BroadcastStorm_InProcess)
    ->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_E12_BroadcastStorm_Unix)
    ->Unit(benchmark::kMillisecond)->MinTime(0.2);
BENCHMARK(BM_E12_BroadcastStorm_Tcp)
    ->Unit(benchmark::kMillisecond)->MinTime(0.2);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
