// A1 — ablations on design choices called out in DESIGN.md.
//
// (a) Multicast-group maintenance (§7.1): the multicast locator needs every
//     hop to join/leave the thread's group.  This bench measures the
//     migration (remote invocation) cost with maintenance on vs off — the
//     price paid on EVERY hop to make locates O(1).
//
// (b) Handler execution contexts (§4.1): cost of one delivered event by
//     handler kind — per-thread procedure (OWN_CONTEXT, a local call),
//     object-entry handler in a local object, and buddy handler on a remote
//     node (unscheduled invocation).  Expected shape: per-thread < local
//     object entry < remote buddy, the gap being one RPC round trip.
#include "bench_util.hpp"

#include "events/event_system.hpp"

namespace doct::bench {
namespace {

objects::Payload int_payload(std::int64_t v) {
  Writer w;
  w.put(v);
  return std::move(w).take();
}

void run_migration_bench(benchmark::State& state, bool maintain_groups) {
  runtime::ClusterConfig config;
  config.node.kernel.maintain_multicast_groups = maintain_groups;
  runtime::Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  auto object = std::make_shared<objects::PassiveObject>("hop_target");
  object->define_entry("noop", [](objects::CallCtx& ctx)
                                   -> Result<objects::Payload> {
    return int_payload(ctx.args.get<std::int64_t>());
  });
  const ObjectId oid = n1.objects.add_object(object);

  std::atomic<bool> stop{false};
  std::atomic<long> completed{0};
  std::atomic<long> requested{0};
  std::atomic<bool> failed{false};
  const ThreadId driver = n0.kernel.spawn([&] {
    while (!stop.load()) {
      if (requested.load() > completed.load()) {
        if (!n0.objects.invoke(oid, "noop", int_payload(1)).is_ok()) {
          failed = true;
          return;
        }
        completed.fetch_add(1);
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (auto _ : state) {
    const long turn = requested.fetch_add(1) + 1;
    while (completed.load() < turn && !failed.load()) std::this_thread::yield();
    if (failed.load()) {
      state.SkipWithError("invocation failed");
      break;
    }
  }
  stop = true;
  n0.kernel.join_thread(driver, std::chrono::minutes(1));
  state.counters["multicasts_maintained"] = maintain_groups ? 1 : 0;
}

void BM_Migration_WithGroupMaintenance(benchmark::State& state) {
  run_migration_bench(state, true);
}
void BM_Migration_NoGroupMaintenance(benchmark::State& state) {
  run_migration_bench(state, false);
}
BENCHMARK(BM_Migration_WithGroupMaintenance)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.3);
BENCHMARK(BM_Migration_NoGroupMaintenance)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.3);

// --- (b) handler contexts ------------------------------------------------------

enum class HandlerPlacement { kPerThread, kLocalObject, kRemoteBuddy };

void run_context_bench(benchmark::State& state, HandlerPlacement placement) {
  runtime::Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  auto handled = std::make_shared<std::atomic<long>>(0);
  cluster.procedures().register_procedure(
      "a1_proc", [handled](events::PerThreadCallCtx&) {
        handled->fetch_add(1);
        return kernel::Verdict::kResume;
      });
  auto make_handler_object = [handled] {
    auto object = std::make_shared<objects::PassiveObject>("a1_object");
    object->define_entry(
        "on_event",
        [handled](objects::CallCtx&) -> Result<objects::Payload> {
          handled->fetch_add(1);
          return objects::Payload{
              static_cast<std::uint8_t>(kernel::Verdict::kResume)};
        },
        objects::Visibility::kPrivate);
    return object;
  };
  const ObjectId local_obj = n0.objects.add_object(make_handler_object());
  const ObjectId buddy_obj = n1.objects.add_object(make_handler_object());
  const EventId event = cluster.registry().register_event("A1_EVENT");

  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId target = n0.kernel.spawn([&] {
    switch (placement) {
      case HandlerPlacement::kPerThread:
        n0.events.attach_handler(event, "a1_proc", events::OWN_CONTEXT);
        break;
      case HandlerPlacement::kLocalObject:
        n0.events.attach_handler(event, local_obj, "on_event");
        break;
      case HandlerPlacement::kRemoteBuddy:
        n0.events.attach_handler(event, buddy_obj, "on_event");
        break;
    }
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(std::chrono::microseconds(200)).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);

  for (auto _ : state) {
    const long start = handled->load();
    if (!n0.events.raise(event, target).is_ok()) {
      state.SkipWithError("raise failed");
      break;
    }
    spin_until(*handled, start + 1);
  }
  release = true;
  n0.kernel.join_thread(target, std::chrono::minutes(1));
}

void BM_HandlerContext_PerThread(benchmark::State& state) {
  run_context_bench(state, HandlerPlacement::kPerThread);
}
void BM_HandlerContext_LocalObject(benchmark::State& state) {
  run_context_bench(state, HandlerPlacement::kLocalObject);
}
void BM_HandlerContext_RemoteBuddy(benchmark::State& state) {
  run_context_bench(state, HandlerPlacement::kRemoteBuddy);
}
BENCHMARK(BM_HandlerContext_PerThread)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.3);
BENCHMARK(BM_HandlerContext_LocalObject)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.3);
BENCHMARK(BM_HandlerContext_RemoteBuddy)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.3);

}  // namespace
}  // namespace doct::bench

BENCHMARK_MAIN();
