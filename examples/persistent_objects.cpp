// Persistent passive objects (§3.1): an object's life is independent of any
// thread — and of main memory.
//
// A ledger object is created, mutated, DEACTIVATED to a file-backed store
// (its in-memory instance destroyed), and then receives an event while fully
// passive: the activation hook pulls it back from disk, the object-based
// handler runs, and a later invocation sees all prior state.
//
// Build & run:  ./build/examples/persistent_objects
#include <atomic>
#include <filesystem>
#include <iostream>

#include "objects/store.hpp"
#include "runtime/runtime.hpp"

using namespace doct;
using namespace std::chrono_literals;

namespace {

class Ledger : public objects::PassiveObject {
 public:
  Ledger() : PassiveObject("ledger") {
    define_entry("credit", [this](objects::CallCtx& ctx)
                               -> Result<objects::Payload> {
      balance_ += ctx.args.get<std::int64_t>();
      Writer w;
      w.put(balance_);
      return std::move(w).take();
    });
    define_entry("balance", [this](objects::CallCtx&)
                                -> Result<objects::Payload> {
      Writer w;
      w.put(balance_);
      return std::move(w).take();
    });
    define_entry(
        "on_audit",
        [this](objects::CallCtx&) -> Result<objects::Payload> {
          audits_++;
          std::cout << "  [ledger] AUDIT handled while passive; balance = "
                    << balance_ << " (audit #" << audits_ << ")\n";
          return objects::Payload{};
        },
        objects::Visibility::kPrivate);
    define_handler("AUDIT", "on_audit");
  }

  void save_state(Writer& w) const override {
    w.put(balance_);
    w.put(audits_);
  }
  void load_state(Reader& r) override {
    balance_ = r.get<std::int64_t>();
    audits_ = r.get<std::int64_t>();
  }

 private:
  std::int64_t balance_ = 0;
  std::int64_t audits_ = 0;
};

}  // namespace

int main() {
  const auto dir = std::filesystem::temp_directory_path() / "doct_ledger_demo";
  std::filesystem::remove_all(dir);

  runtime::Cluster cluster(1);
  auto& n0 = cluster.node(0);

  // File-backed store so the object genuinely leaves memory.
  objects::ObjectStore store(n0.objects, n0.factory,
                             std::make_unique<objects::FileBackend>(dir));
  n0.factory.register_type("ledger", [] { return std::make_shared<Ledger>(); });
  n0.events.set_activation_hook(
      [&store](ObjectId id) { return store.activate(id); });

  const ObjectId ledger = n0.objects.add_object(std::make_shared<Ledger>());
  const EventId audit = cluster.registry().register_event("AUDIT");

  Writer w;
  w.put(std::int64_t{250});
  auto credited = n0.objects.invoke(ledger, "credit", std::move(w).take());
  std::cout << "credited 250; ok=" << credited.is_ok() << "\n";

  std::cout << "deactivating the ledger to " << dir << " ...\n";
  if (!store.deactivate(ledger).is_ok()) return 1;
  std::cout << "in memory: " << (n0.objects.find(ledger) ? "yes" : "no")
            << "; passive in store: " << (store.is_passive(ledger) ? "yes" : "no")
            << "\n";

  std::cout << "raising AUDIT at the passive object...\n";
  if (!n0.events.raise(audit, ledger).is_ok()) return 1;
  for (int i = 0; i < 500 && n0.objects.find(ledger) == nullptr; ++i) {
    std::this_thread::sleep_for(1ms);
  }

  auto balance = n0.objects.invoke(ledger, "balance", {});
  if (!balance.is_ok()) return 1;
  Reader r(balance.value());
  const auto value = r.get<std::int64_t>();
  std::cout << "balance after reactivation: " << value << "\n";

  std::filesystem::remove_all(dir);
  return value == 250 ? 0 : 1;
}
