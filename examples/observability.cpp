// Cross-layer observability: causal tracing + the unified metrics snapshot.
//
// Enables the obs layer (off by default — production hot paths pay one
// relaxed atomic load), drives a synchronous cross-node raise and a burst of
// remote invocations, then exports:
//
//   obs_metrics.json — one document with every layer's counters and latency
//                      histograms (p50/p90/p99/max in µs)
//   obs_trace.json   — Chrome trace-event format; open in Perfetto
//                      (https://ui.perfetto.dev) or chrome://tracing to see
//                      one track per node with raise → wire → deliver →
//                      handle → resume spans nested under each trace.
//
// Build & run:  ./build/examples/observability
#include <atomic>
#include <fstream>
#include <iostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/runtime.hpp"

using namespace doct;
using namespace std::chrono_literals;

int main() {
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);

  runtime::Cluster cluster(3);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  auto& n2 = cluster.node(2);

  // A remote object for invocation traffic and a handler procedure that
  // acknowledges synchronous raises.
  auto worker = std::make_shared<objects::PassiveObject>("worker");
  worker->define_entry("work", [](objects::CallCtx&) -> Result<objects::Payload> {
    return objects::Payload{};
  });
  const ObjectId oid = n2.objects.add_object(worker);

  cluster.procedures().register_procedure(
      "ack", [](events::PerThreadCallCtx&) { return kernel::Verdict::kResume; });
  const EventId ping = cluster.registry().register_event("OBS_PING");

  std::atomic<bool> ready{false};
  std::atomic<bool> release{false};
  const ThreadId target = n1.kernel.spawn([&] {
    if (!n1.events.attach_handler(ping, "ack", events::OWN_CONTEXT).is_ok())
      return;
    ready = true;
    while (!release.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);

  // Traffic: 16 synchronous cross-node raises (node 0 -> node 1) and 16
  // remote invocations (node 0 -> node 2).  Every round trip becomes one
  // trace with spans on both nodes.
  const ThreadId driver = n0.kernel.spawn([&] {
    for (int i = 0; i < 16; ++i) {
      auto verdict = n0.events.raise_and_wait(ping, target);
      if (!verdict.is_ok()) {
        std::cerr << "raise failed: " << verdict.status().to_string() << "\n";
        return;
      }
      if (!n0.objects.invoke(oid, "work", {}).is_ok()) return;
    }
  });
  (void)n0.kernel.join_thread(driver, 30s);
  release = true;
  (void)n1.kernel.join_thread(target, 10s);

  const std::string metrics = cluster.metrics_json();
  const std::string trace = cluster.trace_json();
  std::ofstream("obs_metrics.json", std::ios::trunc) << metrics;
  std::ofstream("obs_trace.json", std::ios::trunc) << trace;

  const std::size_t spans = obs::tracer().snapshot().size();
  std::cout << "wrote obs_metrics.json (" << metrics.size()
            << " bytes) and obs_trace.json (" << spans << " spans)\n"
            << "open obs_trace.json in https://ui.perfetto.dev to see the "
               "per-node tracks\n";
  return spans == 0 ? 1 : 0;
}
