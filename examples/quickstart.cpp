// Quickstart: a two-node DO/CT system, one passive object, one logical
// thread, and the event facility end to end.
//
//   1. build a 2-node cluster,
//   2. register a passive object on node 2 with a public entry and an
//      object-based DELETE handler (the §5.1 template),
//   3. spawn a logical thread on node 1 that invokes the remote object
//      (the thread *travels* to node 2 and back),
//   4. attach a thread-based handler and raise a user event at the thread,
//   5. raise DELETE at the object and watch its object-based handler run.
//
// Build & run:  ./build/examples/quickstart
#include <atomic>
#include <iostream>

#include "runtime/runtime.hpp"

using namespace doct;

int main() {
  runtime::Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  // --- a passive object on node 2 (§5.1 template) -------------------------
  std::atomic<int> delete_handled{0};
  auto my_object = std::make_shared<objects::PassiveObject>("my_object");
  my_object->define_entry("work", [](objects::CallCtx& ctx)
                                      -> Result<objects::Payload> {
    const auto id = ctx.args.get<std::int64_t>();
    std::cout << "  [node 2] work(" << id << ") executed by thread "
              << ctx.thread->tid().to_string() << "\n";
    Writer w;
    w.put(id * 2);
    return std::move(w).take();
  });
  my_object->define_entry(
      "my_delete_handler",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        delete_handled++;
        std::cout << "  [node 2] object-based DELETE handler ran\n";
        return objects::Payload{};
      },
      objects::Visibility::kPrivate);
  my_object->define_handler("DELETE", "my_delete_handler");
  const ObjectId oid = n1.objects.add_object(my_object);

  // --- a thread-based handler procedure (§5.2, OWN_CONTEXT) ----------------
  cluster.procedures().register_procedure(
      "greet", [](events::PerThreadCallCtx& ctx) {
        std::cout << "  [thread handler] event " << ctx.block.event_name()
                  << " delivered to " << ctx.thread.tid().to_string()
                  << " at node " << ctx.thread.node().to_string() << "\n";
        return kernel::Verdict::kResume;
      });
  const EventId hello = cluster.registry().register_event("HELLO");

  // --- spawn a logical thread on node 1 ------------------------------------
  std::cout << "spawning logical thread on node 1...\n";
  const ThreadId tid = n0.kernel.spawn([&] {
    auto attached = n0.events.attach_handler(hello, "greet",
                                             events::OWN_CONTEXT);
    if (!attached.is_ok()) return;

    std::cout << "  [node 1] invoking remote object " << oid.to_string()
              << "...\n";
    Writer w;
    w.put(std::int64_t{21});
    auto result = n0.objects.invoke(oid, "work", std::move(w).take());
    if (result.is_ok()) {
      Reader r(result.value());
      std::cout << "  [node 1] result: " << r.get<std::int64_t>() << "\n";
    }
    // Delivery point: any HELLO raised at us runs the handler here.
    n0.kernel.sleep_for(std::chrono::milliseconds(50));
  });

  // Raise a user event at the thread (it may be on either node).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::cout << "raising HELLO at " << tid.to_string() << "...\n";
  n0.events.raise(hello, tid);

  n0.kernel.join_thread(tid);

  // Raise DELETE at the object — handled even with no thread inside (§4.3).
  std::cout << "raising DELETE at the passive object...\n";
  n0.events.raise(events::sys::kDelete, oid);
  for (int i = 0; i < 100 && delete_handled.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::cout << "done: delete handler ran " << delete_handled.load()
            << " time(s)\n";
  return delete_handled.load() == 1 ? 0 : 1;
}
