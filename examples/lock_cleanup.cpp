// Distributed lock cleanup via handler chaining (§4.2).
//
// "Consider the problem of unlocking shared data items in the case of the
//  abnormal termination of a distributed computation.  Often, it is not even
//  possible to know of all the locks the computation has acquired..."
//
// A worker acquires three named locks on a lock server living on another
// node; each acquisition chains an unlock handler onto the thread's
// TERMINATE chain.  The worker is then killed mid-computation — and every
// lock is released by the chained handlers, unblocking a second worker.
//
// Build & run:  ./build/examples/lock_cleanup
#include <atomic>
#include <iostream>

#include "runtime/runtime.hpp"
#include "services/locks/lock_manager.hpp"

using namespace doct;
using namespace std::chrono_literals;

int main() {
  runtime::Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  const ObjectId server = n1.objects.add_object(services::LockServer::make());
  services::LockClient locks(n0.events, n0.objects, server);

  std::atomic<bool> holding{false};
  const ThreadId victim = n0.kernel.spawn([&] {
    locks.acquire("customers.db");
    locks.acquire("orders.db");
    locks.acquire("audit.log");
    std::cout << "  [victim] holding 3 locks; TERMINATE chain depth = "
              << kernel::Kernel::current()->with_attributes(
                     [](kernel::ThreadAttributes& a) {
                       return a.handler_chain.size();
                     })
              << "\n";
    holding = true;
    while (true) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;  // until terminated
    }
  });
  while (!holding.load()) std::this_thread::sleep_for(1ms);

  std::atomic<bool> contender_got_all{false};
  const ThreadId contender = n0.kernel.spawn([&] {
    services::LockClient my_locks(n0.events, n0.objects, server);
    std::cout << "  [contender] waiting for the same locks...\n";
    const bool a = my_locks.acquire("customers.db", 10s).is_ok();
    const bool b = my_locks.acquire("orders.db", 10s).is_ok();
    const bool c = my_locks.acquire("audit.log", 10s).is_ok();
    contender_got_all = a && b && c;
  });

  std::this_thread::sleep_for(20ms);
  std::cout << "killing the victim (abnormal termination)...\n";
  n0.events.raise(events::sys::kTerminate, victim);

  n0.kernel.join_thread(victim, 15s);
  n0.kernel.join_thread(contender, 15s);

  std::cout << "contender acquired all 3 locks after victim death: "
            << (contender_got_all.load() ? "yes" : "NO (bug!)") << "\n";
  return contender_got_all.load() ? 0 : 1;
}
