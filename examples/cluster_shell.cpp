// cluster_shell — an interactive (or scripted) driver for a DO/CT cluster.
//
// Reads commands from stdin; useful for poking at the event facility by
// hand and as a scriptable smoke test:
//
//   nodes                          list nodes
//   spawn <node> [event...]        spawn a polling worker; it attaches a
//                                  logging OWN_CONTEXT handler for each
//                                  listed (registered) event
//   threads <node>                 list threads present at a node
//   object <node>                  create a counting object
//   invoke <oid> <delta>           invoke counter.add through a fresh thread
//   register <name>                register a user event
//   raise <event> thread <tid>     raise at a thread
//   raise <event> group <gid>      raise at a group
//   raise <event> object <oid>     raise at an object
//   locate <tid> [bcast|path|mcast]
//   terminate <tid>
//   stats <node>
//   quit
//
// Example session:  printf 'spawn 1\nraise TERMINATE thread <tid>\nquit\n' |
//                   ./build/examples/cluster_shell
#include <iostream>
#include <sstream>
#include <string>

#include "runtime/runtime.hpp"

using namespace doct;
using namespace std::chrono_literals;

namespace {

struct Shell {
  explicit Shell(std::size_t nodes) : cluster(nodes) {
    cluster.procedures().register_procedure(
        "shell_log", [](events::PerThreadCallCtx& ctx) {
          std::cout << "  [handler] " << ctx.block.event_name() << " at "
                    << ctx.thread.tid().to_string() << " on "
                    << ctx.thread.node().to_string() << "\n";
          return kernel::Verdict::kResume;
        });
  }

  runtime::NodeRuntime* node_by_number(std::uint64_t n) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.node(i).id.value() == n) return &cluster.node(i);
    }
    return nullptr;
  }

  runtime::NodeRuntime& any_node() { return cluster.node(0); }

  EventId event_by_name(const std::string& name) {
    auto found = cluster.registry().lookup(name);
    return found.is_ok() ? found.value() : EventId{};
  }

  runtime::Cluster cluster;
};

void handle_command(Shell& shell, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty() || cmd[0] == '#') return;

  if (cmd == "nodes") {
    for (NodeId id : shell.cluster.network().nodes()) {
      std::cout << "  " << id.to_string() << "\n";
    }
  } else if (cmd == "spawn") {
    std::uint64_t n = 1;
    in >> n;
    auto* node = shell.node_by_number(n);
    if (node == nullptr) {
      std::cout << "  no such node\n";
      return;
    }
    std::vector<EventId> to_handle;
    std::string event_name;
    while (in >> event_name) {
      const EventId event = shell.event_by_name(event_name);
      if (event.valid()) {
        to_handle.push_back(event);
      } else {
        std::cout << "  (skipping unknown event " << event_name << ")\n";
      }
    }
    const ThreadId tid = node->kernel.spawn([node, to_handle] {
      for (EventId event : to_handle) {
        node->events.attach_handler(event, "shell_log", events::OWN_CONTEXT);
      }
      while (true) {
        if (!node->kernel.sleep_for(1ms).is_ok()) return;
      }
    });
    std::cout << "  spawned " << tid.to_string();
    if (!to_handle.empty()) {
      std::cout << " handling " << to_handle.size() << " event(s)";
    }
    std::cout << "\n";
  } else if (cmd == "threads") {
    std::uint64_t n = 1;
    in >> n;
    auto* node = shell.node_by_number(n);
    if (node == nullptr) {
      std::cout << "  no such node\n";
      return;
    }
    for (ThreadId tid : node->kernel.local_threads()) {
      std::cout << "  " << tid.to_string() << "\n";
    }
  } else if (cmd == "object") {
    std::uint64_t n = 1;
    in >> n;
    auto* node = shell.node_by_number(n);
    if (node == nullptr) {
      std::cout << "  no such node\n";
      return;
    }
    auto counter = std::make_shared<std::atomic<std::int64_t>>(0);
    auto object = std::make_shared<objects::PassiveObject>("shell_counter");
    object->define_entry("add", [counter](objects::CallCtx& ctx)
                                    -> Result<objects::Payload> {
      *counter += ctx.args.get<std::int64_t>();
      Writer w;
      w.put(counter->load());
      return std::move(w).take();
    });
    object->define_entry(
        "on_event",
        [](objects::CallCtx& ctx) -> Result<objects::Payload> {
          events::EventBlock block = events::EventBlock::from_ctx(ctx);
          std::cout << "  [object handler] " << block.event_name() << "\n";
          return objects::Payload{};
        },
        objects::Visibility::kPrivate);
    object->define_handler("PING", "on_event");
    std::cout << "  created " << node->objects.add_object(object).to_string()
              << " (entries: add; handles PING)\n";
  } else if (cmd == "invoke") {
    std::uint64_t oid_raw = 0;
    std::int64_t delta = 1;
    in >> oid_raw >> delta;
    auto& node = shell.any_node();
    const ObjectId oid{oid_raw};
    const ThreadId tid = node.kernel.spawn([&node, oid, delta] {
      Writer w;
      w.put(delta);
      auto result = node.objects.invoke(oid, "add", std::move(w).take());
      if (result.is_ok()) {
        Reader r(result.value());
        std::cout << "  counter = " << r.get<std::int64_t>() << "\n";
      } else {
        std::cout << "  invoke failed: " << result.status().to_string() << "\n";
      }
    });
    node.kernel.join_thread(tid, 30s);
  } else if (cmd == "register") {
    std::string name;
    in >> name;
    std::cout << "  "
              << shell.cluster.registry().register_event(name).to_string()
              << " = " << name << "\n";
  } else if (cmd == "raise") {
    std::string event_name, kind;
    std::uint64_t target = 0;
    in >> event_name >> kind >> target;
    const EventId event = shell.event_by_name(event_name);
    if (!event.valid()) {
      std::cout << "  unknown event " << event_name << "\n";
      return;
    }
    auto& node = shell.any_node();
    Status status;
    if (kind == "thread") {
      status = node.events.raise(event, ThreadId{target});
    } else if (kind == "group") {
      status = node.events.raise(event, GroupId{target});
    } else if (kind == "object") {
      status = node.events.raise(event, ObjectId{target});
    } else {
      std::cout << "  raise <event> thread|group|object <id>\n";
      return;
    }
    std::cout << "  " << status.to_string() << "\n";
  } else if (cmd == "locate") {
    std::uint64_t tid_raw = 0;
    std::string strategy = "path";
    in >> tid_raw >> strategy;
    kernel::LocatorKind kind = kernel::LocatorKind::kPathFollow;
    if (strategy == "bcast") kind = kernel::LocatorKind::kBroadcast;
    if (strategy == "mcast") kind = kernel::LocatorKind::kMulticast;
    auto located = shell.any_node().kernel.locate(ThreadId{tid_raw}, kind);
    std::cout << "  "
              << (located.is_ok() ? located.value().to_string()
                                  : located.status().to_string())
              << "\n";
  } else if (cmd == "terminate") {
    std::uint64_t tid_raw = 0;
    in >> tid_raw;
    std::cout << "  "
              << shell.any_node()
                     .events.raise(events::sys::kTerminate, ThreadId{tid_raw})
                     .to_string()
              << "\n";
  } else if (cmd == "stats") {
    std::uint64_t n = 1;
    in >> n;
    auto* node = shell.node_by_number(n);
    if (node == nullptr) {
      std::cout << "  no such node\n";
      return;
    }
    const auto k = node->kernel.stats();
    const auto e = node->events.stats();
    std::cout << "  threads: spawned=" << k.threads_spawned
              << " terminated=" << k.threads_terminated
              << " migrations in/out=" << k.migrations_in << "/"
              << k.migrations_out << "\n";
    std::cout << "  events: async=" << e.raises_async
              << " sync=" << e.raises_sync
              << " thread_handlers=" << e.thread_handlers_run
              << " object_handlers=" << e.object_handlers_run
              << " defaults=" << e.defaults_applied << "\n";
  } else if (cmd == "help") {
    std::cout << "  commands: nodes spawn threads object invoke register"
                 " raise locate terminate stats quit\n";
  } else {
    std::cout << "  unknown command '" << cmd << "' (try help)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 3;
  Shell shell(nodes);
  std::cout << "doct cluster shell — " << nodes
            << " nodes up; type 'help' for commands\n";
  std::string line;
  while (std::cout << "> " && std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    handle_command(shell, line);
  }
  std::cout << "shutting down\n";
  return 0;
}
