// User-level virtual memory manager (§6.4).
//
// Node 1 hosts a pager server object.  Node 2 tags a segment as user-paged
// and designates the server as the VM_FAULT buddy handler.  A worker thread
// touches unmapped pages: each first touch suspends the thread with a
// synchronous VM_FAULT, the server supplies the page over the network, and
// the thread resumes — the application has bypassed the kernel's strict DSM
// coherence entirely.  Dirty pages are written back to the server's backing
// store, where a third node later picks them up.
//
// Build & run:  ./build/examples/external_pager
#include <iostream>

#include "runtime/runtime.hpp"
#include "services/pager/pager.hpp"

using namespace doct;
using namespace std::chrono_literals;

int main() {
  runtime::Cluster cluster(3);
  auto& pager_node = cluster.node(0);
  auto& worker_node = cluster.node(1);
  auto& reader_node = cluster.node(2);

  const ObjectId server =
      pager_node.objects.add_object(services::PagerServer::make(pager_node.rpc));
  services::PagerClient worker_pager(worker_node.events, worker_node.objects,
                                     worker_node.dsm, worker_node.rpc);
  services::PagerClient reader_pager(reader_node.events, reader_node.objects,
                                     reader_node.dsm, reader_node.rpc);

  const SegmentId seg{900};
  constexpr std::size_t kPages = 8;
  worker_pager.create_paged_segment(seg, kPages, server);
  reader_pager.create_paged_segment(seg, kPages, server);
  const std::size_t page_size = worker_node.dsm.page_size();

  std::cout << "worker on node 2 filling " << kPages
            << " user-paged pages (pager server on node 1)...\n";
  const ThreadId worker = worker_node.kernel.spawn([&] {
    worker_pager.arm_current_thread(server);
    for (std::size_t p = 0; p < kPages; ++p) {
      std::vector<std::uint8_t> line(32, static_cast<std::uint8_t>('A' + p));
      // First touch of each page raises VM_FAULT -> buddy handler -> page
      // arrives from the server, then the write proceeds.
      if (!worker_node.dsm.write(seg, p * page_size, line).is_ok()) return;
      worker_pager.writeback(seg, p, server);
    }
  });
  worker_node.kernel.join_thread(worker, 30s);

  const auto wstats = worker_pager.stats();
  std::cout << "worker done: " << wstats.faults_served << " faults, "
            << wstats.pages_installed << " pages installed, "
            << wstats.writebacks << " writebacks\n";

  std::cout << "reader on node 3 faulting the same pages back in...\n";
  int correct = 0;
  const ThreadId reader = reader_node.kernel.spawn([&] {
    reader_pager.arm_current_thread(server);
    for (std::size_t p = 0; p < kPages; ++p) {
      auto line = reader_node.dsm.read(seg, p * page_size, 32);
      if (line.is_ok() &&
          line.value() ==
              std::vector<std::uint8_t>(32, static_cast<std::uint8_t>('A' + p))) {
        correct++;
      }
    }
  });
  reader_node.kernel.join_thread(reader, 30s);

  std::cout << "reader verified " << correct << "/" << kPages
            << " pages via its own user-level pager\n";
  return correct == static_cast<int>(kPages) ? 0 : 1;
}
