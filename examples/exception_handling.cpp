// Two-level exception handling (§6.1).
//
// A worker invokes a parser object on another node.  The parser hits a
// DIVIDE_BY_ZERO-style fault twice:
//
//   1. the first fault is repaired by the OBJECT's own handler (generic
//      corrective action inside the object, §6.1 first chance);
//   2. the object declines the second fault (kPropagate), so it escalates to
//      the THREAD's handler — attached by the invoker at the point of
//      invocation with caller-restricted scope (§5.2) — which terminates the
//      computation cleanly.
//
// Build & run:  ./build/examples/exception_handling
#include <atomic>
#include <iostream>

#include "runtime/runtime.hpp"
#include "services/exceptions/exceptions.hpp"

using namespace doct;
using namespace std::chrono_literals;

int main() {
  runtime::Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  services::ExceptionFacility facility0(n0.events);
  services::ExceptionFacility facility1(n1.events);

  std::atomic<int> object_repairs{0};
  auto parser = std::make_shared<objects::PassiveObject>("parser");
  parser->define_entry(
      "fix",
      [&](objects::CallCtx&) -> Result<objects::Payload> {
        if (object_repairs.fetch_add(1) == 0) {
          std::cout << "  [parser] object handler repaired the fault\n";
          return objects::Payload{
              static_cast<std::uint8_t>(kernel::Verdict::kResume)};
        }
        std::cout << "  [parser] object handler declines; propagating to the"
                     " thread's chain\n";
        return objects::Payload{
            static_cast<std::uint8_t>(kernel::Verdict::kPropagate)};
      },
      objects::Visibility::kPrivate);
  parser->define_handler("DIVIDE_BY_ZERO", "fix");

  parser->define_entry("parse", [&](objects::CallCtx& ctx)
                                    -> Result<objects::Payload> {
    for (int record = 1; record <= 2; ++record) {
      std::cout << "  [parser] record " << record << ": fault!\n";
      auto verdict = facility1.raise(events::sys::kDivideByZero, ctx.self,
                                     "pc=0xbeef record=" + std::to_string(record));
      if (!verdict.is_ok()) return verdict.status();
      if (verdict.value() == kernel::Verdict::kTerminate) {
        return Status{StatusCode::kTerminated, "computation aborted"};
      }
    }
    return objects::Payload{};
  });
  const ObjectId parser_id = n1.objects.add_object(parser);

  cluster.procedures().register_procedure(
      "invoker_handler", [](events::PerThreadCallCtx& ctx) {
        std::cout << "  [invoker handler] second fault reached the thread "
                  << ctx.thread.tid().to_string()
                  << "; terminating the computation\n";
        return kernel::Verdict::kTerminate;
      });

  std::atomic<bool> saw_terminate{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    // §5.2 pattern: the calling thread attaches the handler at the point of
    // invocation; the RAII guard restricts its scope to this call.
    services::ScopedHandler guard(n0.events, events::sys::kDivideByZero,
                                  "invoker_handler", events::OWN_CONTEXT);
    std::cout << "invoking parser with exception handler attached...\n";
    auto result = n0.objects.invoke(parser_id, "parse", {});
    saw_terminate = !result.is_ok() &&
                    (result.status().code() == StatusCode::kTerminated);
    std::cout << "invocation returned: " << result.status().to_string() << "\n";
  });
  n0.kernel.join_thread(tid, 30s);

  std::cout << "\nobject repaired " << object_repairs.load() - 1
            << " fault(s); escalation terminated the thread: "
            << (saw_terminate.load() ? "yes" : "no") << "\n";
  return object_repairs.load() == 2 && saw_terminate.load() ? 0 : 1;
}
