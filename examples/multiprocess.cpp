// multiprocess — drives a cluster of doct-node OS processes over real
// sockets and asserts the cross-process smoke scenario end to end:
//
//   ./build/examples/multiprocess [--nodes=N] [--transport=unix|tcp]
//       [--doct-node=PATH] [--logs=DIR] [--obs-dump=DIR] [--kill]
//       [--doct-top=PATH] [--flight-dir=DIR]
//
// The driver spawns N doct-node processes wired into a full mesh (Unix
// sockets by default; --transport=tcp uses loopback TCP with driver-probed
// free ports), then watches the coordinator's log for the scenario markers:
// worker discovery by RPC, remote raise + raise_and_wait round trips, and a
// 100-raise broadcast storm counted by every worker.  With --kill it
// SIGKILLs the highest-numbered node after the storm and asserts every
// survivor's failure detector reports MP-NODE-DOWN before the cluster winds
// down cleanly.  With --obs-dump it checks the per-process trace dumps
// stitch: at least one trace id minted on one node must appear in another
// node's dump (the wire spans cross process boundaries).
//
// With --doct-top the driver attaches the live viewer to the coordinator
// after the storm and asserts it prints one row per node; with --flight-dir
// each node records its flight ring there, and the --kill phase asserts
// every survivor dumped a peer-down flight file for the victim.
//
// Exit 0 = every assertion held.  Non-zero prints "MP-DRIVER-FAIL <why>" —
// CI turns that plus the uploaded per-node logs into the failure artifact.
#include <signal.h>
#include <unistd.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "runtime/launcher.hpp"

using namespace doct;
using namespace std::chrono_literals;

namespace {

int fail(const std::string& why) {
  std::cout << "MP-DRIVER-FAIL " << why << std::endl;
  return 1;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool wait_for_marker(const std::string& log_path, const std::string& marker,
                     Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (read_file(log_path).find(marker) != std::string::npos) return true;
    std::this_thread::sleep_for(50ms);
  }
  return false;
}

// Reserves a free loopback TCP port: bind port 0, read it back, close.  The
// tiny window before doct-node rebinds it is standard test practice.
int probe_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  ::close(fd);
  return ntohs(sa.sin_port);
}

// Extracts the set of "trace_id":"..." values from a Chrome trace dump.
std::set<std::string> trace_ids(const std::string& json) {
  std::set<std::string> ids;
  const std::string key = "\"trace_id\":\"";
  std::size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const std::size_t end = json.find('"', pos);
    if (end == std::string::npos) break;
    ids.insert(json.substr(pos, end - pos));
    pos = end;
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 4;
  std::string transport = "unix";
  std::string doct_node;
  std::string logs = "mp-logs";
  std::string obs_dump;
  std::string doct_top;
  std::string flight_dir;
  bool kill_phase = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--nodes=")) {
      nodes = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--transport=")) {
      transport = v;
    } else if (const char* v = value("--doct-node=")) {
      doct_node = v;
    } else if (const char* v = value("--logs=")) {
      logs = v;
    } else if (const char* v = value("--obs-dump=")) {
      obs_dump = v;
    } else if (const char* v = value("--doct-top=")) {
      doct_top = v;
    } else if (const char* v = value("--flight-dir=")) {
      flight_dir = v;
    } else if (arg == "--kill") {
      kill_phase = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (nodes < 2) return fail("--nodes must be >= 2");
  if (transport != "unix" && transport != "tcp") {
    return fail("--transport must be unix or tcp");
  }
  if (doct_node.empty()) {
    // Conventional layout: examples/multiprocess next to src/runtime/doct-node
    // inside the build tree.
    const std::string self = argv[0];
    const std::size_t slash = self.rfind('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : self.substr(0, slash);
    doct_node = dir + "/../src/runtime/doct-node";
  }
  ::mkdir(logs.c_str(), 0755);
  if (!obs_dump.empty()) ::mkdir(obs_dump.c_str(), 0755);
  if (!flight_dir.empty()) ::mkdir(flight_dir.c_str(), 0755);

  // Assign every node's listen address up front so each process can be
  // handed the full peer map on its command line.
  std::map<std::uint64_t, std::string> addresses;
  for (std::uint64_t n = 1; n <= nodes; ++n) {
    if (transport == "unix") {
      addresses[n] = "unix:/tmp/doct-mp-" + std::to_string(::getpid()) + "-n" +
                     std::to_string(n) + ".sock";
    } else {
      const int port = probe_free_port();
      if (port < 0) return fail("could not probe a free tcp port");
      addresses[n] = "tcp:127.0.0.1:" + std::to_string(port);
    }
  }

  const NodeId victim{kill_phase ? nodes : 0};
  runtime::ProcessGroup procs;
  std::map<std::uint64_t, pid_t> pids;
  std::map<std::uint64_t, std::string> node_logs;
  for (std::uint64_t n = 1; n <= nodes; ++n) {
    std::vector<std::string> args{
        "--node=" + std::to_string(n),
        "--nodes=" + std::to_string(nodes),
        "--listen=" + addresses[n],
    };
    for (std::uint64_t p = 1; p <= nodes; ++p) {
      if (p == n) continue;
      args.push_back("--peer=" + std::to_string(p) + "=" + addresses[p]);
    }
    if (victim.valid()) {
      args.push_back("--kill-victim=" + std::to_string(victim.value()));
    }
    if (!obs_dump.empty()) args.push_back("--obs-dump=" + obs_dump);
    if (!flight_dir.empty()) args.push_back("--flight-dir=" + flight_dir);
    if (!doct_top.empty()) {
      // Hold the cluster up after the scenario so the viewer can attach to
      // live processes (the coordinator is the only reader of this flag).
      args.push_back("--hold-ms=15000");
    }
    node_logs[n] = logs + "/node" + std::to_string(n) + ".log";
    auto pid = procs.spawn(doct_node, args, node_logs[n]);
    if (!pid.is_ok()) return fail("spawn: " + pid.status().to_string());
    pids[n] = pid.value();
  }
  std::cout << "spawned " << nodes << " doct-node processes over " << transport
            << std::endl;

  // The coordinator narrates the scenario; each marker is an assertion.
  for (const char* marker :
       {"MP-OK discover", "MP-OK raise_and_wait", "MP-OK storm"}) {
    if (!wait_for_marker(node_logs[1], marker, 120s)) {
      return fail(std::string("coordinator never reached \"") + marker +
                  "\" (see " + node_logs[1] + ")");
    }
    std::cout << "coordinator: " << marker << std::endl;
  }

  if (!doct_top.empty()) {
    // Attach the live viewer to the (still running) coordinator and assert
    // it renders one row per node from the merged collector snapshot.
    const std::string top_log = logs + "/doct-top.log";
    auto pid = procs.spawn(doct_top,
                           {"--connect=" + addresses[1], "--once"}, top_log);
    if (!pid.is_ok()) {
      return fail("doct-top spawn: " + pid.status().to_string());
    }
    auto rc = procs.wait(pid.value(), 60s);
    if (!rc.is_ok() || rc.value() != 0) {
      return fail("doct-top exited " +
                  (rc.is_ok() ? std::to_string(rc.value())
                              : rc.status().to_string()) +
                  " (see " + top_log + ")");
    }
    const std::string output = read_file(top_log);
    for (std::uint64_t n = 1; n <= nodes; ++n) {
      // Rows are left-justified node ids at line starts.
      if (output.find("\n" + std::to_string(n) + " ") == std::string::npos) {
        return fail("doct-top output has no row for node " +
                    std::to_string(n) + " (see " + top_log + ")");
      }
    }
    std::cout << "doct-top rendered " << nodes << " node rows" << std::endl;
  }

  if (kill_phase) {
    std::cout << "killing " << victim.to_string() << " (SIGKILL)" << std::endl;
    procs.signal(pids[victim.value()], SIGKILL);
    auto rc = procs.wait(pids[victim.value()], 10s);
    if (!rc.is_ok() || rc.value() != 128 + SIGKILL) {
      return fail("victim did not die to SIGKILL");
    }
    // Every survivor's failure detector must notice the dead node.
    const std::string down_marker = "MP-NODE-DOWN " + victim.to_string();
    for (std::uint64_t n = 1; n <= nodes; ++n) {
      if (n == victim.value()) continue;
      if (!wait_for_marker(node_logs[n], down_marker, 60s)) {
        return fail("node " + std::to_string(n) + " never reported " +
                    down_marker);
      }
    }
    std::cout << "all survivors reported " << down_marker << std::endl;

    if (!flight_dir.empty()) {
      // The black box: every survivor must have frozen its flight ring to
      // disk when its failure detector reported the victim down.
      for (std::uint64_t n = 1; n <= nodes; ++n) {
        if (n == victim.value()) continue;
        const std::string dump = flight_dir + "/flight-node" +
                                 std::to_string(n) + "-peer-down-n" +
                                 std::to_string(victim.value()) + ".json";
        const auto deadline = std::chrono::steady_clock::now() + 30s;
        std::string body;
        while (body.find("\"entries\"") == std::string::npos) {
          if (std::chrono::steady_clock::now() >= deadline) {
            return fail("no flight dump from survivor " + std::to_string(n) +
                        " at " + dump);
          }
          std::this_thread::sleep_for(100ms);
          body = read_file(dump);
        }
      }
      std::cout << "flight dumps present from all survivors" << std::endl;
    }
  }

  if (!wait_for_marker(node_logs[1], "MP-OK done", 60s)) {
    return fail("coordinator never finished (see " + node_logs[1] + ")");
  }
  for (std::uint64_t n = 1; n <= nodes; ++n) {
    if (victim.valid() && n == victim.value()) continue;
    auto rc = procs.wait(pids[n], 60s);
    if (!rc.is_ok() || rc.value() != 0) {
      return fail("node " + std::to_string(n) + " exited " +
                  (rc.is_ok() ? std::to_string(rc.value())
                              : rc.status().to_string()));
    }
  }

  if (!obs_dump.empty()) {
    // Cross-process trace stitching: some causal chain must have spans in
    // more than one node's dump (raise on the coordinator, wire + handle on
    // a worker).  Trace-id spaces are node-disjoint, so an overlap can only
    // mean one trace genuinely crossed processes.
    std::map<std::uint64_t, std::set<std::string>> per_node;
    for (std::uint64_t n = 1; n <= nodes; ++n) {
      if (victim.valid() && n == victim.value()) continue;
      per_node[n] = trace_ids(
          read_file(obs_dump + "/trace-node" + std::to_string(n) + ".json"));
    }
    bool stitched = false;
    for (const auto& [a, ids_a] : per_node) {
      for (const auto& [b, ids_b] : per_node) {
        if (a >= b) continue;
        for (const std::string& id : ids_a) {
          if (ids_b.contains(id)) {
            stitched = true;
            break;
          }
        }
      }
    }
    if (!stitched) {
      return fail("no trace id appears in more than one node's dump");
    }
    std::cout << "traces stitch across processes" << std::endl;
  }

  std::cout << "MP-DRIVER-OK nodes=" << nodes << " transport=" << transport
            << (kill_phase ? " kill" : "") << std::endl;
  return 0;
}
