// Concurrent search with asynchronous partial-result notification (§1).
//
// "An important distributed programming technique involves starting up
//  multiple processes (or threads) to perform a task (concurrently) and then
//  asynchronously notify each other of partial results obtained (unexpected
//  discoveries, quicker heuristic searches, etc.)  A generalized
//  notification scheme is useful in implementing such algorithms."
//
// Four workers across two nodes search disjoint ranges for the input
// minimizing a cost function.  Whenever a worker improves the global bound
// it raises BOUND_IMPROVED at the whole thread group; every worker's handler
// tightens its local pruning bound, so discoveries propagate without any
// polling or shared memory.
//
// Build & run:  ./build/examples/parallel_search
#include <atomic>
#include <cmath>
#include <iostream>
#include <limits>

#include "runtime/runtime.hpp"

using namespace doct;
using namespace std::chrono_literals;

namespace {

// A bumpy cost function whose global minimum is at x = 31337 (cost <= 1).
double cost(std::uint64_t x) {
  const double v = static_cast<double>(x);
  return std::abs(v - 31337.0) / 10.0 + std::abs(std::sin(v));
}

}  // namespace

int main() {
  constexpr std::uint64_t kSpace = 60000;
  constexpr int kWorkers = 4;

  runtime::Cluster cluster(2);
  auto& n0 = cluster.node(0);
  const EventId improved = cluster.registry().register_event("BOUND_IMPROVED");

  // Shared-by-handler state: each worker keeps a local bound the handler
  // updates when a notification arrives.
  struct WorkerState {
    std::atomic<double> bound{std::numeric_limits<double>::infinity()};
    std::atomic<long> pruned{0};
  };
  std::vector<WorkerState> states(kWorkers);
  std::atomic<double> best_cost{std::numeric_limits<double>::infinity()};
  std::atomic<std::uint64_t> best_x{0};
  std::atomic<int> notifications{0};

  for (int w = 0; w < kWorkers; ++w) {
    cluster.procedures().register_procedure(
        "tighten_" + std::to_string(w),
        [&states, &notifications, w](events::PerThreadCallCtx& ctx) {
          auto r = ctx.block.user_reader();
          const double incoming = r.get<double>();
          double current = states[static_cast<size_t>(w)].bound.load();
          while (incoming < current &&
                 !states[static_cast<size_t>(w)].bound.compare_exchange_weak(
                     current, incoming)) {
          }
          notifications++;
          return kernel::Verdict::kResume;
        });
  }

  const GroupId group = n0.kernel.create_group();
  std::vector<ThreadId> workers;
  for (int w = 0; w < kWorkers; ++w) {
    auto* node = &cluster.node(static_cast<std::size_t>(w % 2));
    kernel::SpawnOptions options;
    options.group = group;
    workers.push_back(node->kernel.spawn(
        [&, w, node] {
          node->events.attach_handler(improved, "tighten_" + std::to_string(w),
                                      events::OWN_CONTEXT);
          const std::uint64_t lo = kSpace / kWorkers * static_cast<std::uint64_t>(w);
          const std::uint64_t hi = lo + kSpace / kWorkers;
          auto& my = states[static_cast<size_t>(w)];
          for (std::uint64_t x = lo; x < hi; ++x) {
            // Cheap lower bound for the block: prune whole blocks whose best
            // case cannot beat the announced bound.
            if (x % 500 == 0) {
              node->kernel.poll_events();  // delivery point: learn new bounds
              // Best possible cost anywhere in the next 500-point block.
              const double lower =
                  std::abs(static_cast<double>(x) - 31337.0) / 10.0 - 50.0;
              if (lower > my.bound.load()) {
                my.pruned += 500;
                x += 499;
                continue;
              }
            }
            const double c = cost(x);
            // Announce only MEANINGFUL improvements (10 cost units, or any
            // improvement near the bottom) so the group isn't flooded with
            // epsilon updates.
            const double bound = my.bound.load();
            if (c < bound - 10.0 || (c < bound && c < 2.0)) {
              my.bound = c;
              double global = best_cost.load();
              while (c < global && !best_cost.compare_exchange_weak(global, c)) {
              }
              if (c <= best_cost.load()) best_x = x;
              Writer wdata;
              wdata.put(c);
              node->events.raise(improved, group, std::move(wdata).take());
            }
          }
        },
        options));
  }

  for (int w = 0; w < kWorkers; ++w) {
    auto& node = cluster.node(static_cast<std::size_t>(w % 2));
    node.kernel.join_thread(workers[static_cast<size_t>(w)], 60s);
  }

  long pruned_total = 0;
  for (const auto& s : states) pruned_total += s.pruned.load();

  std::cout << "search space: " << kSpace << " points, " << kWorkers
            << " workers on 2 nodes\n";
  std::cout << "best x = " << best_x.load() << "  cost = " << best_cost.load()
            << "\n";
  std::cout << "bound notifications delivered: " << notifications.load()
            << ", points pruned via notifications: " << pruned_total << "\n";
  const bool found = best_x.load() != 0 && best_cost.load() < 2.0;
  std::cout << (found ? "minimum found" : "MISSED minimum (bug!)") << "\n";
  return found ? 0 : 1;
}
