// Distributed monitoring for liveliness (§6.2).
//
// A worker thread migrates across three nodes doing phased work.  A central
// monitor server on node 1 receives periodic samples: the TIMER registration
// travels in the thread's attributes and is recreated at every node, and the
// OWN_CONTEXT handler samples the thread wherever it happens to be.
//
// Build & run:  ./build/examples/monitoring
#include <iostream>
#include <map>

#include "runtime/runtime.hpp"
#include "services/monitor/monitor.hpp"

using namespace doct;
using namespace std::chrono_literals;

int main() {
  runtime::Cluster cluster(3);
  auto& n0 = cluster.node(0);

  const ObjectId server = n0.objects.add_object(services::MonitorServer::make());
  services::MonitorClient monitor(n0.events, n0.objects, server);

  // Phase objects on nodes 2 and 3.
  auto make_phase = [&](runtime::NodeRuntime& node, const std::string& name) {
    auto object = std::make_shared<objects::PassiveObject>(name);
    object->define_entry("run", [name](objects::CallCtx& ctx)
                                    -> Result<objects::Payload> {
      services::set_pc_marker(name);
      for (int i = 0; i < 15; ++i) {
        if (!ctx.manager.kernel().sleep_for(3ms).is_ok()) break;
      }
      return objects::Payload{};
    });
    return node.objects.add_object(object);
  };
  const ObjectId phase_b = make_phase(cluster.node(1), "phase_b");
  const ObjectId phase_c = make_phase(cluster.node(2), "phase_c");

  std::cout << "starting monitored worker (5ms sampling period)...\n";
  const ThreadId tid = n0.kernel.spawn([&] {
    monitor.arm(5ms);
    services::set_pc_marker("phase_a");
    for (int i = 0; i < 10; ++i) {
      if (!n0.kernel.sleep_for(3ms).is_ok()) return;
    }
    (void)n0.objects.invoke(phase_b, "run", {});
    (void)n0.objects.invoke(phase_c, "run", {});
  });
  n0.kernel.join_thread(tid, 15s);

  auto report = n0.objects.invoke(server, "report", {});
  if (!report.is_ok()) {
    std::cerr << "report failed: " << report.status().to_string() << "\n";
    return 1;
  }
  const auto samples = services::MonitorServer::decode_report(report.value());

  std::map<std::pair<std::uint64_t, std::string>, int> histogram;
  for (const auto& s : samples) histogram[{s.node, s.pc}]++;

  std::cout << "\ncollected " << samples.size()
            << " samples; (node, phase) histogram:\n";
  for (const auto& [key, count] : histogram) {
    std::cout << "  node " << key.first << "  pc=" << key.second << "  x"
              << count << "\n";
  }
  // Success criteria: the monitor saw the thread on more than one node.
  std::map<std::uint64_t, int> nodes_seen;
  for (const auto& s : samples) nodes_seen[s.node]++;
  std::cout << "\nthread observed on " << nodes_seen.size() << " node(s)\n";
  return nodes_seen.size() >= 2 && !samples.empty() ? 0 : 1;
}
