// The "distributed ^C problem" (§6.3), end to end.
//
// A distributed application: a root thread on node 1 spawns three workers;
// each worker invokes a service object on another node and computes there.
// The objects are shared — an unrelated application's thread also works
// inside one of them.  A simulated ^C raises TERMINATE at the root thread:
//
//   * the root's TERMINATE handler aborts the top-level invocation chain
//     (ABORT events reach every object on it, which run cleanup) and raises
//     QUIT at the thread group,
//   * every group member aborts its own chain and terminates,
//   * the unrelated application is untouched.
//
// Build & run:  ./build/examples/distributed_ctrl_c
#include <atomic>
#include <iostream>

#include "runtime/runtime.hpp"
#include "services/termination/termination.hpp"

using namespace doct;
using namespace std::chrono_literals;

int main() {
  runtime::Cluster cluster(3);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  auto& n2 = cluster.node(2);

  services::TerminationService term0(n0.events);
  services::TerminationService term1(n1.events);
  services::TerminationService term2(n2.events);

  // Service objects on nodes 2 and 3, armed for ABORT cleanup.
  std::atomic<int> cleanups{0};
  std::atomic<int> busy{0};
  auto make_service = [&](services::TerminationService& term,
                          const std::string& label) {
    auto object = std::make_shared<objects::PassiveObject>(label);
    object->define_entry("compute", [&, label](objects::CallCtx& ctx)
                                        -> Result<objects::Payload> {
      busy++;
      std::cout << "  [" << label << "] thread "
                << ctx.thread->tid().to_string() << " computing...\n";
      while (true) {
        if (!ctx.manager.kernel().sleep_for(1ms).is_ok()) break;
      }
      std::cout << "  [" << label << "] invocation unwound\n";
      return objects::Payload{};
    });
    term.arm_object(*object, [&, label](ThreadId tid) {
      cleanups++;
      std::cout << "  [" << label << "] ABORT cleanup for "
                << tid.to_string() << " (closing channels, freeing locks)\n";
    });
    return object;
  };
  const ObjectId svc_a = n1.objects.add_object(make_service(term1, "service_a@node2"));
  const ObjectId svc_b = n2.objects.add_object(make_service(term2, "service_b@node3"));

  // The application: root + 3 workers spread over both services.
  ThreadId root_tid;
  std::atomic<bool> armed{false};
  std::vector<ThreadId> workers;
  std::mutex workers_mu;
  const ThreadId root = n0.kernel.spawn([&] {
    root_tid = kernel::Kernel::current()->tid();
    term0.arm_current_thread();  // TERMINATE + QUIT handlers, inherited below
    for (int i = 0; i < 3; ++i) {
      const ObjectId target = i % 2 == 0 ? svc_a : svc_b;
      const ThreadId worker = n0.kernel.spawn(
          [&, target] { (void)n0.objects.invoke(target, "compute", {}); });
      std::lock_guard<std::mutex> lock(workers_mu);
      workers.push_back(worker);
    }
    armed = true;
    while (true) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });

  // The unrelated application sharing service_a's node.
  std::atomic<bool> unrelated_done{false};
  std::atomic<bool> unrelated_survived{false};
  const ThreadId unrelated = n1.kernel.spawn([&] {
    while (!unrelated_done.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
    unrelated_survived = true;
  });

  while (!armed.load() || busy.load() < 3) std::this_thread::sleep_for(1ms);
  std::cout << "application running: root + 3 workers across 3 nodes\n";
  std::cout << "\n^C  — raising TERMINATE at the root thread "
            << root_tid.to_string() << "\n\n";
  term0.request_termination(root_tid);

  n0.kernel.join_thread(root, 15s);
  {
    std::lock_guard<std::mutex> lock(workers_mu);
    for (ThreadId worker : workers) n0.kernel.join_thread(worker, 15s);
  }
  for (int i = 0; i < 500 && cleanups.load() < 3; ++i) {
    std::this_thread::sleep_for(1ms);
  }

  unrelated_done = true;
  n1.kernel.join_thread(unrelated, 10s);

  std::cout << "\nall application threads terminated; " << cleanups.load()
            << " object cleanups ran; unrelated thread survived: "
            << (unrelated_survived.load() ? "yes" : "NO (bug!)") << "\n";
  return unrelated_survived.load() && cleanups.load() >= 3 ? 0 : 1;
}
