#include "objects/manager.hpp"

#include "common/log.hpp"

namespace doct::objects {

namespace {

constexpr const char* kInvokeMethod = "object.invoke";
constexpr const char* kSpawnInvokeMethod = "object.spawn_invoke";
constexpr const char* kInvokeCompleteMethod = "object.invoke_complete";

// Application-level result carried inside a successful RPC reply so that the
// updated thread-context core is returned even when the entry failed.
Payload encode_entry_result(const Result<Payload>& result) {
  Writer w;
  w.put(result.status().code());
  w.put(result.status().message());
  w.put(result.is_ok() ? result.value() : Payload{});
  return std::move(w).take();
}

Result<Payload> decode_entry_result(Reader& r) {
  const auto code = r.get<StatusCode>();
  auto message = r.get_string();
  auto value = r.get_bytes();
  if (code != StatusCode::kOk) return Status{code, std::move(message)};
  return value;
}

}  // namespace

Result<Payload> PendingInvocation::claim(Duration timeout) {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->cv.wait_for(lock, timeout,
                           [&] { return state_->result.has_value(); })) {
    return Status{StatusCode::kTimeout, "async invocation claim timed out"};
  }
  return *state_->result;
}

bool PendingInvocation::ready() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->result.has_value();
}

ObjectManager::ObjectManager(kernel::Kernel& kernel, rpc::RpcEndpoint& rpc)
    : kernel_(kernel), rpc_(rpc) {
  rpc_.register_method(kInvokeMethod, [this](NodeId caller, Reader& args) {
    return rpc_invoke(caller, args);
  });
  // spawn_invoke only creates a thread and returns; it must stay responsive
  // even when all workers are busy executing invocations.
  rpc_.register_method(
      kSpawnInvokeMethod,
      [this](NodeId caller, Reader& args) {
        return rpc_spawn_invoke(caller, args);
      },
      rpc::MethodClass::kFast);
  rpc_.register_method(
      kInvokeCompleteMethod,
      [this](NodeId caller, Reader& args) {
        return rpc_invoke_complete(caller, args);
      },
      rpc::MethodClass::kFast);

  metrics_source_ = obs::metrics().register_source(
      "node" + std::to_string(kernel_.self().value()) + ".objects", [this] {
        const ObjectManagerStats s = stats();
        return std::vector<std::pair<std::string, std::uint64_t>>{
            {"invocations_local", s.invocations_local},
            {"invocations_remote", s.invocations_remote},
            {"invocations_dsm", s.invocations_dsm},
            {"async_spawns", s.async_spawns},
            {"oneway_spawns", s.oneway_spawns},
            {"handler_invocations", s.handler_invocations},
        };
      });
}

ObjectManager::~ObjectManager() {
  rpc_.unregister_method(kInvokeMethod);
  rpc_.unregister_method(kSpawnInvokeMethod);
  rpc_.unregister_method(kInvokeCompleteMethod);
  // Fail outstanding async claims.
  std::unordered_map<std::uint64_t, PendingEntry> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending.swap(pending_);
  }
  for (auto& [token, entry] : pending) {
    {
      std::lock_guard<std::mutex> lock(entry.state->mu);
      if (!entry.state->result.has_value()) {
        entry.state->result = Status{StatusCode::kAborted, "manager shut down"};
      }
    }
    entry.state->cv.notify_all();
  }
}

NodeId ObjectManager::object_node(ObjectId id) {
  return IdGenerator::object_home_node(id);
}

ObjectId ObjectManager::make_object_id() {
  return kernel_.ids().next_object_id(kernel_.self());
}

ObjectId ObjectManager::add_object(std::shared_ptr<PassiveObject> object) {
  const ObjectId id = make_object_id();
  object->set_id(id);
  std::lock_guard<std::mutex> lock(mu_);
  objects_.emplace(id, std::move(object));
  return id;
}

Status ObjectManager::add_replica(ObjectId id,
                                  std::shared_ptr<PassiveObject> object) {
  if (!id.valid()) return {StatusCode::kInvalidArgument, "invalid object id"};
  object->set_id(id);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = objects_.emplace(id, std::move(object));
  (void)it;
  if (!inserted) return {StatusCode::kAlreadyExists, id.to_string()};
  return Status::ok();
}

Status ObjectManager::remove_object(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.erase(id) > 0
             ? Status::ok()
             : Status{StatusCode::kNoSuchObject, id.to_string()};
}

std::shared_ptr<PassiveObject> ObjectManager::find(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : it->second;
}

// --- local execution ----------------------------------------------------------

Result<Payload> ObjectManager::run_local(ObjectId object,
                                         const std::string& entry,
                                         Payload args,
                                         bool enforce_visibility,
                                         const kernel::EventNotice* notice) {
  auto obj = find(object);
  if (obj == nullptr) {
    return Status{StatusCode::kNoSuchObject, object.to_string()};
  }
  auto fn = obj->lookup(entry, enforce_visibility);
  if (!fn.is_ok()) return fn.status();

  kernel::ThreadContext* thread = kernel::Kernel::current();
  ObjectId previous;
  if (thread != nullptr) {
    previous = thread->current_object();
    thread->set_current_object(object);
    thread->with_attributes([&](kernel::ThreadAttributes& a) {
      a.call_chain.push_back(kernel::InvocationFrame{object, kernel_.self()});
    });
    // Invocation entry is a delivery point.
    const Status polled = kernel_.poll_events();
    if (!polled.is_ok()) {
      thread->with_attributes(
          [&](kernel::ThreadAttributes& a) { a.call_chain.pop_back(); });
      thread->set_current_object(previous);
      return polled;
    }
  }

  Reader reader(std::move(args));
  CallCtx ctx{*this, thread, object, reader, notice};
  Result<Payload> result = [&]() -> Result<Payload> {
    try {
      return (*fn.value())(ctx);
    } catch (const std::exception& e) {
      return Status{StatusCode::kInternal,
                    std::string("entry threw: ") + e.what()};
    }
  }();

  if (thread != nullptr) {
    thread->with_attributes([&](kernel::ThreadAttributes& a) {
      if (!a.call_chain.empty()) a.call_chain.pop_back();
    });
    thread->set_current_object(previous);
    // Invocation exit is a delivery point.
    const Status polled = kernel_.poll_events();
    if (!polled.is_ok() && result.is_ok()) return polled;
  }
  return result;
}

Result<Payload> ObjectManager::invoke_handler_entry(
    ObjectId object, const std::string& entry, Payload args,
    kernel::ThreadContext*) {
  bump(&AtomicStats::handler_invocations);
  return run_local(object, entry, std::move(args),
                   /*enforce_visibility=*/false);
}

Result<Payload> ObjectManager::invoke_handler_notice(
    ObjectId object, const std::string& entry,
    const kernel::EventNotice& notice) {
  bump(&AtomicStats::handler_invocations);
  // Empty argument payload: the entry reads the notice through
  // EventBlock::from_ctx instead of deserializing its args.
  return run_local(object, entry, Payload{},
                   /*enforce_visibility=*/false, &notice);
}

// --- synchronous invocation -----------------------------------------------------

Result<Payload> ObjectManager::invoke(ObjectId object, const std::string& entry,
                                      Payload args, InvokeMode mode) {
  const NodeId home = object_node(object);
  if (!home.valid()) {
    return Status{StatusCode::kNoSuchObject, object.to_string()};
  }

  if (mode == InvokeMode::kDsm) {
    // DSM mode: data comes to the computation; the thread stays here.  The
    // object must have a local replica whose state is DSM-backed.
    if (find(object) == nullptr) {
      return Status{StatusCode::kNoSuchObject,
                    "no local replica for DSM-mode invocation of " +
                        object.to_string()};
    }
    bump(&AtomicStats::invocations_dsm);
    return run_local(object, entry, std::move(args),
                     /*enforce_visibility=*/true);
  }

  if (home == kernel_.self() && mode != InvokeMode::kRpc) {
    bump(&AtomicStats::invocations_local);
    return run_local(object, entry, std::move(args),
                     /*enforce_visibility=*/true);
  }

  // Remote (or forced-RPC) invocation: the logical thread travels.
  kernel::ThreadContext* thread = kernel::Kernel::current();
  if (thread == nullptr) {
    return Status{StatusCode::kInvalidArgument,
                  "remote invocation requires a logical thread"};
  }
  bump(&AtomicStats::invocations_remote);
  auto travel_result = kernel_.travel(
      home, [&](const rpc::Payload& core) -> Result<rpc::Payload> {
        Writer w;
        w.put(core);
        w.put(object);
        w.put(entry);
        w.put(args);
        return rpc_.call(home, kInvokeMethod, std::move(w).take());
      });
  if (!travel_result.is_ok()) return travel_result.status();
  Reader r(std::move(travel_result).value());
  return decode_entry_result(r);
}

Result<rpc::Payload> ObjectManager::rpc_invoke(NodeId, Reader& args) {
  auto core = args.get_bytes();
  const auto object = args.get_id<ObjectTag>();
  const auto entry = args.get_string();
  auto entry_args = args.get_bytes();

  Result<Payload> entry_result{Payload{}};
  auto adopt_result = kernel_.adopt_and_run(
      core, [&](kernel::ThreadContext&) -> Status {
        entry_result = run_local(object, entry, std::move(entry_args),
                                 /*enforce_visibility=*/true);
        // Entry-level failures travel inside the composite reply, not as RPC
        // failures (the updated context core must still reach the caller).
        return Status::ok();
      });
  if (!adopt_result.is_ok()) return adopt_result.status();

  // Reply layout expected by Kernel::travel: [len-prefixed core][raw result].
  Writer out;
  out.put(adopt_result.value());
  Payload composed = std::move(out).take();
  const Payload encoded = encode_entry_result(entry_result);
  composed.insert(composed.end(), encoded.begin(), encoded.end());
  return composed;
}

// --- asynchronous invocations -----------------------------------------------------

Result<PendingInvocation> ObjectManager::invoke_async(ObjectId object,
                                                      const std::string& entry,
                                                      Payload args) {
  kernel::ThreadContext* thread = kernel::Kernel::current();
  const NodeId home = object_node(object);

  // Child tid rooted HERE: the trail starts at this node.
  const ThreadId child = kernel_.ids().next_thread_id(kernel_.self());

  // The system keeps track of claimable async invocations: leave a stub TCB
  // entry pointing at the object's node so path-following works (§7.1).
  auto stub = std::make_shared<kernel::ThreadContext>(child, kernel_.self());
  if (thread != nullptr) {
    stub->attributes() = thread->with_attributes(
        [](kernel::ThreadAttributes& a) { return a; });
    stub->attributes().creator = thread->tid();
  }
  kernel::ThreadAttributes child_attrs = stub->attributes();
  if (home != kernel_.self()) {
    stub->depart(home);
    kernel_.adopt_stub(stub);
  }

  PendingInvocation pending;
  const std::uint64_t token = kernel_.new_wait_token();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.emplace(token, PendingEntry{pending.state_, child});
  }
  bump(&AtomicStats::async_spawns);

  Writer w;
  w.put(child);
  Writer attr_writer;
  child_attrs.serialize(attr_writer);
  w.put(std::move(attr_writer).take());
  w.put(object);
  w.put(entry);
  w.put(args);
  w.put(true);  // claimable
  w.put(token);
  w.put(kernel_.self());

  if (home == kernel_.self()) {
    Reader r(std::move(w).take());
    auto spawned = rpc_spawn_invoke(kernel_.self(), r);
    if (!spawned.is_ok()) {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.erase(token);
      return spawned.status();
    }
  } else {
    auto reply = rpc_.call(home, kSpawnInvokeMethod, std::move(w).take());
    if (!reply.is_ok()) {
      kernel_.drop_stub(child, /*tombstone=*/false);
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.erase(token);
      return reply.status();
    }
  }
  return pending;
}

Status ObjectManager::invoke_oneway(ObjectId object, const std::string& entry,
                                    Payload args) {
  kernel::ThreadContext* thread = kernel::Kernel::current();
  const NodeId home = object_node(object);
  const ThreadId child = kernel_.ids().next_thread_id(kernel_.self());

  kernel::ThreadAttributes child_attrs;
  if (thread != nullptr) {
    child_attrs = thread->with_attributes(
        [](kernel::ThreadAttributes& a) { return a; });
    child_attrs.creator = thread->tid();
  }
  bump(&AtomicStats::oneway_spawns);

  Writer w;
  w.put(child);
  Writer attr_writer;
  child_attrs.serialize(attr_writer);
  w.put(std::move(attr_writer).take());
  w.put(object);
  w.put(entry);
  w.put(args);
  w.put(false);  // non-claimable: no trail, no completion
  w.put(std::uint64_t{0});
  w.put(kernel_.self());

  if (home == kernel_.self()) {
    Reader r(std::move(w).take());
    auto spawned = rpc_spawn_invoke(kernel_.self(), r);
    return spawned.status();
  }
  return rpc_.call_oneway(home, kSpawnInvokeMethod, std::move(w).take());
}

Result<rpc::Payload> ObjectManager::rpc_spawn_invoke(NodeId, Reader& args) {
  const auto child = args.get_id<ThreadTag>();
  auto attr_bytes = args.get_bytes();
  const auto object = args.get_id<ObjectTag>();
  const auto entry = args.get_string();
  auto entry_args = args.get_bytes();
  const bool claimable = args.get_bool();
  const auto token = args.get<std::uint64_t>();
  const auto caller_node = args.get_id<NodeTag>();

  Reader attr_reader(std::move(attr_bytes));
  kernel::ThreadAttributes attrs =
      kernel::ThreadAttributes::deserialize(attr_reader);

  kernel::SpawnOptions options;
  options.explicit_tid = child;
  options.attributes = std::move(attrs);

  kernel_.spawn(
      [this, object, entry, entry_args = std::move(entry_args), claimable,
       token, caller_node]() mutable {
        auto result = run_local(object, entry, std::move(entry_args),
                                /*enforce_visibility=*/true);
        if (!claimable) return;
        Writer w;
        w.put(token);
        w.put(encode_entry_result(result));
        if (caller_node == kernel_.self()) {
          Reader r(std::move(w).take());
          rpc_invoke_complete(kernel_.self(), r);
        } else {
          rpc_.call_oneway(caller_node, kInvokeCompleteMethod,
                           std::move(w).take());
        }
      },
      options);
  return rpc::Payload{};
}

Result<rpc::Payload> ObjectManager::rpc_invoke_complete(NodeId, Reader& args) {
  const auto token = args.get<std::uint64_t>();
  auto encoded = args.get_bytes();

  std::shared_ptr<PendingInvocation::State> state;
  ThreadId child;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(token);
    if (it == pending_.end()) {
      return Status{StatusCode::kNoSuchThread, "unknown completion token"};
    }
    state = it->second.state;
    child = it->second.child;
    pending_.erase(it);
  }
  // Retire the child's trail stub; the tombstone lets later raises report
  // DEAD_TARGET from the root node.
  kernel_.drop_stub(child, /*tombstone=*/true);
  Reader r(std::move(encoded));
  auto result = decode_entry_result(r);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(result);
  }
  state->cv.notify_all();
  return rpc::Payload{};
}

void ObjectManager::bump(common::PaddedCounter AtomicStats::* counter) {
  (stats_.*counter).fetch_add(1);
}

ObjectManagerStats ObjectManager::stats() const {
  ObjectManagerStats out;
  out.invocations_local = stats_.invocations_local.load();
  out.invocations_remote = stats_.invocations_remote.load();
  out.invocations_dsm = stats_.invocations_dsm.load();
  out.async_spawns = stats_.async_spawns.load();
  out.oneway_spawns = stats_.oneway_spawns.load();
  out.handler_invocations = stats_.handler_invocations.load();
  return out;
}

void ObjectManager::reset_stats() {
  stats_.invocations_local.store(0);
  stats_.invocations_remote.store(0);
  stats_.invocations_dsm.store(0);
  stats_.async_spawns.store(0);
  stats_.oneway_spawns.store(0);
  stats_.handler_invocations.store(0);
}

}  // namespace doct::objects
