// Passive, persistent objects (§2, §3.1).
//
// An object is a named bundle of entry points and state.  It has no threads
// of its own: threads enter it by invocation (possibly crossing nodes) and
// leave on return.  It persists whether or not any thread is active inside
// it, and it can field events while fully passive (object-based handlers,
// §4.3).
//
// Mirroring the paper's interface template (§5.1):
//
//   class my_object {
//     handler void my_delete_handler(event_block&) on { DELETE };  (private)
//    public:
//     entry void init();
//     entry void work(int id);
//   };
//
// maps to:
//
//   auto obj = std::make_shared<PassiveObject>("my_object");
//   obj->define_entry("init", ..., Visibility::kPublic);
//   obj->define_entry("work", ..., Visibility::kPublic);
//   obj->define_entry("my_delete_handler", ..., Visibility::kPrivate);
//   obj->define_handler("DELETE", "my_delete_handler");
//
// Private entries cannot be invoked directly (kPermissionDenied); only the
// event-delivery machinery may call them.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/serialize.hpp"

namespace doct::kernel {
class ThreadContext;
struct EventNotice;
}  // namespace doct::kernel

namespace doct::objects {

class ObjectManager;
using Payload = std::vector<std::uint8_t>;

enum class Visibility : std::uint8_t { kPublic = 0, kPrivate = 1 };

// Context handed to every entry point while it executes.
struct CallCtx {
  ObjectManager& manager;
  kernel::ThreadContext* thread = nullptr;  // null for master-handler calls
  ObjectId self;
  Reader& args;
  // Same-node event delivery (invoke_handler_notice): the notice itself,
  // unmarshalled — EventBlock::from_ctx reads it directly instead of
  // deserializing `args`.  Null on every other path.
  const kernel::EventNotice* notice = nullptr;
};

using EntryFn = std::function<Result<Payload>(CallCtx&)>;

class PassiveObject {
 public:
  explicit PassiveObject(std::string type_name)
      : type_name_(std::move(type_name)) {}
  virtual ~PassiveObject() = default;

  PassiveObject(const PassiveObject&) = delete;
  PassiveObject& operator=(const PassiveObject&) = delete;

  [[nodiscard]] ObjectId id() const { return id_; }
  [[nodiscard]] const std::string& type_name() const { return type_name_; }

  void define_entry(std::string name, EntryFn fn,
                    Visibility visibility = Visibility::kPublic) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[std::move(name)] = Entry{
        std::make_shared<const EntryFn>(std::move(fn)), visibility};
  }

  // §5.1: 'handler void my_delete_handler(event_block&) on { DELETE }' —
  // declares that the (private) entry handles the named event when it is
  // posted to this object.
  void define_handler(std::string event_name, std::string entry_name) {
    std::lock_guard<std::mutex> lock(mu_);
    handlers_[std::move(event_name)] = std::move(entry_name);
  }

  [[nodiscard]] bool has_entry(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.contains(name);
  }

  // Returns the handler entry name for an event, empty if none registered.
  [[nodiscard]] std::string handler_for(const std::string& event_name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = handlers_.find(event_name);
    return it == handlers_.end() ? std::string{} : it->second;
  }

  [[nodiscard]] std::vector<std::string> handled_events() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(handlers_.size());
    for (const auto& [event, entry] : handlers_) out.push_back(event);
    return out;
  }

  // §5.2: "Entry point signatures in the object interface specify
  // exceptional events raised by the entry points."  Callers consult
  // raised_by() to know which handlers to attach at the point of invocation.
  void declare_raises(const std::string& entry_name, std::string event_name) {
    std::lock_guard<std::mutex> lock(mu_);
    raises_[entry_name].push_back(std::move(event_name));
  }

  [[nodiscard]] std::vector<std::string> raised_by(
      const std::string& entry_name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = raises_.find(entry_name);
    return it == raises_.end() ? std::vector<std::string>{} : it->second;
  }

  // Persistence hooks (§3.1 "Persistence"): the object store serializes an
  // object's state on deactivation and restores it on activation.
  virtual void save_state(Writer&) const {}
  virtual void load_state(Reader&) {}

 protected:
  friend class ObjectManager;

  struct Entry {
    // shared_ptr so lookup() hands the invoker a refcount bump instead of a
    // std::function copy (which heap-allocates for any capturing callable —
    // the old cost on EVERY invocation and event delivery).
    std::shared_ptr<const EntryFn> fn;
    Visibility visibility = Visibility::kPublic;
  };

  void set_id(ObjectId id) { id_ = id; }

  // Looks up an entry; enforce_visibility rejects private entries (the
  // event-delivery machinery passes false).
  [[nodiscard]] Result<std::shared_ptr<const EntryFn>> lookup(
      const std::string& name, bool enforce_visibility) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status{StatusCode::kInvalidArgument,
                    type_name_ + " has no entry " + name};
    }
    if (enforce_visibility && it->second.visibility == Visibility::kPrivate) {
      return Status{StatusCode::kPermissionDenied,
                    name + " is a private entry of " + type_name_};
    }
    return it->second.fn;
  }

 private:
  mutable std::mutex mu_;
  const std::string type_name_;
  ObjectId id_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::string> handlers_;  // event name -> entry name
  std::map<std::string, std::vector<std::string>> raises_;  // entry -> events
};

// Factory registry used by the persistent store to re-activate objects by
// type name.
class ObjectFactory {
 public:
  using Factory = std::function<std::shared_ptr<PassiveObject>()>;

  void register_type(std::string type_name, Factory factory) {
    std::lock_guard<std::mutex> lock(mu_);
    factories_[std::move(type_name)] = std::move(factory);
  }

  [[nodiscard]] Result<std::shared_ptr<PassiveObject>> make(
      const std::string& type_name) const {
    Factory factory;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = factories_.find(type_name);
      if (it == factories_.end()) {
        return Status{StatusCode::kInvalidArgument,
                      "no factory for type " + type_name};
      }
      factory = it->second;
    }
    return factory();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace doct::objects
