#include "objects/store.hpp"

#include <fstream>

namespace doct::objects {

// --- MemoryBackend -----------------------------------------------------------

Status MemoryBackend::put(ObjectId id, const std::string& type_name,
                          const std::vector<std::uint8_t>& state) {
  std::lock_guard<std::mutex> lock(mu_);
  data_[id] = {type_name, state};
  return Status::ok();
}

Result<std::pair<std::string, std::vector<std::uint8_t>>> MemoryBackend::get(
    ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(id);
  if (it == data_.end()) {
    return Status{StatusCode::kNoSuchObject, id.to_string()};
  }
  return it->second;
}

Status MemoryBackend::erase(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.erase(id) > 0 ? Status::ok()
                             : Status{StatusCode::kNoSuchObject, id.to_string()};
}

std::vector<ObjectId> MemoryBackend::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectId> out;
  out.reserve(data_.size());
  for (const auto& [id, entry] : data_) out.push_back(id);
  return out;
}

// --- FileBackend -------------------------------------------------------------

FileBackend::FileBackend(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::filesystem::path FileBackend::path_for(ObjectId id) const {
  return directory_ / (std::to_string(id.value()) + ".obj");
}

Status FileBackend::put(ObjectId id, const std::string& type_name,
                        const std::vector<std::uint8_t>& state) {
  Writer w;
  w.put(type_name);
  w.put(state);
  const auto bytes = std::move(w).take();

  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path_for(id), std::ios::binary | std::ios::trunc);
  if (!out) {
    return {StatusCode::kInternal, "cannot open " + path_for(id).string()};
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good() ? Status::ok()
                    : Status{StatusCode::kInternal, "short write"};
}

Result<std::pair<std::string, std::vector<std::uint8_t>>> FileBackend::get(
    ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path_for(id), std::ios::binary);
  if (!in) return Status{StatusCode::kNoSuchObject, id.to_string()};
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  try {
    Reader r(std::move(bytes));
    auto type_name = r.get_string();
    auto state = r.get_bytes();
    return std::pair{std::move(type_name), std::move(state)};
  } catch (const DeserializeError& e) {
    return Status{StatusCode::kInternal,
                  std::string("corrupt object file: ") + e.what()};
  }
}

Status FileBackend::erase(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  return std::filesystem::remove(path_for(id), ec)
             ? Status::ok()
             : Status{StatusCode::kNoSuchObject, id.to_string()};
}

std::vector<ObjectId> FileBackend::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectId> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (entry.path().extension() == ".obj") {
      out.push_back(ObjectId{std::stoull(entry.path().stem().string())});
    }
  }
  return out;
}

// --- ObjectStore -------------------------------------------------------------

ObjectStore::ObjectStore(ObjectManager& manager, ObjectFactory& factory,
                         std::unique_ptr<StoreBackend> backend)
    : manager_(manager), factory_(factory), backend_(std::move(backend)) {}

Status ObjectStore::deactivate(ObjectId id) {
  auto object = manager_.find(id);
  if (object == nullptr) {
    return {StatusCode::kNoSuchObject, id.to_string()};
  }
  Writer w;
  object->save_state(w);
  const Status stored = backend_->put(id, object->type_name(),
                                      std::move(w).take());
  if (!stored.is_ok()) return stored;
  return manager_.remove_object(id);
}

Status ObjectStore::activate(ObjectId id) {
  if (manager_.find(id) != nullptr) {
    return {StatusCode::kAlreadyExists, id.to_string() + " already active"};
  }
  auto stored = backend_->get(id);
  if (!stored.is_ok()) return stored.status();
  auto made = factory_.make(stored.value().first);
  if (!made.is_ok()) return made.status();
  auto object = std::move(made).value();
  try {
    Reader r(stored.value().second);
    object->load_state(r);
  } catch (const DeserializeError& e) {
    return {StatusCode::kInternal,
            std::string("corrupt persisted state: ") + e.what()};
  }
  return manager_.add_replica(id, std::move(object));
}

bool ObjectStore::is_passive(ObjectId id) const {
  if (manager_.find(id) != nullptr) return false;
  auto entries = backend_->list();
  return std::find(entries.begin(), entries.end(), id) != entries.end();
}

Status ObjectStore::drop(ObjectId id) { return backend_->erase(id); }

std::vector<ObjectId> ObjectStore::passive_objects() const {
  return backend_->list();
}

}  // namespace doct::objects
