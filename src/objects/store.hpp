// ObjectStore — persistence for passive objects (§3.1 "Persistence: objects
// in our model are persistent by nature and may exist passively").
//
// An object can be *deactivated*: its state is serialized to a backing store
// and the in-memory instance dropped.  A later *activate* reconstructs the
// instance through the ObjectFactory and restores its state.  Event delivery
// to a passive (deactivated) object activates it first — the paper's
// requirement that objects "handle events posted to them, even if there is
// no thread active inside them" extends all the way to objects that are not
// even in memory.
//
// Two backends: in-memory (tests, benches) and file-backed (real persistence
// across process restarts).
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/serialize.hpp"
#include "objects/manager.hpp"
#include "objects/object.hpp"

namespace doct::objects {

// Backend interface: stores (type_name, state bytes) per object id.
class StoreBackend {
 public:
  virtual ~StoreBackend() = default;
  virtual Status put(ObjectId id, const std::string& type_name,
                     const std::vector<std::uint8_t>& state) = 0;
  virtual Result<std::pair<std::string, std::vector<std::uint8_t>>> get(
      ObjectId id) = 0;
  virtual Status erase(ObjectId id) = 0;
  [[nodiscard]] virtual std::vector<ObjectId> list() const = 0;
};

class MemoryBackend final : public StoreBackend {
 public:
  Status put(ObjectId id, const std::string& type_name,
             const std::vector<std::uint8_t>& state) override;
  Result<std::pair<std::string, std::vector<std::uint8_t>>> get(
      ObjectId id) override;
  Status erase(ObjectId id) override;
  [[nodiscard]] std::vector<ObjectId> list() const override;

 private:
  mutable std::mutex mu_;
  std::map<ObjectId, std::pair<std::string, std::vector<std::uint8_t>>> data_;
};

class FileBackend final : public StoreBackend {
 public:
  explicit FileBackend(std::filesystem::path directory);

  Status put(ObjectId id, const std::string& type_name,
             const std::vector<std::uint8_t>& state) override;
  Result<std::pair<std::string, std::vector<std::uint8_t>>> get(
      ObjectId id) override;
  Status erase(ObjectId id) override;
  [[nodiscard]] std::vector<ObjectId> list() const override;

 private:
  [[nodiscard]] std::filesystem::path path_for(ObjectId id) const;
  std::filesystem::path directory_;
  mutable std::mutex mu_;
};

class ObjectStore {
 public:
  ObjectStore(ObjectManager& manager, ObjectFactory& factory,
              std::unique_ptr<StoreBackend> backend);

  // Serializes the object's state to the backend and removes the in-memory
  // instance from the manager.  The object id remains valid.
  Status deactivate(ObjectId id);

  // Reconstructs a deactivated object (type factory + load_state) and
  // re-registers it with the manager as a replica under its original id.
  Status activate(ObjectId id);

  [[nodiscard]] bool is_passive(ObjectId id) const;
  Status drop(ObjectId id);  // permanently delete a deactivated object

  [[nodiscard]] std::vector<ObjectId> passive_objects() const;

 private:
  ObjectManager& manager_;
  ObjectFactory& factory_;
  std::unique_ptr<StoreBackend> backend_;
};

}  // namespace doct::objects
