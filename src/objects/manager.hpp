// ObjectManager — per-node object registry and the invocation machinery.
//
// Invocation in the DO/CT model (§2): "The calling thread invokes the desired
// entry point in the called object.  Invocations are similar to procedure
// calls, except that they cross object boundaries.  In the passive-object
// paradigm, when an object invokes another, the same logical thread is used
// to execute the code in the called object."
//
// Three invocation shapes:
//   invoke()        — synchronous; the logical thread travels to the object's
//                     node (kernel::travel/adopt), executes, returns.  Thread
//                     attributes (handler chain!) flow there and back.
//   invoke_async()  — claimable asynchronous invocation: a CHILD logical
//                     thread runs the entry at the object's node.  The system
//                     keeps track: the child's tid is rooted at the caller's
//                     node and a stub TCB entry is left there, so the
//                     path-following locator can find it.  claim() fetches
//                     the result.
//   invoke_oneway() — NON-CLAIMABLE asynchronous invocation: same child
//                     spawn, but no trail and no result path.  §7.1: the
//                     path-following locator cannot find such threads (the
//                     broadcast and multicast locators still can).
//
// Object placement: an object lives at the node that created it (encoded in
// its ObjectId); objects do not migrate.  In DSM mode (§2's second vehicle)
// the thread does NOT travel: the entry runs at the caller's node and the
// object's state pages fault over to it through the DSM engine — data moves
// to computation.  Event semantics are identical in both modes (design goal
// 2), which tests/bench E8 verify.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/id_gen.hpp"
#include "common/ids.hpp"
#include "common/inline.hpp"
#include "common/result.hpp"
#include "kernel/kernel.hpp"
#include "objects/object.hpp"
#include "obs/metrics.hpp"
#include "rpc/rpc.hpp"

namespace doct::objects {

enum class InvokeMode : std::uint8_t {
  kAuto = 0,  // local call if the object is here, RPC travel otherwise
  kRpc = 1,   // force the travel path even for local objects
  kDsm = 2,   // run locally against DSM-backed state (object must be
              // replicated on this node)
};

struct ObjectManagerStats {
  std::uint64_t invocations_local = 0;
  std::uint64_t invocations_remote = 0;   // travel-based
  std::uint64_t invocations_dsm = 0;
  std::uint64_t async_spawns = 0;
  std::uint64_t oneway_spawns = 0;
  std::uint64_t handler_invocations = 0;  // event-delivery entry executions
};

// Ticket for a claimable asynchronous invocation.
class PendingInvocation {
 public:
  [[nodiscard]] Result<Payload> claim(Duration timeout);
  [[nodiscard]] bool ready() const;

 private:
  friend class ObjectManager;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Result<Payload>> result;
  };
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

class ObjectManager {
 public:
  ObjectManager(kernel::Kernel& kernel, rpc::RpcEndpoint& rpc);
  ~ObjectManager();

  ObjectManager(const ObjectManager&) = delete;
  ObjectManager& operator=(const ObjectManager&) = delete;

  [[nodiscard]] kernel::Kernel& kernel() { return kernel_; }
  [[nodiscard]] NodeId self() const { return kernel_.self(); }

  // Registers a new object at this node; assigns and returns its id.
  ObjectId add_object(std::shared_ptr<PassiveObject> object);

  // Registers a replica of an object created elsewhere (DSM mode: every node
  // that wants local DSM-mode invocation activates a replica bound to the
  // same DSM segment).
  Status add_replica(ObjectId id, std::shared_ptr<PassiveObject> object);

  Status remove_object(ObjectId id);
  [[nodiscard]] std::shared_ptr<PassiveObject> find(ObjectId id) const;

  // Node where the object lives (derived from the id).
  [[nodiscard]] static NodeId object_node(ObjectId id);
  // Mints object ids for a node (used by add_object).
  [[nodiscard]] ObjectId make_object_id();

  // --- invocation ---------------------------------------------------------

  [[nodiscard]] Result<Payload> invoke(ObjectId object,
                                       const std::string& entry, Payload args,
                                       InvokeMode mode = InvokeMode::kAuto);

  [[nodiscard]] Result<PendingInvocation> invoke_async(ObjectId object,
                                                       const std::string& entry,
                                                       Payload args);

  Status invoke_oneway(ObjectId object, const std::string& entry,
                       Payload args);

  // Event-delivery path: runs a (possibly private) entry of a LOCAL object on
  // the calling OS thread.  `thread` may be null (master handler thread).
  [[nodiscard]] Result<Payload> invoke_handler_entry(
      ObjectId object, const std::string& entry, Payload args,
      kernel::ThreadContext* thread);

  // Same-node event delivery, zero-marshal: the notice is handed to the
  // entry through CallCtx::notice (EventBlock::from_ctx borrows it) instead
  // of being serialized into an argument payload and deserialized back.
  [[nodiscard]] Result<Payload> invoke_handler_notice(
      ObjectId object, const std::string& entry,
      const kernel::EventNotice& notice);

  [[nodiscard]] ObjectManagerStats stats() const;
  void reset_stats();

 private:
  // RPC methods.
  Result<rpc::Payload> rpc_invoke(NodeId caller, Reader& args);
  Result<rpc::Payload> rpc_spawn_invoke(NodeId caller, Reader& args);
  Result<rpc::Payload> rpc_invoke_complete(NodeId caller, Reader& args);

  // Runs entry on the current OS thread against a local object, maintaining
  // current_object and the call chain, with delivery points at entry/exit.
  // `notice`, when set, is exposed to the entry via CallCtx::notice.
  Result<Payload> run_local(ObjectId object, const std::string& entry,
                            Payload args, bool enforce_visibility,
                            const kernel::EventNotice* notice = nullptr);

  kernel::Kernel& kernel_;
  rpc::RpcEndpoint& rpc_;

  mutable std::mutex mu_;
  std::unordered_map<ObjectId, std::shared_ptr<PassiveObject>> objects_;

  struct PendingEntry {
    std::shared_ptr<PendingInvocation::State> state;
    ThreadId child;
  };
  mutable std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, PendingEntry> pending_;

  // One counter per cache line: the invocation and event-delivery hot paths
  // bump these concurrently (the old stats_mu_ serialized every invoker and
  // put a lock acquisition on the zero-alloc delivery path).
  struct AtomicStats {
    common::PaddedCounter invocations_local;
    common::PaddedCounter invocations_remote;
    common::PaddedCounter invocations_dsm;
    common::PaddedCounter async_spawns;
    common::PaddedCounter oneway_spawns;
    common::PaddedCounter handler_invocations;
  };
  void bump(common::PaddedCounter AtomicStats::* counter);
  mutable AtomicStats stats_;

  // Last member: unregisters before the stats it reads are destroyed.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace doct::objects
