#include "runtime/runtime.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace doct::runtime {

namespace {

// DOCT_TRANSPORT=inprocess|unix|tcp overrides ClusterConfig at construction
// time, so the same example binary exercises all three backends from CI.
net::TransportKind resolve_transport(net::TransportKind configured) {
  const char* env = std::getenv("DOCT_TRANSPORT");
  if (env == nullptr || *env == '\0') return configured;
  const std::string value = env;
  if (value == "inprocess") return net::TransportKind::kInProcess;
  if (value == "unix") return net::TransportKind::kUnixSocket;
  if (value == "tcp") return net::TransportKind::kTcp;
  throw std::runtime_error("DOCT_TRANSPORT must be inprocess|unix|tcp, got " +
                           value);
}

// Distinct unix paths across clusters in one process and across processes.
std::string unix_listen_path(NodeId node) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return "unix:/tmp/doct-" + std::to_string(::getpid()) + "-" +
         std::to_string(n) + "-n" + std::to_string(node.value()) + ".sock";
}

}  // namespace

NodeRuntime::NodeRuntime(Cluster& cluster, NodeId node_id,
                         const NodeConfig& config)
    : id(node_id),
      executor(config.kernel.executor,
               "node" + std::to_string(node_id.value()) + ".exec",
               node_id.value()),
      rpc(cluster.transport_for(node_id), demux, node_id, cluster.ids_,
          config.rpc, &executor),
      dsm(rpc, node_id, config.dsm),
      kernel(cluster.transport_for(node_id), demux, rpc, node_id,
             cluster.ids_, config.kernel),
      objects(kernel, rpc),
      store(objects, factory, std::make_unique<objects::MemoryBackend>()),
      events(kernel, objects, rpc, cluster.registry_, cluster.procedures_,
             config.events),
      network_(cluster.transport_for(node_id)) {
  if (config.health.enabled) {
    health_ = std::make_unique<services::FailureDetector>(
        network_, demux, events, id, config.health);
    // Census fast-path: a confirmed-dead peer will never reply, so stop
    // waiting on it.
    health_->on_node_down([this](NodeId peer) { kernel.note_peer_down(peer); });
  }
  // Register with the network last: every subsystem has routed its message
  // kinds into the demux by now.
  network_.register_node(id, demux.as_handler());
  if (health_) health_->start();
}

NodeRuntime::~NodeRuntime() {
  // Stop the detector before tearing anything down: its beat thread raises
  // events and touches the kernel.  Then stop inbound traffic so nothing new
  // is queued, and drain the node executor so no in-flight method or queued
  // handler is still touching the kernel or the object manager when they
  // destruct.  Members are then destroyed in reverse declaration order
  // (events -> store -> objects -> kernel -> dsm -> rpc -> demux ->
  // executor).
  if (health_) health_->stop();
  network_.unregister_node(id);
  kernel.terminate_all_local();  // unwind adopted bodies on executor workers
  executor.shutdown();
}

Cluster::Cluster(std::size_t num_nodes, ClusterConfig config) {
  const net::TransportKind kind = resolve_transport(config.network.transport);
  if (kind == net::TransportKind::kInProcess) {
    network_ = std::make_unique<net::Network>(config.network);
  } else {
    // Two-phase mesh setup: bind every transport first (learning the real
    // address — required for tcp:127.0.0.1:0 ephemeral ports), then hand
    // each one the full peer map.
    for (std::size_t i = 0; i < num_nodes; ++i) {
      const NodeId id{i + 1};
      net::SocketTransportConfig sc;
      sc.self = id;
      sc.listen = kind == net::TransportKind::kUnixSocket
                      ? unix_listen_path(id)
                      : "tcp:127.0.0.1:0";
      sc.reconnect_backoff_initial = config.network.reconnect_backoff_initial;
      sc.reconnect_backoff_max = config.network.reconnect_backoff_max;
      sockets_.push_back(std::make_unique<net::SocketTransport>(sc));
      const Status started = sockets_.back()->start();
      if (!started.is_ok()) {
        throw std::runtime_error("cluster socket transport: " +
                                 started.to_string());
      }
    }
    for (std::size_t i = 0; i < num_nodes; ++i) {
      for (std::size_t j = 0; j < num_nodes; ++j) {
        if (i == j) continue;
        sockets_[i]->add_peer(NodeId{j + 1}, sockets_[j]->listen_address());
      }
    }
  }
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeRuntime>(
        *this, NodeId{i + 1}, config.node));
  }
}

Cluster::Cluster(NodeId self, std::unique_ptr<net::SocketTransport> transport,
                 ClusterConfig config)
    : remote_self_(self),
      // Node-disjoint id spaces: plain ids (CallId, GroupId) carry the node
      // in bits 40..47, trace ids in the top 16 — ids minted by different
      // shards never collide, and stitched traces never conflate chains.
      ids_(self.value() << 40) {
  obs::tracer().seed_ids(self.value() << 48);
  sockets_.push_back(std::move(transport));
  nodes_.push_back(std::make_unique<NodeRuntime>(*this, self, config.node));
}

net::Transport& Cluster::transport_for(NodeId id) {
  if (network_) return *network_;
  if (remote_self_.valid()) return *sockets_.front();
  return *sockets_.at(id.value() - 1);
}

}  // namespace doct::runtime
