#include "runtime/runtime.hpp"

namespace doct::runtime {

NodeRuntime::NodeRuntime(Cluster& cluster, NodeId node_id,
                         const NodeConfig& config)
    : id(node_id),
      rpc(cluster.network_, demux, node_id, cluster.ids_, config.rpc),
      dsm(rpc, node_id, config.dsm),
      kernel(cluster.network_, demux, rpc, node_id, cluster.ids_,
             config.kernel),
      objects(kernel, rpc),
      store(objects, factory, std::make_unique<objects::MemoryBackend>()),
      events(kernel, objects, rpc, cluster.registry_, cluster.procedures_,
             config.events),
      network_(cluster.network_) {
  // Register with the network last: every subsystem has routed its message
  // kinds into the demux by now.
  network_.register_node(id, demux.as_handler());
}

NodeRuntime::~NodeRuntime() {
  // Stop inbound traffic first so nothing new is queued, then drain the RPC
  // worker pool so no in-flight method is still touching the kernel or the
  // object manager when they destruct.  Members are then destroyed in
  // reverse declaration order (events -> store -> objects -> kernel -> dsm
  // -> rpc -> demux).
  network_.unregister_node(id);
  kernel.terminate_all_local();  // unwind adopted bodies on RPC workers
  rpc.drain_workers();
}

Cluster::Cluster(std::size_t num_nodes, ClusterConfig config)
    : network_(config.network) {
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeRuntime>(
        *this, NodeId{i + 1}, config.node));
  }
}

}  // namespace doct::runtime
