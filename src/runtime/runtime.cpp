#include "runtime/runtime.hpp"

namespace doct::runtime {

NodeRuntime::NodeRuntime(Cluster& cluster, NodeId node_id,
                         const NodeConfig& config)
    : id(node_id),
      executor(config.kernel.executor,
               "node" + std::to_string(node_id.value()) + ".exec",
               node_id.value()),
      rpc(cluster.network_, demux, node_id, cluster.ids_, config.rpc,
          &executor),
      dsm(rpc, node_id, config.dsm),
      kernel(cluster.network_, demux, rpc, node_id, cluster.ids_,
             config.kernel),
      objects(kernel, rpc),
      store(objects, factory, std::make_unique<objects::MemoryBackend>()),
      events(kernel, objects, rpc, cluster.registry_, cluster.procedures_,
             config.events),
      network_(cluster.network_) {
  if (config.health.enabled) {
    health_ = std::make_unique<services::FailureDetector>(
        cluster.network_, demux, events, id, config.health);
    // Census fast-path: a confirmed-dead peer will never reply, so stop
    // waiting on it.
    health_->on_node_down([this](NodeId peer) { kernel.note_peer_down(peer); });
  }
  // Register with the network last: every subsystem has routed its message
  // kinds into the demux by now.
  network_.register_node(id, demux.as_handler());
  if (health_) health_->start();
}

NodeRuntime::~NodeRuntime() {
  // Stop the detector before tearing anything down: its beat thread raises
  // events and touches the kernel.  Then stop inbound traffic so nothing new
  // is queued, and drain the node executor so no in-flight method or queued
  // handler is still touching the kernel or the object manager when they
  // destruct.  Members are then destroyed in reverse declaration order
  // (events -> store -> objects -> kernel -> dsm -> rpc -> demux ->
  // executor).
  if (health_) health_->stop();
  network_.unregister_node(id);
  kernel.terminate_all_local();  // unwind adopted bodies on executor workers
  executor.shutdown();
}

Cluster::Cluster(std::size_t num_nodes, ClusterConfig config)
    : network_(config.network) {
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeRuntime>(
        *this, NodeId{i + 1}, config.node));
  }
}

}  // namespace doct::runtime
