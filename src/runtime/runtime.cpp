#include "runtime/runtime.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>

#include "common/log.hpp"
#include "common/serialize.hpp"

namespace doct::runtime {

namespace {

// DOCT_TRANSPORT=inprocess|unix|tcp overrides ClusterConfig at construction
// time, so the same example binary exercises all three backends from CI.
net::TransportKind resolve_transport(net::TransportKind configured) {
  const char* env = std::getenv("DOCT_TRANSPORT");
  if (env == nullptr || *env == '\0') return configured;
  const std::string value = env;
  if (value == "inprocess") return net::TransportKind::kInProcess;
  if (value == "unix") return net::TransportKind::kUnixSocket;
  if (value == "tcp") return net::TransportKind::kTcp;
  throw std::runtime_error("DOCT_TRANSPORT must be inprocess|unix|tcp, got " +
                           value);
}

// Distinct unix paths across clusters in one process and across processes.
std::string unix_listen_path(NodeId node) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  return "unix:/tmp/doct-" + std::to_string(::getpid()) + "-" +
         std::to_string(n) + "-n" + std::to_string(node.value()) + ".sock";
}

// Chunk size for the obs.* snapshot RPCs — same sizing rationale as the
// monitor service's kSnapshotChunkBytes.
constexpr std::size_t kObsChunkBytes = 48 * 1024;
// Trace-delta pull batch: bounds one reply's payload; the cursor advances
// to the last span shipped, so a bigger backlog drains over several rounds.
constexpr std::uint32_t kTraceDeltaMax = 4096;
// Remote shards answer obs pulls quickly or not at all (a dead shard must
// not stall the whole round).
constexpr Duration kObsPullTimeout = std::chrono::milliseconds(1500);

// Span names are `const char*` with static lifetime by contract; spans
// arriving from remote shards intern theirs here (the vocabulary is small
// and fixed, so this set never grows past a handful of entries).
const char* intern_span_name(const std::string& name) {
  static std::mutex mu;
  static auto* names = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return names->insert(name).first->c_str();
}

// Reply for one slice of a chunked document fetch: {u64 total, str chunk}.
rpc::Payload chunk_reply(const std::string& cache, std::uint64_t offset) {
  Writer w;
  w.put(static_cast<std::uint64_t>(cache.size()));
  w.put(offset >= cache.size() ? std::string{}
                               : cache.substr(offset, kObsChunkBytes));
  return std::move(w).take();
}

}  // namespace

NodeRuntime::NodeRuntime(Cluster& cluster, NodeId node_id,
                         const NodeConfig& config)
    : id(node_id),
      executor(config.kernel.executor,
               "node" + std::to_string(node_id.value()) + ".exec",
               node_id.value()),
      rpc(cluster.transport_for(node_id), demux, node_id, cluster.ids_,
          config.rpc, &executor),
      dsm(rpc, node_id, config.dsm),
      kernel(cluster.transport_for(node_id), demux, rpc, node_id,
             cluster.ids_, config.kernel),
      objects(kernel, rpc),
      store(objects, factory, std::make_unique<objects::MemoryBackend>()),
      events(kernel, objects, rpc, cluster.registry_, cluster.procedures_,
             config.events),
      network_(cluster.transport_for(node_id)) {
  if (config.health.enabled) {
    health_ = std::make_unique<services::FailureDetector>(
        network_, demux, events, id, config.health);
    // Census fast-path: a confirmed-dead peer will never reply, so stop
    // waiting on it.
    health_->on_node_down([this](NodeId peer) { kernel.note_peer_down(peer); });
  }
  // Register with the network last: every subsystem has routed its message
  // kinds into the demux by now.
  network_.register_node(id, demux.as_handler());
  if (health_) health_->start();
}

NodeRuntime::~NodeRuntime() {
  // Stop the detector before tearing anything down: its beat thread raises
  // events and touches the kernel.  Then stop inbound traffic so nothing new
  // is queued, and drain the node executor so no in-flight method or queued
  // handler is still touching the kernel or the object manager when they
  // destruct.  Members are then destroyed in reverse declaration order
  // (events -> store -> objects -> kernel -> dsm -> rpc -> demux ->
  // executor).
  if (health_) health_->stop();
  network_.unregister_node(id);
  kernel.terminate_all_local();  // unwind adopted bodies on executor workers
  executor.shutdown();
}

Cluster::Cluster(std::size_t num_nodes, ClusterConfig config)
    : telemetry_(config.telemetry) {
  const net::TransportKind kind = resolve_transport(config.network.transport);
  if (kind == net::TransportKind::kInProcess) {
    network_ = std::make_unique<net::Network>(config.network);
  } else {
    // Two-phase mesh setup: bind every transport first (learning the real
    // address — required for tcp:127.0.0.1:0 ephemeral ports), then hand
    // each one the full peer map.
    for (std::size_t i = 0; i < num_nodes; ++i) {
      const NodeId id{i + 1};
      net::SocketTransportConfig sc;
      sc.self = id;
      sc.listen = kind == net::TransportKind::kUnixSocket
                      ? unix_listen_path(id)
                      : "tcp:127.0.0.1:0";
      sc.reconnect_backoff_initial = config.network.reconnect_backoff_initial;
      sc.reconnect_backoff_max = config.network.reconnect_backoff_max;
      sockets_.push_back(std::make_unique<net::SocketTransport>(sc));
      const Status started = sockets_.back()->start();
      if (!started.is_ok()) {
        throw std::runtime_error("cluster socket transport: " +
                                 started.to_string());
      }
    }
    for (std::size_t i = 0; i < num_nodes; ++i) {
      for (std::size_t j = 0; j < num_nodes; ++j) {
        if (i == j) continue;
        sockets_[i]->add_peer(NodeId{j + 1}, sockets_[j]->listen_address());
      }
    }
  }
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeRuntime>(
        *this, NodeId{i + 1}, config.node));
  }
  for (auto& node : nodes_) register_obs_methods(*node);
  apply_telemetry_env();
  if (telemetry_.collector) start_collector();
}

Cluster::Cluster(NodeId self, std::unique_ptr<net::SocketTransport> transport,
                 ClusterConfig config)
    : remote_self_(self),
      // Node-disjoint id spaces: plain ids (CallId, GroupId) carry the node
      // in bits 40..47, trace ids in the top 16 — ids minted by different
      // shards never collide, and stitched traces never conflate chains.
      ids_(self.value() << 40),
      telemetry_(config.telemetry) {
  obs::tracer().seed_ids(self.value() << 48);
  obs::set_self_node(self.value());
  sockets_.push_back(std::move(transport));
  nodes_.push_back(std::make_unique<NodeRuntime>(*this, self, config.node));
  register_obs_methods(*nodes_.front());
  apply_telemetry_env();
  if (telemetry_.collector) start_collector();
}

Cluster::~Cluster() { stop_collector(); }

net::Transport& Cluster::transport_for(NodeId id) {
  if (network_) return *network_;
  if (remote_self_.valid()) return *sockets_.front();
  return *sockets_.at(id.value() - 1);
}

void Cluster::apply_telemetry_env() {
  if (const char* env = std::getenv("DOCT_COLLECTOR")) {
    const std::string value = env;
    if (value == "on" || value == "1") {
      telemetry_.collector = true;
    } else if (value == "off" || value == "0") {
      telemetry_.collector = false;
    }
  }
  if (const char* env = std::getenv("DOCT_COLLECT_PERIOD_MS")) {
    const long ms = std::strtol(env, nullptr, 10);
    if (ms > 0) telemetry_.period = std::chrono::milliseconds(ms);
  }
}

void Cluster::register_obs_methods(NodeRuntime& node) {
  // Telemetry-plane RPCs, registered on every node so any process (a
  // collector shard, doct-top through the coordinator) can pull snapshots
  // over the ordinary call path.  All three are chunked the same way:
  // request {u64 offset}; offset 0 re-renders the document into a cache so
  // later chunks slice the SAME snapshot; reply {u64 total, str chunk}.
  struct ObsCaches {
    std::mutex mu;
    std::string metrics;
    std::string cluster;
  };
  auto caches = std::make_shared<ObsCaches>();

  node.rpc.register_method(
      "obs.metrics_at",
      [caches](NodeId, Reader& args) -> Result<rpc::Payload> {
        const auto offset = args.get<std::uint64_t>();
        std::lock_guard<std::mutex> lock(caches->mu);
        if (offset == 0) caches->metrics = obs::metrics().snapshot_json();
        return chunk_reply(caches->metrics, offset);
      });

  node.rpc.register_method(
      "obs.trace_since",
      [](NodeId, Reader& args) -> Result<rpc::Payload> {
        const auto after = args.get<std::uint64_t>();
        const auto max_spans = args.get<std::uint32_t>();
        std::vector<obs::Span> spans = obs::tracer().snapshot_since(after);
        const std::uint64_t last = obs::tracer().last_seq();
        if (spans.size() > max_spans) spans.resize(max_spans);
        Writer w;
        w.put(last);
        w.put(static_cast<std::uint32_t>(spans.size()));
        for (const obs::Span& span : spans) {
          w.put(span.seq);
          w.put(span.trace_id);
          w.put(span.span_id);
          w.put(span.parent_span);
          w.put(span.node);
          w.put(span.track);
          w.put(std::string(span.name));
          w.put(span.detail);
          w.put(static_cast<std::uint64_t>(span.start_us));
          w.put(static_cast<std::uint64_t>(span.dur_us));
        }
        return std::move(w).take();
      });

  node.rpc.register_method(
      "obs.cluster_at",
      [this, caches](NodeId, Reader& args) -> Result<rpc::Payload> {
        const auto offset = args.get<std::uint64_t>();
        if (offset == 0) {
          // On-demand freshness: when no background collector paces rounds,
          // the first chunk of a fetch triggers one.
          bool thread_running;
          {
            std::lock_guard<std::mutex> lock(collector_thread_mu_);
            thread_running = collector_thread_.joinable() && !collector_stop_;
          }
          if (!thread_running) collect_round();
        }
        std::lock_guard<std::mutex> lock(caches->mu);
        if (offset == 0) caches->cluster = collector_.cluster_json();
        return chunk_reply(caches->cluster, offset);
      });
}

void Cluster::collect_round() {
  std::lock_guard<std::mutex> lock(collect_mu_);
  for (auto& node : nodes_) node->executor.sample_telemetry();
  const std::uint64_t label =
      remote_self_.valid() ? remote_self_.value() : nodes_.front()->id.value();
  const Status local =
      collector_.ingest(label, obs::metrics().snapshot_json());
  if (!local.is_ok()) {
    DOCT_LOG(kWarn) << "collector: local ingest: " << local.to_string();
  }
  if (!remote_self_.valid()) return;

  // Remote-shard mode: pull every peer process's snapshot (and trace-span
  // deltas) over RPC.  A dead shard times out and is skipped this round —
  // its last snapshot stays in the merged view.
  NodeRuntime& self = *nodes_.front();
  for (const NodeId peer : sockets_.front()->nodes()) {
    if (peer == remote_self_) continue;
    if (telemetry_.max_node != 0 && peer.value() > telemetry_.max_node) {
      continue;  // attached observer, not a member shard
    }
    std::string doc;
    bool complete = true;
    while (true) {
      Writer w;
      w.put(static_cast<std::uint64_t>(doc.size()));
      auto reply =
          self.rpc.call(peer, "obs.metrics_at", std::move(w).take(),
                        kObsPullTimeout);
      if (!reply.is_ok()) {
        complete = false;
        break;
      }
      Reader r(std::move(reply).value());
      const auto total = r.get<std::uint64_t>();
      const std::string chunk = r.get_string();
      doc += chunk;
      if (doc.size() >= total) break;
      if (chunk.empty()) {
        complete = false;
        break;
      }
    }
    if (complete && !doc.empty()) {
      const Status ingested = collector_.ingest(peer.value(), doc);
      if (!ingested.is_ok()) {
        DOCT_LOG(kWarn) << "collector: ingest from " << peer.to_string()
                        << ": " << ingested.to_string();
      }
    }

    if (!obs::tracing_enabled()) continue;
    Writer w;
    w.put(trace_cursors_[peer]);
    w.put(kTraceDeltaMax);
    auto reply = self.rpc.call(peer, "obs.trace_since", std::move(w).take(),
                               kObsPullTimeout);
    if (!reply.is_ok()) continue;
    Reader r(std::move(reply).value());
    const auto last = r.get<std::uint64_t>();
    const auto count = r.get<std::uint32_t>();
    std::uint64_t max_seen = trace_cursors_[peer];
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto seq = r.get<std::uint64_t>();
      obs::Span span;
      span.trace_id = r.get<std::uint64_t>();
      span.span_id = r.get<std::uint64_t>();
      span.parent_span = r.get<std::uint64_t>();
      span.node = r.get<std::uint64_t>();
      span.track = r.get<std::uint64_t>();
      span.name = intern_span_name(r.get_string());
      span.detail = r.get_string();
      span.start_us = static_cast<std::int64_t>(r.get<std::uint64_t>());
      span.dur_us = static_cast<std::int64_t>(r.get<std::uint64_t>());
      obs::tracer().record(std::move(span));
      if (seq > max_seen) max_seen = seq;
    }
    // A full batch means more spans may be waiting — keep the cursor at the
    // last span shipped so the next round continues; a short batch means we
    // drained everything the shard had.
    trace_cursors_[peer] =
        count < kTraceDeltaMax ? std::max(last, max_seen) : max_seen;
  }
}

std::string Cluster::cluster_metrics_json() {
  bool thread_running;
  {
    std::lock_guard<std::mutex> lock(collector_thread_mu_);
    thread_running = collector_thread_.joinable() && !collector_stop_;
  }
  if (!thread_running) collect_round();
  return collector_.cluster_json();
}

void Cluster::start_collector() {
  std::lock_guard<std::mutex> lock(collector_thread_mu_);
  if (collector_thread_.joinable()) return;
  collector_stop_ = false;
  collector_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(collector_thread_mu_);
    while (!collector_stop_) {
      lock.unlock();
      collect_round();
      lock.lock();
      collector_cv_.wait_for(lock, telemetry_.period,
                             [this] { return collector_stop_; });
    }
  });
}

void Cluster::stop_collector() {
  {
    std::lock_guard<std::mutex> lock(collector_thread_mu_);
    collector_stop_ = true;
  }
  collector_cv_.notify_all();
  if (collector_thread_.joinable()) collector_thread_.join();
}

}  // namespace doct::runtime
