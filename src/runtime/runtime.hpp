// NodeRuntime / Cluster — the assembled DO/CT system.
//
// A NodeRuntime bundles one node's full stack (demux, rpc, dsm, kernel,
// objects, persistent store, events) in construction order; a Cluster owns
// the simulated network plus N nodes and the system-wide services every node
// shares: the id generator, the event name registry (§3: names are
// registered with the operating system) and the per-thread procedure
// registry (§7.2: the same handler code is mapped at a well-known "address"
// — its name — on every node).
//
// This is the library's top-level public API; examples and benches build on
// it.  Typical use:
//
//   doct::runtime::Cluster cluster(4);
//   auto& n0 = cluster.node(0);
//   ObjectId obj = n0.objects.add_object(my_object);
//   ThreadId t = n0.kernel.spawn([&] { ... n0.objects.invoke(obj, ...); });
//   n0.events.raise(doct::events::sys::kTerminate, t);
//   n0.kernel.join_thread(t);
#pragma once

#include <memory>
#include <vector>

#include "common/id_gen.hpp"
#include "runtime/io_hub.hpp"
#include "dsm/dsm.hpp"
#include "events/event_system.hpp"
#include "exec/executor.hpp"
#include "events/registry.hpp"
#include "kernel/kernel.hpp"
#include "net/demux.hpp"
#include "net/network.hpp"
#include "objects/manager.hpp"
#include "objects/store.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc.hpp"
#include "services/health/failure_detector.hpp"

namespace doct::runtime {

struct NodeConfig {
  rpc::RpcConfig rpc;
  dsm::DsmConfig dsm;
  kernel::KernelConfig kernel;
  events::EventConfig events;
  // Opt-in heartbeat failure detection (set health.enabled); when on, the
  // runtime wires NODE_DOWN into the kernel's census fast-path and exposes
  // the detector for services (lock cleanup) to subscribe to.
  services::FailureDetectorConfig health;
};

class Cluster;

class NodeRuntime {
 public:
  NodeRuntime(Cluster& cluster, NodeId id, const NodeConfig& config);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  const NodeId id;
  // THE execution substrate for this node: every layer (rpc bodies, event
  // dispatch, kernel census, health transitions, surrogates) runs on its
  // lanes.  Tuned via KernelConfig::executor.  Declared first so it outlives
  // every subsystem; drained explicitly in ~NodeRuntime while they are all
  // still alive.
  exec::Executor executor;
  net::Demux demux;
  rpc::RpcEndpoint rpc;
  dsm::DsmEngine dsm;
  kernel::Kernel kernel;
  objects::ObjectManager objects;
  objects::ObjectFactory factory;
  objects::ObjectStore store;
  events::EventSystem events;

  // Present iff NodeConfig::health.enabled; started by the constructor.
  [[nodiscard]] services::FailureDetector* health() { return health_.get(); }

 private:
  net::Network& network_;
  std::unique_ptr<services::FailureDetector> health_;
};

struct ClusterConfig {
  net::NetworkConfig network;
  NodeConfig node;
};

class Cluster {
 public:
  explicit Cluster(std::size_t num_nodes, ClusterConfig config = {});

  [[nodiscard]] NodeRuntime& node(std::size_t index) {
    return *nodes_.at(index);
  }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  net::Network& network() { return network_; }
  IdGenerator& ids() { return ids_; }
  events::EventRegistry& registry() { return registry_; }
  events::ProcedureRegistry& procedures() { return procedures_; }
  // System-wide named I/O channels (§3.1): output follows the thread.
  IoHub& io() { return io_; }

  // Observability snapshots for the whole cluster: one JSON document of
  // every node's counters/gauges/histograms, and the causal trace export in
  // Chrome trace-event format (load in Perfetto / chrome://tracing).  Both
  // are empty-ish unless obs::set_metrics_enabled / set_tracing_enabled ran.
  [[nodiscard]] std::string metrics_json() const {
    return obs::metrics().snapshot_json();
  }
  [[nodiscard]] std::string trace_json() const {
    return obs::tracer().to_chrome_json();
  }

 private:
  friend class NodeRuntime;

  net::Network network_;
  IdGenerator ids_;
  events::EventRegistry registry_;
  events::ProcedureRegistry procedures_;
  IoHub io_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
};

}  // namespace doct::runtime
