// NodeRuntime / Cluster — the assembled DO/CT system.
//
// A NodeRuntime bundles one node's full stack (demux, rpc, dsm, kernel,
// objects, persistent store, events) in construction order; a Cluster owns
// the simulated network plus N nodes and the system-wide services every node
// shares: the id generator, the event name registry (§3: names are
// registered with the operating system) and the per-thread procedure
// registry (§7.2: the same handler code is mapped at a well-known "address"
// — its name — on every node).
//
// This is the library's top-level public API; examples and benches build on
// it.  Typical use:
//
//   doct::runtime::Cluster cluster(4);
//   auto& n0 = cluster.node(0);
//   ObjectId obj = n0.objects.add_object(my_object);
//   ThreadId t = n0.kernel.spawn([&] { ... n0.objects.invoke(obj, ...); });
//   n0.events.raise(doct::events::sys::kTerminate, t);
//   n0.kernel.join_thread(t);
#pragma once

#include <cassert>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/id_gen.hpp"
#include "runtime/io_hub.hpp"
#include "dsm/dsm.hpp"
#include "events/event_system.hpp"
#include "exec/executor.hpp"
#include "events/registry.hpp"
#include "kernel/kernel.hpp"
#include "net/demux.hpp"
#include "net/network.hpp"
#include "net/socket_transport.hpp"
#include "objects/manager.hpp"
#include "objects/store.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc.hpp"
#include "services/health/failure_detector.hpp"

namespace doct::runtime {

struct NodeConfig {
  rpc::RpcConfig rpc;
  dsm::DsmConfig dsm;
  kernel::KernelConfig kernel;
  events::EventConfig events;
  // Opt-in heartbeat failure detection (set health.enabled); when on, the
  // runtime wires NODE_DOWN into the kernel's census fast-path and exposes
  // the detector for services (lock cleanup) to subscribe to.
  services::FailureDetectorConfig health;
};

class Cluster;

class NodeRuntime {
 public:
  NodeRuntime(Cluster& cluster, NodeId id, const NodeConfig& config);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  const NodeId id;
  // THE execution substrate for this node: every layer (rpc bodies, event
  // dispatch, kernel census, health transitions, surrogates) runs on its
  // lanes.  Tuned via KernelConfig::executor.  Declared first so it outlives
  // every subsystem; drained explicitly in ~NodeRuntime while they are all
  // still alive.
  exec::Executor executor;
  net::Demux demux;
  rpc::RpcEndpoint rpc;
  dsm::DsmEngine dsm;
  kernel::Kernel kernel;
  objects::ObjectManager objects;
  objects::ObjectFactory factory;
  objects::ObjectStore store;
  events::EventSystem events;

  // Present iff NodeConfig::health.enabled; started by the constructor.
  [[nodiscard]] services::FailureDetector* health() { return health_.get(); }

 private:
  net::Transport& network_;
  std::unique_ptr<services::FailureDetector> health_;
};

// Cluster-wide telemetry plane (obs::Collector wiring).
struct TelemetryConfig {
  // Starts the designated-node collector thread: every `period` it samples
  // each local executor's lane depths, folds the process metrics snapshot
  // into the cluster view, and — in remote-shard mode — pulls every peer
  // shard's snapshot and trace-span deltas over RPC.  DOCT_COLLECTOR=on|off
  // and DOCT_COLLECT_PERIOD_MS=<n> override at construction.
  bool collector = false;
  Duration period = std::chrono::seconds(1);
  // Remote-shard pulls only reach peers with id <= max_node (0 = no cap).
  // Deployments that know their membership set this so attached observers
  // (doct-top auto-added as peers via HELLO) are never treated as shards.
  std::uint64_t max_node = 0;
};

struct ClusterConfig {
  net::NetworkConfig network;
  NodeConfig node;
  TelemetryConfig telemetry;
};

class Cluster {
 public:
  // N nodes on the backend NetworkConfig::transport selects (overridable via
  // the DOCT_TRANSPORT env var: "inprocess" | "unix" | "tcp"):
  //   * kInProcess — the simulator, exactly as before.
  //   * kUnixSocket / kTcp — N SocketTransports in this one process, wired
  //     into a full mesh (bind first, then exchange the real addresses, so
  //     tcp:127.0.0.1:0 ephemeral ports work).  Same API, real syscalls.
  // Throws std::runtime_error when a socket backend cannot bind.
  explicit Cluster(std::size_t num_nodes, ClusterConfig config = {});

  // Remote shard: hosts exactly ONE node (`self`) of a cluster whose other
  // nodes live in other OS processes, over an already-start()ed socket
  // transport (the caller binds and exchanges peer addresses — see
  // doct-node).  Seeds the id generator and tracer with node-disjoint bases
  // so ids minted here never collide with other shards'.
  Cluster(NodeId self, std::unique_ptr<net::SocketTransport> transport,
          ClusterConfig config = {});

  [[nodiscard]] NodeRuntime& node(std::size_t index) {
    return *nodes_.at(index);
  }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  // The transport carrying node `id`'s traffic: the shared simulator, or
  // that node's own SocketTransport.
  [[nodiscard]] net::Transport& transport_for(NodeId id);

  // The simulator backend — fault injection, partitions, quiesce().  Only
  // meaningful when the cluster runs in-process (the default); asserts
  // otherwise so misuse fails loudly in tests.
  net::Network& network() {
    assert(network_ && "network() requires the in-process backend");
    return *network_;
  }
  // The socket backend for node index `index`, or nullptr in-process.
  [[nodiscard]] net::SocketTransport* socket_transport(std::size_t index) {
    return index < sockets_.size() ? sockets_[index].get() : nullptr;
  }

  IdGenerator& ids() { return ids_; }
  events::EventRegistry& registry() { return registry_; }
  events::ProcedureRegistry& procedures() { return procedures_; }
  // System-wide named I/O channels (§3.1): output follows the thread.
  IoHub& io() { return io_; }

  // Observability snapshots for the whole cluster: one JSON document of
  // every node's counters/gauges/histograms, and the causal trace export in
  // Chrome trace-event format (load in Perfetto / chrome://tracing).  Both
  // are empty-ish unless obs::set_metrics_enabled / set_tracing_enabled ran.
  [[nodiscard]] std::string metrics_json() const {
    return obs::metrics().snapshot_json();
  }
  [[nodiscard]] std::string trace_json() const {
    return obs::tracer().to_chrome_json();
  }

  // The merged, node-labelled cluster snapshot (obs::Collector::cluster_json
  // shape: per-node counters/gauges/rates/histogram summaries).  Runs one
  // collection round inline when the background collector thread is off, so
  // callers always see current data; rates need two rounds to appear.
  [[nodiscard]] std::string cluster_metrics_json();

  // One synchronous collection round (local sampling + ingest + remote
  // shard pulls).  The collector thread calls this on its period; tests and
  // the on-demand path call it directly.
  void collect_round();

  [[nodiscard]] obs::Collector& collector() { return collector_; }

  ~Cluster();

 private:
  friend class NodeRuntime;

  void apply_telemetry_env();
  void register_obs_methods(NodeRuntime& node);
  void start_collector();
  void stop_collector();

  // Exactly one backend is populated.  Nodes are declared last so they tear
  // down (unregister, drain executors) while their transport is still alive.
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<net::SocketTransport>> sockets_;
  NodeId remote_self_;  // valid only in remote-shard mode
  IdGenerator ids_;
  events::EventRegistry registry_;
  events::ProcedureRegistry procedures_;
  IoHub io_;

  TelemetryConfig telemetry_;
  obs::Collector collector_;
  std::mutex collect_mu_;  // serializes collection rounds
  std::map<NodeId, std::uint64_t> trace_cursors_;  // remote span pull cursors
  std::mutex collector_thread_mu_;
  std::condition_variable collector_cv_;
  bool collector_stop_ = false;
  std::thread collector_thread_;

  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
};

}  // namespace doct::runtime
