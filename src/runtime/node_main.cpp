// doct-node — hosts ONE node of a multi-process cluster over the socket
// transport and runs the built-in "smoke" scenario the multiprocess example
// and CI drive:
//
//   doct-node --node=<id> --nodes=<N> --listen=<addr> --peer=<id>=<addr>...
//             [--kill-victim=<id>] [--obs-dump=<dir>]
//
// Node 1 is the coordinator; every other node runs a worker thread in the
// well-known group kWorkerGroup with an OWN_CONTEXT handler counting
// "mp.ping" events.  The coordinator discovers each worker's ThreadId by
// RPC, raises at it remotely, does a raise_and_wait round trip (expecting
// kResume), then storms the group and polls per-worker counts until every
// ping landed.  With --kill-victim the coordinator then waits for its
// failure detector to report that node down (the driver SIGKILLs it) before
// terminating the survivors.
//
// Progress markers on stdout ("MP-OK ...", "MP-NODE-DOWN ...", "MP-EXIT
// ...") are the driver's assertion surface; logs are per-process artifacts
// in CI.  With --obs-dump the process writes metrics + Chrome-trace JSON on
// exit — trace ids are node-disjoint (Cluster seeds the tracer), so dumps
// from all processes stitch into one timeline.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/serialize.hpp"
#include "obs/flight.hpp"
#include "runtime/runtime.hpp"

using namespace doct;
using namespace std::chrono_literals;

namespace {

// Well-known ids shared by every process: the worker group must be the same
// GroupId everywhere for group raises to land, and it must stay outside the
// per-node IdGenerator ranges (node << 40).
constexpr GroupId kWorkerGroup{0xD0C70001};
constexpr NodeId kCoordinator{1};
constexpr int kStormRaises = 100;

std::atomic<std::uint64_t> g_pings{0};

struct Options {
  NodeId self;
  std::size_t nodes = 0;
  std::string listen;
  std::map<NodeId, std::string> peers;
  NodeId kill_victim;  // invalid = no kill phase
  std::string obs_dump;
  std::string flight_dir;  // also settable via DOCT_FLIGHT_DIR
  // Coordinator lingers this long after the scenario before terminating the
  // workers, so an external doct-top can attach and watch live numbers.
  std::uint64_t hold_ms = 0;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--node=")) {
      opt.self = NodeId{std::strtoull(v, nullptr, 10)};
    } else if (const char* v = value("--nodes=")) {
      opt.nodes = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--listen=")) {
      opt.listen = v;
    } else if (const char* v = value("--peer=")) {
      const std::string spec = v;
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) return false;
      opt.peers[NodeId{std::strtoull(spec.c_str(), nullptr, 10)}] =
          spec.substr(eq + 1);
    } else if (const char* v = value("--kill-victim=")) {
      opt.kill_victim = NodeId{std::strtoull(v, nullptr, 10)};
    } else if (const char* v = value("--obs-dump=")) {
      opt.obs_dump = v;
    } else if (const char* v = value("--flight-dir=")) {
      opt.flight_dir = v;
    } else if (const char* v = value("--hold-ms=")) {
      opt.hold_ms = std::strtoull(v, nullptr, 10);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return opt.self.valid() && opt.nodes >= 2 && !opt.listen.empty();
}

void dump_obs(const Options& opt) {
  if (opt.obs_dump.empty()) return;
  const std::string tag = "node" + std::to_string(opt.self.value());
  std::ofstream metrics(opt.obs_dump + "/metrics-" + tag + ".json",
                        std::ios::trunc);
  if (metrics) metrics << obs::metrics().snapshot_json();
  std::ofstream trace(opt.obs_dump + "/trace-" + tag + ".json",
                      std::ios::trunc);
  if (trace) trace << obs::tracer().to_chrome_json();
}

int fail(const std::string& why) {
  std::cout << "MP-FAIL " << why << std::endl;
  return 1;
}

// Polls an RPC until it answers or the deadline passes; covers the startup
// window where a peer process is up but has not registered the method yet.
Result<rpc::Payload> poll_call(runtime::NodeRuntime& node, NodeId target,
                               const std::string& method, Duration deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (true) {
    auto reply = node.rpc.call(target, method, {}, 500ms);
    if (reply.is_ok()) return reply;
    if (std::chrono::steady_clock::now() >= until) return reply;
    std::this_thread::sleep_for(20ms);
  }
}

int run_coordinator(const Options& opt, runtime::NodeRuntime& node,
                    EventId ping, std::atomic<bool>& victim_down) {
  // Discover every worker's ThreadId.
  std::map<NodeId, ThreadId> workers;
  for (std::uint64_t n = 2; n <= opt.nodes; ++n) {
    auto reply = poll_call(node, NodeId{n}, "mp.worker_info", 60s);
    if (!reply.is_ok()) {
      return fail("worker_info " + NodeId{n}.to_string() + ": " +
                  reply.status().to_string());
    }
    Reader r(std::move(reply).value());
    workers[NodeId{n}] = r.get_id<ThreadTag>();
  }
  std::cout << "MP-OK discover " << workers.size() << " workers" << std::endl;

  // Remote raise at each worker thread, then a synchronous round trip.
  for (const auto& [peer, tid] : workers) {
    const Status raised = node.events.raise(ping, tid);
    if (!raised.is_ok()) {
      return fail("raise at " + tid.to_string() + ": " + raised.to_string());
    }
  }
  for (const auto& [peer, tid] : workers) {
    auto verdict = node.events.raise_and_wait(ping, tid);
    if (!verdict.is_ok() || verdict.value() != kernel::Verdict::kResume) {
      return fail("raise_and_wait at " + tid.to_string() + ": " +
                  verdict.status().to_string());
    }
  }
  std::cout << "MP-OK raise_and_wait" << std::endl;

  // Broadcast storm at the well-known group: every leg crosses a real
  // socket, every worker must count every raise.
  for (int i = 0; i < kStormRaises; ++i) {
    const Status raised = node.events.raise(ping, kWorkerGroup);
    if (!raised.is_ok()) return fail("storm raise: " + raised.to_string());
  }
  const std::uint64_t expected = 2 + kStormRaises;  // raise + sync + storm
  for (const auto& [peer, tid] : workers) {
    const auto until = std::chrono::steady_clock::now() + 120s;
    std::uint64_t count = 0;
    while (count < expected) {
      auto reply = poll_call(node, peer, "mp.count", 10s);
      if (reply.is_ok()) {
        Reader r(std::move(reply).value());
        count = r.get<std::uint64_t>();
      }
      if (count >= expected) break;
      if (std::chrono::steady_clock::now() >= until) {
        return fail("storm: " + peer.to_string() + " counted " +
                    std::to_string(count) + "/" + std::to_string(expected));
      }
      std::this_thread::sleep_for(20ms);
    }
  }
  std::cout << "MP-OK storm " << expected << " pings per worker" << std::endl;

  if (opt.kill_victim.valid()) {
    // The driver SIGKILLs the victim once it sees the storm marker; our
    // failure detector must notice the silence and raise NODE_DOWN.
    const auto until = std::chrono::steady_clock::now() + 60s;
    while (!victim_down.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= until) {
        return fail("victim " + opt.kill_victim.to_string() +
                    " never reported down");
      }
      std::this_thread::sleep_for(10ms);
    }
  }

  if (opt.hold_ms > 0) {
    // Linger with workers alive so an external doct-top --watch can attach
    // and observe live numbers before teardown.
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.hold_ms));
  }

  // Terminate the (surviving) workers so their processes exit cleanly.
  for (const auto& [peer, tid] : workers) {
    if (peer == opt.kill_victim) continue;
    node.events.raise(events::sys::kTerminate, tid);
  }
  std::cout << "MP-OK done" << std::endl;
  return 0;
}

int run_worker(const Options& opt, runtime::NodeRuntime& node, EventId ping) {
  std::atomic<bool> ready{false};
  kernel::SpawnOptions spawn_opts;
  spawn_opts.group = kWorkerGroup;
  const ThreadId tid = node.kernel.spawn(
      [&] {
        node.events.attach_handler(ping, "mp.count_ping", events::OWN_CONTEXT);
        ready.store(true, std::memory_order_release);
        // Stay alive as an event target until TERMINATE unwinds us.
        while (node.kernel.sleep_for(2ms).is_ok()) {
        }
      },
      spawn_opts);
  while (!ready.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(1ms);
  }

  // Publish discovery + progress probes only once the worker is ready, so a
  // coordinator that can see the methods can also raise at the thread.
  node.rpc.register_method("mp.worker_info",
                           [tid](NodeId, Reader&) -> Result<rpc::Payload> {
                             Writer w;
                             w.put(tid);
                             return std::move(w).take();
                           });
  node.rpc.register_method("mp.count",
                           [](NodeId, Reader&) -> Result<rpc::Payload> {
                             Writer w;
                             w.put(g_pings.load(std::memory_order_relaxed));
                             return std::move(w).take();
                           });

  const Status joined = node.kernel.join_thread(tid, 300s);
  if (!joined.is_ok()) return fail("worker join: " + joined.to_string());
  std::cout << "MP-EXIT " << opt.self.to_string() << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::cerr << "usage: doct-node --node=<id> --nodes=<N> --listen=<addr> "
                 "--peer=<id>=<addr>... [--kill-victim=<id>] "
                 "[--obs-dump=<dir>] [--flight-dir=<dir>] [--hold-ms=<n>]\n";
    return 2;
  }
  // doct-node always runs with observability on: it exists to be watched
  // (doct-top pulls its snapshots; crashes should leave flight dumps).
  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  obs::set_self_node(opt.self.value());
  if (!opt.flight_dir.empty()) {
    obs::flight().configure(opt.self.value(), opt.flight_dir);
  } else {
    obs::flight().configure_from_env(opt.self.value());
  }
  obs::install_crash_handlers();

  net::SocketTransportConfig tc;
  tc.self = opt.self;
  tc.listen = opt.listen;
  tc.peers = opt.peers;
  auto transport = std::make_unique<net::SocketTransport>(tc);
  const Status started = transport->start();
  if (started.is_ok()) {
    std::cout << "MP-LISTEN " << transport->listen_address() << std::endl;
  } else {
    return fail("transport: " + started.to_string());
  }

  runtime::ClusterConfig config;
  // The coordinator shard doubles as the cluster's telemetry collector:
  // every ~250ms it pulls each worker shard's metrics snapshot and trace
  // deltas, so doct-top (attaching through the coordinator) sees one merged,
  // node-labelled view.
  config.telemetry.collector = (opt.self == kCoordinator);
  config.telemetry.period = 250ms;
  config.telemetry.max_node = opt.nodes;
  config.node.health.enabled = true;
  // Sanitized CI runs are slow; a generous window avoids false suspicions
  // while kill detection still lands well inside the driver's deadline.
  config.node.health.heartbeat_interval = 50ms;
  config.node.health.suspect_after = 1s;
  runtime::Cluster cluster(opt.self, std::move(transport), config);
  runtime::NodeRuntime& node = cluster.node(0);

  // Same registration order in every process keeps user event ids aligned.
  const EventId ping = cluster.registry().register_event("mp.ping");
  cluster.procedures().register_procedure(
      "mp.count_ping", [](events::PerThreadCallCtx&) {
        g_pings.fetch_add(1, std::memory_order_relaxed);
        return kernel::Verdict::kResume;
      });

  std::atomic<bool> victim_down{false};
  node.health()->on_node_down([&](NodeId peer) {
    std::cout << "MP-NODE-DOWN " << peer.to_string() << std::endl;
    // A peer died under us: freeze this survivor's recent history to disk
    // before anything else reacts (the black box for the post-mortem).
    auto& recorder = obs::flight();
    if (recorder.enabled()) {
      recorder.note("node-down", peer.to_string(), peer.value(), 0);
      recorder.dump("peer-down-n" + std::to_string(peer.value()));
    }
    if (peer == opt.kill_victim) {
      victim_down.store(true, std::memory_order_release);
    }
  });

  const int rc = opt.self == kCoordinator
                     ? run_coordinator(opt, node, ping, victim_down)
                     : run_worker(opt, node, ping);
  dump_obs(opt);
  return rc;
}
