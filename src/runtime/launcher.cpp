#include "runtime/launcher.hpp"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

extern char** environ;

namespace doct::runtime {

ProcessGroup::~ProcessGroup() {
  for (pid_t pid : children_) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

Result<pid_t> ProcessGroup::spawn(const std::string& binary,
                                  const std::vector<std::string>& argv,
                                  const std::string& log_path) {
  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO, log_path.c_str(),
                                   O_CREAT | O_WRONLY | O_APPEND, 0644);
  posix_spawn_file_actions_adddup2(&actions, STDOUT_FILENO, STDERR_FILENO);

  std::vector<char*> args;
  args.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& arg : argv) {
    args.push_back(const_cast<char*>(arg.c_str()));
  }
  args.push_back(nullptr);

  pid_t pid = -1;
  const int rc = ::posix_spawn(&pid, binary.c_str(), &actions, nullptr,
                               args.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  if (rc != 0) {
    return Status{StatusCode::kInternal,
                  "posix_spawn " + binary + ": " + std::strerror(rc)};
  }
  children_.push_back(pid);
  return pid;
}

Status ProcessGroup::signal(pid_t pid, int signo) {
  if (::kill(pid, signo) != 0) {
    return {StatusCode::kNoSuchNode,
            "kill " + std::to_string(pid) + ": " + std::strerror(errno)};
  }
  return Status::ok();
}

Result<int> ProcessGroup::wait(pid_t pid, Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    int status = 0;
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      children_.erase(std::remove(children_.begin(), children_.end(), pid),
                      children_.end());
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
      return Status{StatusCode::kInternal, "unexpected wait status"};
    }
    if (done < 0) {
      return Status{StatusCode::kNoSuchNode,
                    "waitpid " + std::to_string(pid) + ": " +
                        std::strerror(errno)};
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status{StatusCode::kTimeout,
                    "pid " + std::to_string(pid) + " still running"};
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::vector<pid_t> ProcessGroup::running() const { return children_; }

}  // namespace doct::runtime
