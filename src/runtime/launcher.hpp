// Child-process management for multi-process clusters: the driver side of
// examples/multiprocess and the socket soak.  Spawns doct-node binaries with
// stdout+stderr redirected to per-process log files, waits with a deadline,
// and SIGKILLs stragglers on destruction so a wedged child never hangs CI.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace doct::runtime {

class ProcessGroup {
 public:
  ProcessGroup() = default;
  ~ProcessGroup();  // SIGKILLs and reaps anything still running

  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  // Starts `binary argv...` with stdout and stderr appended to `log_path`
  // (the artifact CI uploads on failure).  argv excludes argv[0].
  Result<pid_t> spawn(const std::string& binary,
                      const std::vector<std::string>& argv,
                      const std::string& log_path);

  Status signal(pid_t pid, int signo);

  // Waits for one child.  Ok value: the exit code for a normal exit, or
  // 128 + signal number when the child died to a signal (shell convention,
  // so a driver can assert "exit 0" and "died to SIGKILL" the same way).
  // kTimeout if the deadline passes — the child keeps running.
  Result<int> wait(pid_t pid, Duration timeout);

  // Pids spawned and not yet reaped.
  [[nodiscard]] std::vector<pid_t> running() const;

 private:
  std::vector<pid_t> children_;
};

}  // namespace doct::runtime
