// IoHub — thread-attached I/O channels (§3.1 "Thread Contexts").
//
// "Assume that the process is connected to an I/O channel (such as an X
//  terminal window).  If control is transferred from foo to bar, any output
//  from bar also goes to the same terminal window, without the programmer
//  explicitly performing any redirections."
//
// The hub is the system-wide set of named channels (terminal windows).  A
// thread's attribute record carries the channel name (`io_channel`); code in
// ANY object on ANY node writes through the current thread and the output
// lands on the channel the thread was bound to at creation — the state of
// the control mechanism is visible across all invocations.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"

namespace doct::runtime {

class IoHub {
 public:
  // Writes a line to the channel bound to the CURRENT logical thread.
  // Returns false if there is no current thread or it has no channel.
  bool write_current(const std::string& line) {
    kernel::ThreadContext* ctx = kernel::Kernel::current();
    if (ctx == nullptr) return false;
    const std::string channel = ctx->with_attributes(
        [](kernel::ThreadAttributes& a) { return a.io_channel; });
    if (channel.empty()) return false;
    write(channel, line);
    return true;
  }

  void write(const std::string& channel, const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    channels_[channel].push_back(line);
  }

  [[nodiscard]] std::vector<std::string> read(const std::string& channel) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(channel);
    return it == channels_.end() ? std::vector<std::string>{} : it->second;
  }

  void clear(const std::string& channel) {
    std::lock_guard<std::mutex> lock(mu_);
    channels_.erase(channel);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::string>> channels_;
};

}  // namespace doct::runtime
