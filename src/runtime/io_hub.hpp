// IoHub — thread-attached I/O channels (§3.1 "Thread Contexts").
//
// "Assume that the process is connected to an I/O channel (such as an X
//  terminal window).  If control is transferred from foo to bar, any output
//  from bar also goes to the same terminal window, without the programmer
//  explicitly performing any redirections."
//
// The hub is the system-wide set of named channels (terminal windows).  A
// thread's attribute record carries the channel name (`io_channel`); code in
// ANY object on ANY node writes through the current thread and the output
// lands on the channel the thread was bound to at creation — the state of
// the control mechanism is visible across all invocations.
//
// Each channel keeps a BOUNDED history ring: like a terminal's scrollback,
// the newest `history_capacity` lines are retained and older ones fall off
// the top (counted per channel in dropped()).  A long-running cluster with a
// chatty thread can no longer grow the hub without bound — the same
// bounded-buffer discipline the node executor applies to work queues.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"

namespace doct::runtime {

class IoHub {
 public:
  // Lines of history retained per channel; 0 = unbounded.
  static constexpr std::size_t kDefaultHistory = 4096;

  explicit IoHub(std::size_t history_capacity = kDefaultHistory)
      : history_capacity_(history_capacity) {}

  // Writes a line to the channel bound to the CURRENT logical thread.
  // Returns false if there is no current thread or it has no channel.
  bool write_current(const std::string& line) {
    kernel::ThreadContext* ctx = kernel::Kernel::current();
    if (ctx == nullptr) return false;
    const std::string channel = ctx->with_attributes(
        [](kernel::ThreadAttributes& a) { return a.io_channel; });
    if (channel.empty()) return false;
    write(channel, line);
    return true;
  }

  void write(const std::string& channel, const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    Channel& state = channels_[channel];
    state.lines.push_back(line);
    while (history_capacity_ != 0 && state.lines.size() > history_capacity_) {
      state.lines.pop_front();
      state.dropped++;
    }
  }

  // The retained history, oldest first.
  [[nodiscard]] std::vector<std::string> read(
      const std::string& channel) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(channel);
    if (it == channels_.end()) return {};
    return {it->second.lines.begin(), it->second.lines.end()};
  }

  // Lines that scrolled off the channel's history ring since creation.
  // Survives clear(): the tally is evidence of loss, not part of history.
  [[nodiscard]] std::uint64_t dropped(const std::string& channel) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(channel);
    return it == channels_.end() ? 0 : it->second.dropped;
  }

  void clear(const std::string& channel) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(channel);
    if (it == channels_.end()) return;
    if (it->second.dropped == 0) {
      channels_.erase(it);
    } else {
      it->second.lines.clear();
    }
  }

  [[nodiscard]] std::size_t history_capacity() const {
    return history_capacity_;
  }

 private:
  struct Channel {
    std::deque<std::string> lines;
    std::uint64_t dropped = 0;
  };

  const std::size_t history_capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Channel> channels_;
};

}  // namespace doct::runtime
