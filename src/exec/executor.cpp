#include "exec/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "obs/flight.hpp"

namespace doct::exec {

namespace {

// Keys held by the task currently running on this worker thread; nested
// submissions (surrogate chains) read it to inherit their parent's keys.
thread_local const ReservationSet* t_current_reservations = nullptr;

// Shadow-claim bound for one pick scan.  A scan that accumulates more
// blocked keys than this stops early (conservative: admitting nothing past
// that point can never reorder), keeping the scan allocation-free.
constexpr std::size_t kShadowMax = 128;

}  // namespace

const ReservationSet* Executor::current_reservations() {
  return t_current_reservations;
}

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::kControl:
      return "control";
    case Lane::kEvent:
      return "event";
    case Lane::kBulk:
      return "bulk";
  }
  return "unknown";
}

void Executor::TaskList::push_back(Task* task) {
  task->qprev = tail;
  task->qnext = nullptr;
  if (tail != nullptr) {
    tail->qnext = task;
  } else {
    head = task;
  }
  tail = task;
}

void Executor::TaskList::erase(Task* task) {
  if (task->qprev != nullptr) {
    task->qprev->qnext = task->qnext;
  } else {
    head = task->qnext;
  }
  if (task->qnext != nullptr) {
    task->qnext->qprev = task->qprev;
  } else {
    tail = task->qprev;
  }
  task->qprev = nullptr;
  task->qnext = nullptr;
}

Executor::Executor(ExecutorConfig config, std::string name, std::uint64_t node)
    : config_(config), node_(node) {
  config_.workers = std::max<std::size_t>(1, config_.workers);
  config_.control_reserve =
      std::min(config_.control_reserve,
               config_.workers > 1 ? config_.workers - 1 : 0);
  if (config_.single_lane) config_.control_reserve = 0;
  // CI width-ablation hooks: rerun the same binaries across the
  // {event_width} x {reservations} matrix without recompiling.
  if (const char* env = std::getenv("DOCT_EVENT_WIDTH")) {
    const long width = std::strtol(env, nullptr, 10);
    if (width > 0) config_.event.width = static_cast<std::size_t>(width);
  }
  if (const char* env = std::getenv("DOCT_RESERVATIONS")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
      config_.reservations = false;
    } else if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) {
      config_.reservations = true;
    }
  }
  // Without reservations there is nothing keeping same-target handlers
  // apart, so a wide (or uncapped) event lane is clamped back to the §7
  // serial master handler — the ablation stays serial, never racy.
  if (!config_.reservations &&
      (config_.event.width == 0 || config_.event.width > 1)) {
    config_.event.width = 1;
  }
  lockfree_ = config_.queue == common::QueueBackend::kLockfree;

  for (std::size_t i = 0; i < kLaneCount; ++i) {
    const std::string lane = lane_name(static_cast<Lane>(i));
    depth_gauge_[i] = &obs::metrics().gauge("exec.lane_depth." + lane);
    wait_us_[i] = &obs::metrics().histogram("exec.lane_wait_us." + lane);
  }
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    const std::string lane = lane_name(static_cast<Lane>(i));
    depth_sampled_[i] =
        &obs::metrics().histogram("exec.lane_depth_sampled." + lane);
  }
  shed_counter_ = &obs::metrics().counter("exec.shed_total");
  reservation_blocked_us_ =
      &obs::metrics().histogram("exec.reservation_blocked_us");
  reservation_conflict_counter_ =
      &obs::metrics().counter("exec.reservation_conflicts");
  claimed_sampled_ =
      &obs::metrics().histogram("exec.reservation_claimed_sampled");
  claimed_gauge_ = &obs::metrics().gauge("exec.reservation_claimed");
  metrics_source_ = obs::metrics().register_source(std::move(name), [this] {
    const ExecutorStats s = stats();
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (std::size_t i = 0; i < kLaneCount; ++i) {
      const std::string lane = lane_name(static_cast<Lane>(i));
      out.emplace_back(lane + "_submitted", s.lanes[i].submitted);
      out.emplace_back(lane + "_executed", s.lanes[i].executed);
      out.emplace_back(lane + "_shed", s.lanes[i].shed);
      out.emplace_back(lane + "_coalesced", s.lanes[i].coalesced);
      // Live depth rides in the source so per-node rows keep per-node
      // depths even in-process, where the "exec.lane_depth.*" gauges are
      // shared by every node in the process.
      out.emplace_back(lane + "_depth",
                       lane_depth(static_cast<Lane>(i)));
    }
    out.emplace_back("shed_total", s.shed_total());
    out.emplace_back("reservation_acquired", s.reservation_acquired);
    out.emplace_back("reservation_conflicts", s.reservation_conflicts);
    out.emplace_back("reservation_claimed", claimed_keys());
    out.emplace_back("wakeups", s.wakeups);
    return out;
  });

  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  shutdown();
  // A producer racing shutdown() can land one last intake node after the
  // final drain; reclaim it here (its fn was accepted but the executor is
  // gone — same fate as work queued at process teardown).
  for (auto& state : lanes_) {
    common::MpscNode* node = state.intake.take_all();
    while (node != nullptr) {
      common::MpscNode* next = node->next;
      delete static_cast<Task*>(node);
      node = next;
    }
  }
  Task* pooled = nullptr;
  while (task_pool_.pop(pooled)) delete pooled;
}

const LaneConfig& Executor::lane_config(std::size_t lane) const {
  switch (static_cast<Lane>(lane)) {
    case Lane::kControl:
      return config_.control;
    case Lane::kEvent:
      return config_.event;
    case Lane::kBulk:
      return config_.bulk;
  }
  return config_.event;
}

std::size_t Executor::physical_lane(Lane lane) const {
  return config_.single_lane ? static_cast<std::size_t>(Lane::kEvent)
                             : static_cast<std::size_t>(lane);
}

void Executor::note_shed(Lane lane) {
  stats_[static_cast<std::size_t>(lane)].shed.fetch_add(1);
  if (obs::metrics_enabled()) shed_counter_->add();
}

Executor::Task* Executor::alloc_task() {
  Task* task = nullptr;
  if (!task_pool_.pop(task)) task = new Task;
  return task;
}

void Executor::recycle_task(Task* task) {
  task->fn.reset();
  task->key = 0;
  task->enqueued_us = 0;
  task->origin = Lane::kEvent;
  task->keys.clear();
  task->conflicted = false;
  task->blocked_since_us = 0;
  task->trace = obs::TraceContext{};
  task->next = nullptr;
  task->qprev = nullptr;
  task->qnext = nullptr;
  if (!task_pool_.push(task)) delete task;
}

void Executor::wake_workers() {
  // Dekker pairing with worker_loop: the producer's chain push must be
  // globally ordered before its read of wake_pending_, and the worker's
  // clear of wake_pending_ before its chain drain — otherwise a producer
  // can read a stale pending==true for a node the worker's drain missed
  // (lost wakeup).  Two seq_cst fences close the store-buffer window.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  wakeups_.fetch_add(1);
  // Empty critical section: serializes with a worker between its rescan and
  // its wait, so the notify below cannot be lost.
  { std::lock_guard<std::mutex> lock(mu_); }
  work_cv_.notify_all();
}

void Executor::wake_workers_locked() {
  wake_pending_.store(true, std::memory_order_release);
  work_cv_.notify_all();
}

Status Executor::submit(Lane lane, common::SmallTask fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/true);
}

Status Executor::try_submit(Lane lane, common::SmallTask fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/false);
}

Status Executor::submit(Lane lane, ReservationSet reservations,
                        common::SmallTask fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/true,
               std::move(reservations));
}

Status Executor::try_submit(Lane lane, ReservationSet reservations,
                            common::SmallTask fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/false,
               std::move(reservations));
}

Status Executor::submit_coalesced(Lane lane, std::uint64_t key,
                                  common::SmallTask fn) {
  if (key == 0) {
    return {StatusCode::kInvalidArgument, "coalesce key must be non-zero"};
  }
  // Coalescing producers are delivery/beat threads: never park them.
  return admit(lane, std::move(fn), key, /*may_block=*/false);
}

Status Executor::admit(Lane lane, common::SmallTask fn, std::uint64_t key,
                       bool may_block, ReservationSet reservations) {
  stats_[static_cast<std::size_t>(lane)].submitted.fetch_add(1);
  // Keyed (coalescible) admission needs the supersede-in-place index, which
  // only exists under mu_; it is never the hot path.
  if (!lockfree_ || key != 0) {
    return admit_locked(lane, std::move(fn), key, may_block,
                        std::move(reservations));
  }

  const std::size_t idx = physical_lane(lane);
  const LaneConfig& cfg = lane_config(idx);
  LaneState& state = lanes_[idx];
  if (closed_.load(std::memory_order_acquire)) {
    return {StatusCode::kAborted, "executor shutting down"};
  }
  for (;;) {
    const std::uint64_t prev =
        state.depth.fetch_add(1, std::memory_order_acq_rel);
    if (cfg.capacity == 0 || prev < cfg.capacity) break;  // admitted
    state.depth.fetch_sub(1, std::memory_order_relaxed);
    if (!may_block || cfg.policy != OverloadPolicy::kBlock) {
      note_shed(lane);
      return {StatusCode::kResourceExhausted,
              std::string("lane overloaded: ") + lane_name(lane)};
    }
    // kBlock overflow parks on the (cold) scheduler mutex, then retries the
    // admission loop — re-entering THROUGH the intake so a blocked producer
    // can never overtake tasks admitted while it waited.
    std::unique_lock<std::mutex> lock(mu_);
    const bool space = space_cv_.wait_for(lock, cfg.block_deadline, [&] {
      return closed_.load(std::memory_order_relaxed) ||
             state.depth.load(std::memory_order_relaxed) < cfg.capacity;
    });
    if (closed_.load(std::memory_order_relaxed)) {
      return {StatusCode::kAborted, "executor shutting down"};
    }
    if (!space) {
      note_shed(lane);
      return {StatusCode::kResourceExhausted,
              std::string("lane full past block deadline: ") +
                  lane_name(lane)};
    }
  }
  Task* task = alloc_task();
  task->fn = std::move(fn);
  task->origin = lane;
  task->keys = std::move(reservations);
  if (obs::metrics_enabled()) {
    task->enqueued_us = obs::now_us();
    depth_gauge_[idx]->add(1);
  }
  if (obs::tracing_enabled()) task->trace = obs::current_context();
  state.intake.push(task);
  wake_workers();
  return Status::ok();
}

Status Executor::admit_locked(Lane lane, common::SmallTask fn,
                              std::uint64_t key, bool may_block,
                              ReservationSet reservations) {
  const std::size_t idx = physical_lane(lane);
  const LaneConfig& cfg = lane_config(idx);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_.load(std::memory_order_relaxed)) {
      return {StatusCode::kAborted, "executor shutting down"};
    }
    LaneState& state = lanes_[idx];
    if (key != 0) {
      // The supersede check must see queued-but-undrained lockfree intake
      // nodes too; splice them in before consulting the index.
      if (lockfree_) drain_intakes_locked();
      auto it = state.coalesce_index.find(key);
      if (it != state.coalesce_index.end()) {
        // Idempotent work already queued: the fresh fn supersedes it in
        // place — same queue position, no extra capacity.
        it->second->fn = std::move(fn);
        stats_[static_cast<std::size_t>(lane)].coalesced.fetch_add(1);
        return Status::ok();
      }
    }
    if (cfg.capacity > 0 &&
        state.depth.load(std::memory_order_relaxed) >= cfg.capacity) {
      if (may_block && cfg.policy == OverloadPolicy::kBlock) {
        const bool space = space_cv_.wait_for(lock, cfg.block_deadline, [&] {
          return closed_.load(std::memory_order_relaxed) ||
                 state.depth.load(std::memory_order_relaxed) < cfg.capacity;
        });
        if (closed_.load(std::memory_order_relaxed)) {
          return {StatusCode::kAborted, "executor shutting down"};
        }
        if (!space) {
          note_shed(lane);
          return {StatusCode::kResourceExhausted,
                  std::string("lane full past block deadline: ") +
                      lane_name(lane)};
        }
      } else {
        note_shed(lane);
        return {StatusCode::kResourceExhausted,
                std::string("lane overloaded: ") + lane_name(lane)};
      }
    }
    Task* task = alloc_task();
    task->fn = std::move(fn);
    task->key = key;
    task->origin = lane;
    task->keys = std::move(reservations);
    if (obs::metrics_enabled()) {
      task->enqueued_us = obs::now_us();
      depth_gauge_[idx]->add(1);
    }
    if (obs::tracing_enabled()) task->trace = obs::current_context();
    if (key != 0) state.coalesce_index[key] = task;
    state.depth.fetch_add(1, std::memory_order_relaxed);
    state.staging.push_back(task);
  }
  // Heterogeneous waiters (control-reserve vs general workers) share one cv;
  // notify_all so a reserved worker cannot swallow a general worker's wakeup.
  wake_workers();
  return Status::ok();
}

void Executor::drain_intakes_locked() {
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    LaneState& state = lanes_[i];
    if (state.intake.empty()) continue;
    common::MpscNode* node = state.intake.take_all();
    while (node != nullptr) {
      common::MpscNode* next = node->next;
      Task* task = static_cast<Task*>(node);
      task->next = nullptr;
      state.staging.push_back(task);
      node = next;
    }
  }
}

std::size_t Executor::take_batch_locked(std::size_t worker_index,
                                        std::vector<Task*>& out) {
  const bool control_only =
      !config_.single_lane && worker_index < config_.control_reserve;
  const std::size_t last =
      control_only ? static_cast<std::size_t>(Lane::kControl) : kLaneCount - 1;
  const bool obs_on = obs::metrics_enabled() || obs::tracing_enabled();
  for (std::size_t lane = 0; lane <= last; ++lane) {
    LaneState& state = lanes_[lane];
    if (state.staging.empty()) continue;
    const LaneConfig& cfg = lane_config(lane);
    if (!config_.single_lane && cfg.width > 0 && state.active >= cfg.width) {
      continue;
    }
    const std::size_t take_max =
        cfg.batch > 0 ? cfg.batch : ~std::size_t{0};
    // Shadow-claims: keys of tasks we skipped.  A later task sharing any of
    // them may not overtake — that is the per-key FIFO guarantee that keeps
    // same-target delivery order identical to the width-1 run.  Fixed
    // array + linear scan: key sets are tiny and this path must not
    // allocate.
    ReservationKey shadow[kShadowMax];
    std::size_t nshadow = 0;
    for (Task* task = state.staging.head;
         task != nullptr && out.size() < take_max;) {
      Task* next = task->qnext;
      bool blocked = false;
      for (const ReservationKey key : task->keys) {
        bool shadowed = false;
        for (std::size_t s = 0; s < nshadow && !shadowed; ++s) {
          shadowed = shadow[s] == key;
        }
        if (shadowed || claimed_.contains(key)) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        if (nshadow + task->keys.size() > kShadowMax) {
          // Shadow set exhausted: stop the scan here.  Conservative —
          // admitting nothing past a blocked task can never reorder.
          break;
        }
        for (const ReservationKey key : task->keys) shadow[nshadow++] = key;
        if (!task->conflicted) {
          task->conflicted = true;
          reservation_conflicts_.fetch_add(1);
          if (obs_on) task->blocked_since_us = obs::now_us();
        }
        task = next;
        continue;
      }
      for (const ReservationKey key : task->keys) claimed_.insert(key);
      if (task->key != 0) state.coalesce_index.erase(task->key);
      state.staging.erase(task);
      state.depth.fetch_sub(1, std::memory_order_relaxed);
      out.push_back(task);
      task = next;
    }
    if (!out.empty()) return lane;
    // Every queued task here is blocked on a reservation; a lower lane may
    // still have runnable work.
  }
  return kLaneCount;
}

void Executor::worker_loop(std::size_t worker_index) {
  const bool control_only =
      !config_.single_lane && worker_index < config_.control_reserve;
  std::vector<Task*> batch;
  batch.reserve(64);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Clear the wakeup gate BEFORE rescanning: an admission landing after
    // the rescan re-arms it and pays the (single) notify.
    wake_pending_.store(false, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);  // pairs wake_workers
    drain_intakes_locked();
    batch.clear();
    const std::size_t lane = take_batch_locked(worker_index, batch);
    if (lane == kLaneCount) {
      if (closed_.load(std::memory_order_relaxed)) {
        // Exit only when every queue in this worker's scope is drained; a
        // width-saturated lane (or a reservation-blocked task) still has a
        // running owner that will release and finish it.
        bool drained =
            lanes_[static_cast<std::size_t>(Lane::kControl)].staging.empty();
        if (!control_only) {
          for (std::size_t i = 0; i < kLaneCount; ++i) {
            drained = drained && lanes_[i].staging.empty() &&
                      lanes_[i].intake.empty();
          }
        }
        if (drained) return;
      }
      work_cv_.wait(lock);
      continue;
    }

    LaneState& state = lanes_[lane];
    state.active++;
    lock.unlock();
    // Capacity was freed: wake kBlock producers parked on this lane.
    space_cv_.notify_all();

    if (obs::metrics_enabled()) {
      depth_gauge_[lane]->add(-static_cast<std::int64_t>(batch.size()));
      const std::int64_t now = obs::now_us();
      for (const Task* task : batch) {
        if (task->enqueued_us > 0) {
          wait_us_[lane]->record_us(now - task->enqueued_us);
        }
      }
    }
    for (Task* task : batch) {
      note_reservation_wait(*task, static_cast<Lane>(lane));
      if (!task->keys.empty()) {
        reservation_acquired_.fetch_add(1);
        t_current_reservations = &task->keys;
      }
      task->fn();
      t_current_reservations = nullptr;
      stats_[static_cast<std::size_t>(task->origin)].executed.fetch_add(1);
      // Destroy the callable outside mu_ (captured state may have
      // non-trivial destructors).
      task->fn.reset();
    }

    lock.lock();
    state.active--;
    bool released = false;
    for (Task* task : batch) {
      for (const ReservationKey key : task->keys) claimed_.erase(key);
      released = released || !task->keys.empty();
      recycle_task(task);
    }
    if (released || !state.staging.empty()) {
      // A width slot (and possibly reservation keys) opened with work still
      // queued: wake sleepers to claim it (we loop around ourselves too,
      // but may pick a higher lane).
      wake_workers_locked();
    }
  }
}

void Executor::note_reservation_wait(const Task& task, Lane lane) {
  if (task.blocked_since_us <= 0) return;
  const std::int64_t now = obs::now_us();
  const std::int64_t waited = now - task.blocked_since_us;
  if (obs::metrics_enabled()) {
    reservation_blocked_us_->record_us(waited);
    reservation_conflict_counter_->add();
  }
  // Make blocked-on-reservation time visible in Perfetto: a "resv_wait"
  // span on the raiser's trace covering skip-to-admission.
  if (obs::tracing_enabled() && task.trace.valid()) {
    obs::Span span;
    span.trace_id = task.trace.trace_id;
    span.parent_span = task.trace.span_id;
    span.span_id = obs::tracer().new_id();
    span.node = node_;
    span.name = "resv_wait";
    span.detail = lane_name(lane);
    span.start_us = task.blocked_since_us;
    span.dur_us = waited;
    obs::tracer().record(span);
  }
}

void Executor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_.store(true, std::memory_order_release);
    wake_pending_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  // Late lockfree admissions can land on an intake chain after the workers'
  // final drain (producers never hold mu_).  Run them inline — shutdown
  // keeps the "queued work runs to completion" drain contract.
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    LaneState& state = lanes_[i];
    common::MpscNode* node = state.intake.take_all();
    while (node != nullptr) {
      common::MpscNode* next = node->next;
      Task* task = static_cast<Task*>(node);
      task->next = nullptr;
      state.depth.fetch_sub(1, std::memory_order_relaxed);
      if (!task->keys.empty()) t_current_reservations = &task->keys;
      task->fn();
      t_current_reservations = nullptr;
      stats_[static_cast<std::size_t>(task->origin)].executed.fetch_add(1);
      task->fn.reset();
      recycle_task(task);
      node = next;
    }
  }
}

bool Executor::closed() const {
  return closed_.load(std::memory_order_acquire);
}

std::size_t Executor::lane_depth(Lane lane) const {
  return static_cast<std::size_t>(
      lanes_[physical_lane(lane)].depth.load(std::memory_order_acquire));
}

ExecutorStats Executor::stats() const {
  ExecutorStats out;
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    out.lanes[i].submitted = stats_[i].submitted.load();
    out.lanes[i].executed = stats_[i].executed.load();
    out.lanes[i].shed = stats_[i].shed.load();
    out.lanes[i].coalesced = stats_[i].coalesced.load();
  }
  out.reservation_acquired = reservation_acquired_.load();
  out.reservation_conflicts = reservation_conflicts_.load();
  out.wakeups = wakeups_.load();
  return out;
}

void Executor::reset_stats() {
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    stats_[i].submitted.store(0);
    stats_[i].executed.store(0);
    stats_[i].shed.store(0);
    stats_[i].coalesced.store(0);
  }
  reservation_acquired_.store(0);
  reservation_conflicts_.store(0);
  wakeups_.store(0);
}

std::size_t Executor::claimed_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return claimed_.size();
}

void Executor::sample_telemetry() {
  std::size_t depths[kLaneCount];
  std::size_t claimed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < kLaneCount; ++i) {
      depths[i] = static_cast<std::size_t>(
          lanes_[i].depth.load(std::memory_order_relaxed));
    }
    claimed = claimed_.size();
  }
  if (obs::metrics_enabled()) {
    for (std::size_t i = 0; i < kLaneCount; ++i) {
      depth_sampled_[i]->record(depths[i]);
      depth_gauge_[i]->set(static_cast<std::int64_t>(depths[i]));
    }
    claimed_sampled_->record(claimed);
    claimed_gauge_->set(static_cast<std::int64_t>(claimed));
  }
  auto& recorder = obs::flight();
  if (recorder.enabled()) {
    recorder.note("lanes",
                  "depth c/e/b=" + std::to_string(depths[0]) + "/" +
                      std::to_string(depths[1]) + "/" +
                      std::to_string(depths[2]),
                  node_, claimed);
  }
}

}  // namespace doct::exec
