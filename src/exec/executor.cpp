#include "exec/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"
#include "obs/flight.hpp"

namespace doct::exec {

namespace {

// Keys held by the task currently running on this worker thread; nested
// submissions (surrogate chains) read it to inherit their parent's keys.
thread_local const ReservationSet* t_current_reservations = nullptr;

}  // namespace

const ReservationSet* Executor::current_reservations() {
  return t_current_reservations;
}

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::kControl:
      return "control";
    case Lane::kEvent:
      return "event";
    case Lane::kBulk:
      return "bulk";
  }
  return "unknown";
}

Executor::Executor(ExecutorConfig config, std::string name, std::uint64_t node)
    : config_(config), node_(node) {
  config_.workers = std::max<std::size_t>(1, config_.workers);
  config_.control_reserve =
      std::min(config_.control_reserve,
               config_.workers > 1 ? config_.workers - 1 : 0);
  if (config_.single_lane) config_.control_reserve = 0;
  // CI width-ablation hooks: rerun the same binaries across the
  // {event_width} x {reservations} matrix without recompiling.
  if (const char* env = std::getenv("DOCT_EVENT_WIDTH")) {
    const long width = std::strtol(env, nullptr, 10);
    if (width > 0) config_.event.width = static_cast<std::size_t>(width);
  }
  if (const char* env = std::getenv("DOCT_RESERVATIONS")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
      config_.reservations = false;
    } else if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) {
      config_.reservations = true;
    }
  }
  // Without reservations there is nothing keeping same-target handlers
  // apart, so a wide (or uncapped) event lane is clamped back to the §7
  // serial master handler — the ablation stays serial, never racy.
  if (!config_.reservations &&
      (config_.event.width == 0 || config_.event.width > 1)) {
    config_.event.width = 1;
  }

  for (std::size_t i = 0; i < kLaneCount; ++i) {
    const std::string lane = lane_name(static_cast<Lane>(i));
    depth_gauge_[i] = &obs::metrics().gauge("exec.lane_depth." + lane);
    wait_us_[i] = &obs::metrics().histogram("exec.lane_wait_us." + lane);
  }
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    const std::string lane = lane_name(static_cast<Lane>(i));
    depth_sampled_[i] =
        &obs::metrics().histogram("exec.lane_depth_sampled." + lane);
  }
  shed_counter_ = &obs::metrics().counter("exec.shed_total");
  reservation_blocked_us_ =
      &obs::metrics().histogram("exec.reservation_blocked_us");
  reservation_conflict_counter_ =
      &obs::metrics().counter("exec.reservation_conflicts");
  claimed_sampled_ =
      &obs::metrics().histogram("exec.reservation_claimed_sampled");
  claimed_gauge_ = &obs::metrics().gauge("exec.reservation_claimed");
  metrics_source_ = obs::metrics().register_source(std::move(name), [this] {
    const ExecutorStats s = stats();
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (std::size_t i = 0; i < kLaneCount; ++i) {
      const std::string lane = lane_name(static_cast<Lane>(i));
      out.emplace_back(lane + "_submitted", s.lanes[i].submitted);
      out.emplace_back(lane + "_executed", s.lanes[i].executed);
      out.emplace_back(lane + "_shed", s.lanes[i].shed);
      out.emplace_back(lane + "_coalesced", s.lanes[i].coalesced);
      // Live depth rides in the source so per-node rows keep per-node
      // depths even in-process, where the "exec.lane_depth.*" gauges are
      // shared by every node in the process.
      out.emplace_back(lane + "_depth",
                       lane_depth(static_cast<Lane>(i)));
    }
    out.emplace_back("shed_total", s.shed_total());
    out.emplace_back("reservation_acquired", s.reservation_acquired);
    out.emplace_back("reservation_conflicts", s.reservation_conflicts);
    out.emplace_back("reservation_claimed", claimed_keys());
    return out;
  });

  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() { shutdown(); }

const LaneConfig& Executor::lane_config(std::size_t lane) const {
  switch (static_cast<Lane>(lane)) {
    case Lane::kControl:
      return config_.control;
    case Lane::kEvent:
      return config_.event;
    case Lane::kBulk:
      return config_.bulk;
  }
  return config_.event;
}

std::size_t Executor::physical_lane(Lane lane) const {
  return config_.single_lane ? static_cast<std::size_t>(Lane::kEvent)
                             : static_cast<std::size_t>(lane);
}

void Executor::note_shed(Lane lane) {
  stats_[static_cast<std::size_t>(lane)].shed.fetch_add(
      1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) shed_counter_->add();
}

Status Executor::submit(Lane lane, std::function<void()> fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/true);
}

Status Executor::try_submit(Lane lane, std::function<void()> fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/false);
}

Status Executor::submit(Lane lane, ReservationSet reservations,
                        std::function<void()> fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/true,
               std::move(reservations));
}

Status Executor::try_submit(Lane lane, ReservationSet reservations,
                            std::function<void()> fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/false,
               std::move(reservations));
}

Status Executor::submit_coalesced(Lane lane, std::uint64_t key,
                                  std::function<void()> fn) {
  if (key == 0) {
    return {StatusCode::kInvalidArgument, "coalesce key must be non-zero"};
  }
  // Coalescing producers are delivery/beat threads: never park them.
  return admit(lane, std::move(fn), key, /*may_block=*/false);
}

Status Executor::admit(Lane lane, std::function<void()> fn, std::uint64_t key,
                       bool may_block, ReservationSet reservations) {
  stats_[static_cast<std::size_t>(lane)].submitted.fetch_add(
      1, std::memory_order_relaxed);
  const std::size_t idx = physical_lane(lane);
  const LaneConfig& cfg = lane_config(idx);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) {
      return {StatusCode::kAborted, "executor shutting down"};
    }
    LaneState& state = lanes_[idx];
    if (key != 0) {
      auto it = state.coalesce_index.find(key);
      if (it != state.coalesce_index.end()) {
        // Idempotent work already queued: the fresh fn supersedes it in
        // place — same queue position, no extra capacity.
        it->second->fn = std::move(fn);
        stats_[static_cast<std::size_t>(lane)].coalesced.fetch_add(
            1, std::memory_order_relaxed);
        return Status::ok();
      }
    }
    if (cfg.capacity > 0 && state.queue.size() >= cfg.capacity) {
      if (may_block && cfg.policy == OverloadPolicy::kBlock) {
        const bool space = space_cv_.wait_for(lock, cfg.block_deadline, [&] {
          return closed_ || state.queue.size() < cfg.capacity;
        });
        if (closed_) {
          return {StatusCode::kAborted, "executor shutting down"};
        }
        if (!space) {
          note_shed(lane);
          return {StatusCode::kResourceExhausted,
                  std::string("lane full past block deadline: ") +
                      lane_name(lane)};
        }
      } else {
        note_shed(lane);
        return {StatusCode::kResourceExhausted,
                std::string("lane overloaded: ") + lane_name(lane)};
      }
    }
    auto task = std::make_unique<Task>();
    task->fn = std::move(fn);
    task->key = key;
    task->origin = lane;
    task->keys = std::move(reservations);
    if (obs::metrics_enabled()) {
      task->enqueued_us = obs::now_us();
      depth_gauge_[idx]->add(1);
    }
    if (obs::tracing_enabled()) task->trace = obs::current_context();
    if (key != 0) state.coalesce_index[key] = task.get();
    state.queue.push_back(std::move(task));
  }
  // Heterogeneous waiters (control-reserve vs general workers) share one cv;
  // notify_all so a reserved worker cannot swallow a general worker's wakeup.
  work_cv_.notify_all();
  return Status::ok();
}

std::size_t Executor::take_batch_locked(
    std::size_t worker_index, std::vector<std::unique_ptr<Task>>& out) {
  const bool control_only =
      !config_.single_lane && worker_index < config_.control_reserve;
  const std::size_t last =
      control_only ? static_cast<std::size_t>(Lane::kControl) : kLaneCount - 1;
  const bool obs_on = obs::metrics_enabled() || obs::tracing_enabled();
  for (std::size_t lane = 0; lane <= last; ++lane) {
    LaneState& state = lanes_[lane];
    if (state.queue.empty()) continue;
    const LaneConfig& cfg = lane_config(lane);
    if (!config_.single_lane && cfg.width > 0 && state.active >= cfg.width) {
      continue;
    }
    const std::size_t take_max =
        cfg.batch > 0 ? cfg.batch : state.queue.size();
    // Shadow-claims: keys of tasks we skipped.  A later task sharing any of
    // them may not overtake — that is the per-key FIFO guarantee that keeps
    // same-target delivery order identical to the width-1 run.
    std::unordered_set<ReservationKey> shadow;
    for (auto it = state.queue.begin();
         it != state.queue.end() && out.size() < take_max;) {
      Task& task = **it;
      bool blocked = false;
      for (const ReservationKey key : task.keys) {
        if (claimed_.count(key) != 0 || shadow.count(key) != 0) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        shadow.insert(task.keys.begin(), task.keys.end());
        if (!task.conflicted) {
          task.conflicted = true;
          reservation_conflicts_.fetch_add(1, std::memory_order_relaxed);
          if (obs_on) task.blocked_since_us = obs::now_us();
        }
        ++it;
        continue;
      }
      claimed_.insert(task.keys.begin(), task.keys.end());
      if (task.key != 0) state.coalesce_index.erase(task.key);
      out.push_back(std::move(*it));
      it = state.queue.erase(it);
    }
    if (!out.empty()) return lane;
    // Every queued task here is blocked on a reservation; a lower lane may
    // still have runnable work.
  }
  return kLaneCount;
}

void Executor::worker_loop(std::size_t worker_index) {
  const bool control_only =
      !config_.single_lane && worker_index < config_.control_reserve;
  std::vector<std::unique_ptr<Task>> batch;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    batch.clear();
    const std::size_t lane = take_batch_locked(worker_index, batch);
    if (lane == kLaneCount) {
      if (closed_) {
        // Exit only when every queue in this worker's scope is drained; a
        // width-saturated lane (or a reservation-blocked task) still has a
        // running owner that will release and finish it.
        bool drained = lanes_[static_cast<std::size_t>(Lane::kControl)]
                           .queue.empty();
        if (!control_only) {
          for (std::size_t i = 0; i < kLaneCount; ++i) {
            drained = drained && lanes_[i].queue.empty();
          }
        }
        if (drained) return;
      }
      work_cv_.wait(lock);
      continue;
    }

    LaneState& state = lanes_[lane];
    state.active++;
    lock.unlock();
    // Capacity was freed: wake kBlock producers parked on this lane.
    space_cv_.notify_all();

    if (obs::metrics_enabled()) {
      depth_gauge_[lane]->add(-static_cast<std::int64_t>(batch.size()));
      const std::int64_t now = obs::now_us();
      for (const auto& task : batch) {
        if (task->enqueued_us > 0) {
          wait_us_[lane]->record_us(now - task->enqueued_us);
        }
      }
    }
    for (auto& task : batch) {
      note_reservation_wait(*task, static_cast<Lane>(lane));
      if (!task->keys.empty()) {
        reservation_acquired_.fetch_add(1, std::memory_order_relaxed);
        t_current_reservations = &task->keys;
      }
      task->fn();
      t_current_reservations = nullptr;
      stats_[static_cast<std::size_t>(task->origin)].executed.fetch_add(
          1, std::memory_order_relaxed);
    }

    lock.lock();
    state.active--;
    bool released = false;
    for (const auto& task : batch) {
      for (const ReservationKey key : task->keys) claimed_.erase(key);
      released = released || !task->keys.empty();
    }
    if (released || !state.queue.empty()) {
      // A width slot (and possibly reservation keys) opened with work still
      // queued: wake sleepers to claim it (we loop around ourselves too,
      // but may pick a higher lane).
      lock.unlock();
      work_cv_.notify_all();
      lock.lock();
    }
  }
}

void Executor::note_reservation_wait(const Task& task, Lane lane) {
  if (task.blocked_since_us <= 0) return;
  const std::int64_t now = obs::now_us();
  const std::int64_t waited = now - task.blocked_since_us;
  if (obs::metrics_enabled()) {
    reservation_blocked_us_->record_us(waited);
    reservation_conflict_counter_->add();
  }
  // Make blocked-on-reservation time visible in Perfetto: a "resv_wait"
  // span on the raiser's trace covering skip-to-admission.
  if (obs::tracing_enabled() && task.trace.valid()) {
    obs::Span span;
    span.trace_id = task.trace.trace_id;
    span.parent_span = task.trace.span_id;
    span.span_id = obs::tracer().new_id();
    span.node = node_;
    span.name = "resv_wait";
    span.detail = lane_name(lane);
    span.start_us = task.blocked_since_us;
    span.dur_us = waited;
    obs::tracer().record(span);
  }
}

void Executor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

bool Executor::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t Executor::lane_depth(Lane lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_[physical_lane(lane)].queue.size();
}

ExecutorStats Executor::stats() const {
  ExecutorStats out;
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    out.lanes[i].submitted =
        stats_[i].submitted.load(std::memory_order_relaxed);
    out.lanes[i].executed = stats_[i].executed.load(std::memory_order_relaxed);
    out.lanes[i].shed = stats_[i].shed.load(std::memory_order_relaxed);
    out.lanes[i].coalesced =
        stats_[i].coalesced.load(std::memory_order_relaxed);
  }
  out.reservation_acquired =
      reservation_acquired_.load(std::memory_order_relaxed);
  out.reservation_conflicts =
      reservation_conflicts_.load(std::memory_order_relaxed);
  return out;
}

void Executor::reset_stats() {
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    stats_[i].submitted.store(0, std::memory_order_relaxed);
    stats_[i].executed.store(0, std::memory_order_relaxed);
    stats_[i].shed.store(0, std::memory_order_relaxed);
    stats_[i].coalesced.store(0, std::memory_order_relaxed);
  }
  reservation_acquired_.store(0, std::memory_order_relaxed);
  reservation_conflicts_.store(0, std::memory_order_relaxed);
}

std::size_t Executor::claimed_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return claimed_.size();
}

void Executor::sample_telemetry() {
  std::size_t depths[kLaneCount];
  std::size_t claimed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < kLaneCount; ++i) {
      depths[i] = lanes_[i].queue.size();
    }
    claimed = claimed_.size();
  }
  if (obs::metrics_enabled()) {
    for (std::size_t i = 0; i < kLaneCount; ++i) {
      depth_sampled_[i]->record(depths[i]);
      depth_gauge_[i]->set(static_cast<std::int64_t>(depths[i]));
    }
    claimed_sampled_->record(claimed);
    claimed_gauge_->set(static_cast<std::int64_t>(claimed));
  }
  auto& recorder = obs::flight();
  if (recorder.enabled()) {
    recorder.note("lanes",
                  "depth c/e/b=" + std::to_string(depths[0]) + "/" +
                      std::to_string(depths[1]) + "/" +
                      std::to_string(depths[2]),
                  node_, claimed);
  }
}

}  // namespace doct::exec
