#include "exec/executor.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace doct::exec {

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::kControl:
      return "control";
    case Lane::kEvent:
      return "event";
    case Lane::kBulk:
      return "bulk";
  }
  return "unknown";
}

Executor::Executor(ExecutorConfig config, std::string name)
    : config_(config) {
  config_.workers = std::max<std::size_t>(1, config_.workers);
  config_.control_reserve =
      std::min(config_.control_reserve,
               config_.workers > 1 ? config_.workers - 1 : 0);
  if (config_.single_lane) config_.control_reserve = 0;

  for (std::size_t i = 0; i < kLaneCount; ++i) {
    const std::string lane = lane_name(static_cast<Lane>(i));
    depth_gauge_[i] = &obs::metrics().gauge("exec.lane_depth." + lane);
    wait_us_[i] = &obs::metrics().histogram("exec.lane_wait_us." + lane);
  }
  shed_counter_ = &obs::metrics().counter("exec.shed_total");
  metrics_source_ = obs::metrics().register_source(std::move(name), [this] {
    const ExecutorStats s = stats();
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (std::size_t i = 0; i < kLaneCount; ++i) {
      const std::string lane = lane_name(static_cast<Lane>(i));
      out.emplace_back(lane + "_submitted", s.lanes[i].submitted);
      out.emplace_back(lane + "_executed", s.lanes[i].executed);
      out.emplace_back(lane + "_shed", s.lanes[i].shed);
      out.emplace_back(lane + "_coalesced", s.lanes[i].coalesced);
    }
    out.emplace_back("shed_total", s.shed_total());
    return out;
  });

  threads_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() { shutdown(); }

const LaneConfig& Executor::lane_config(std::size_t lane) const {
  switch (static_cast<Lane>(lane)) {
    case Lane::kControl:
      return config_.control;
    case Lane::kEvent:
      return config_.event;
    case Lane::kBulk:
      return config_.bulk;
  }
  return config_.event;
}

std::size_t Executor::physical_lane(Lane lane) const {
  return config_.single_lane ? static_cast<std::size_t>(Lane::kEvent)
                             : static_cast<std::size_t>(lane);
}

void Executor::note_shed(Lane lane) {
  stats_[static_cast<std::size_t>(lane)].shed.fetch_add(
      1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) shed_counter_->add();
}

Status Executor::submit(Lane lane, std::function<void()> fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/true);
}

Status Executor::try_submit(Lane lane, std::function<void()> fn) {
  return admit(lane, std::move(fn), 0, /*may_block=*/false);
}

Status Executor::submit_coalesced(Lane lane, std::uint64_t key,
                                  std::function<void()> fn) {
  if (key == 0) {
    return {StatusCode::kInvalidArgument, "coalesce key must be non-zero"};
  }
  // Coalescing producers are delivery/beat threads: never park them.
  return admit(lane, std::move(fn), key, /*may_block=*/false);
}

Status Executor::admit(Lane lane, std::function<void()> fn, std::uint64_t key,
                       bool may_block) {
  stats_[static_cast<std::size_t>(lane)].submitted.fetch_add(
      1, std::memory_order_relaxed);
  const std::size_t idx = physical_lane(lane);
  const LaneConfig& cfg = lane_config(idx);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) {
      return {StatusCode::kAborted, "executor shutting down"};
    }
    LaneState& state = lanes_[idx];
    if (key != 0) {
      auto it = state.coalesce_index.find(key);
      if (it != state.coalesce_index.end()) {
        // Idempotent work already queued: the fresh fn supersedes it in
        // place — same queue position, no extra capacity.
        it->second->fn = std::move(fn);
        stats_[static_cast<std::size_t>(lane)].coalesced.fetch_add(
            1, std::memory_order_relaxed);
        return Status::ok();
      }
    }
    if (cfg.capacity > 0 && state.queue.size() >= cfg.capacity) {
      if (may_block && cfg.policy == OverloadPolicy::kBlock) {
        const bool space = space_cv_.wait_for(lock, cfg.block_deadline, [&] {
          return closed_ || state.queue.size() < cfg.capacity;
        });
        if (closed_) {
          return {StatusCode::kAborted, "executor shutting down"};
        }
        if (!space) {
          note_shed(lane);
          return {StatusCode::kResourceExhausted,
                  std::string("lane full past block deadline: ") +
                      lane_name(lane)};
        }
      } else {
        note_shed(lane);
        return {StatusCode::kResourceExhausted,
                std::string("lane overloaded: ") + lane_name(lane)};
      }
    }
    Task task;
    task.fn = std::move(fn);
    task.key = key;
    task.origin = lane;
    if (obs::metrics_enabled()) {
      task.enqueued_us = obs::now_us();
      depth_gauge_[idx]->add(1);
    }
    state.queue.push_back(std::move(task));
    if (key != 0) state.coalesce_index[key] = &state.queue.back();
  }
  // Heterogeneous waiters (control-reserve vs general workers) share one cv;
  // notify_all so a reserved worker cannot swallow a general worker's wakeup.
  work_cv_.notify_all();
  return Status::ok();
}

std::size_t Executor::pick_lane_locked(std::size_t worker_index) const {
  const bool control_only =
      !config_.single_lane && worker_index < config_.control_reserve;
  const std::size_t last =
      control_only ? static_cast<std::size_t>(Lane::kControl) : kLaneCount - 1;
  for (std::size_t lane = 0; lane <= last; ++lane) {
    const LaneState& state = lanes_[lane];
    if (state.queue.empty()) continue;
    const LaneConfig& cfg = lane_config(lane);
    if (!config_.single_lane && cfg.width > 0 && state.active >= cfg.width) {
      continue;
    }
    return lane;
  }
  return kLaneCount;
}

void Executor::worker_loop(std::size_t worker_index) {
  const bool control_only =
      !config_.single_lane && worker_index < config_.control_reserve;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    const std::size_t lane = pick_lane_locked(worker_index);
    if (lane == kLaneCount) {
      if (closed_) {
        // Exit only when every queue in this worker's scope is drained; a
        // width-saturated lane still has an owner that will finish it.
        bool drained = lanes_[static_cast<std::size_t>(Lane::kControl)]
                           .queue.empty();
        if (!control_only) {
          for (std::size_t i = 0; i < kLaneCount; ++i) {
            drained = drained && lanes_[i].queue.empty();
          }
        }
        if (drained) return;
      }
      work_cv_.wait(lock);
      continue;
    }

    LaneState& state = lanes_[lane];
    const LaneConfig& cfg = lane_config(lane);
    const std::size_t take = std::min(
        cfg.batch > 0 ? cfg.batch : state.queue.size(), state.queue.size());
    std::vector<Task> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      Task& front = state.queue.front();
      if (front.key != 0) state.coalesce_index.erase(front.key);
      batch.push_back(std::move(front));
      state.queue.pop_front();
    }
    state.active++;
    lock.unlock();
    // Capacity was freed: wake kBlock producers parked on this lane.
    space_cv_.notify_all();

    if (obs::metrics_enabled()) {
      depth_gauge_[lane]->add(-static_cast<std::int64_t>(batch.size()));
      const std::int64_t now = obs::now_us();
      for (const Task& task : batch) {
        if (task.enqueued_us > 0) {
          wait_us_[lane]->record_us(now - task.enqueued_us);
        }
      }
    }
    for (Task& task : batch) {
      task.fn();
      stats_[static_cast<std::size_t>(task.origin)].executed.fetch_add(
          1, std::memory_order_relaxed);
    }

    lock.lock();
    state.active--;
    if (!state.queue.empty()) {
      // A width slot opened with work still queued: wake a sleeper to claim
      // it (we loop around ourselves too, but may pick a higher lane).
      lock.unlock();
      work_cv_.notify_all();
      lock.lock();
    }
  }
}

void Executor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

bool Executor::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t Executor::lane_depth(Lane lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_[physical_lane(lane)].queue.size();
}

ExecutorStats Executor::stats() const {
  ExecutorStats out;
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    out.lanes[i].submitted =
        stats_[i].submitted.load(std::memory_order_relaxed);
    out.lanes[i].executed = stats_[i].executed.load(std::memory_order_relaxed);
    out.lanes[i].shed = stats_[i].shed.load(std::memory_order_relaxed);
    out.lanes[i].coalesced =
        stats_[i].coalesced.load(std::memory_order_relaxed);
  }
  return out;
}

void Executor::reset_stats() {
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    stats_[i].submitted.store(0, std::memory_order_relaxed);
    stats_[i].executed.store(0, std::memory_order_relaxed);
    stats_[i].shed.store(0, std::memory_order_relaxed);
    stats_[i].coalesced.store(0, std::memory_order_relaxed);
  }
}

}  // namespace doct::exec
