// Unified per-node executor with fixed priority lanes and bounded queues.
//
// The paper's §7 argument for a master handler thread is an execution-
// substrate argument: who runs event work, and at what cost, decides whether
// asynchronous events are usable at all.  Before this layer the substrate was
// fragmented — RPC servers, the master handler, the surrogate pool each owned
// an ad-hoc ThreadPool over an *unbounded* BlockingQueue, so an event storm
// could starve TERMINATE/NODE_DOWN control traffic and grow memory without
// bound.  This executor is the one well-defined substrate per node:
//
//   kControl  TERMINATE/NODE_DOWN/heartbeat reactions, RPC replies, census.
//             Serviced first, always; `control_reserve` workers never touch
//             lower lanes, so control work makes progress even when every
//             general worker is parked inside a blocking method.
//   kEvent    Passive-object handler dispatch (§4.3).  Lane width is the §7
//             knob: width 1 IS the master handler thread (serial dispatch,
//             zero thread creation); width N trades serialization for
//             parallel handler execution.  kThreadPerEvent (a fresh OS
//             thread per event) remains in the events layer as the costly
//             ablation the paper argues against.
//   kBulk     Blocking RPC method bodies (object invocations, DSM page
//             traffic, pager installs), surrogate exception chains, monitor
//             snapshot building — throughput work that may block on nested
//             calls and must never occupy the control lane.
//
// Every lane is a BOUNDED queue with a per-lane overload policy:
//
//   kBlock      producer waits (with deadline) for space — backpressure
//               propagates to the submitting thread.
//   kShedNewest admission fails with kResourceExhausted — the caller turns
//               that into an error for the raiser, so raise_and_wait fails
//               fast instead of hanging behind an unbounded backlog.
//   kCoalesce   keyed idempotent work (census replies, peer-down marks)
//               replaces a queued task with the same key in place; unkeyed
//               overflow sheds like kShedNewest.
//
// QUEUEING SUBSTRATE (DOCT_QUEUE=lockfree, the default): producers do not
// take the scheduler mutex at all.  Admission is one fetch_add on the lane's
// depth word (exact bounded admission: fetch_add serializes, so exactly
// `capacity` producers win), the task rides a pooled intrusive node onto the
// lane's lock-free MPSC intake chain (one CAS), and at most ONE wakeup is
// paid per burst (wake_pending_ gate).  Workers — under the scheduler mutex
// they already needed for reservations — splice the intake chains into the
// staging lists in O(batch) and run the same pick scan as before.  Task
// bodies are SmallTask (fixed inline buffer, no heap), task nodes are pooled
// and recycled, so a warmed submit→execute round trip performs zero heap
// allocations.  DOCT_QUEUE=locked keeps the previous mutex+condvar admission
// as the ablation/fallback; scheduling semantics (priorities, widths,
// reservations, per-key FIFO) are identical in both modes.
//
// Workers batch-drain lanes whose tasks are non-blocking (the control lane
// by default): one lock round-trip takes up to `batch` tasks, and every
// grab re-checks lanes in priority order, so a backlog on a lower lane can
// delay control work by at most one grab.  try_submit() never blocks
// regardless of policy — delivery/interrupt paths use it so the simulated
// NIC thread is never parked on a full lane.
//
// RESERVATION SCHEDULING (what makes event-lane width > 1 safe): a task may
// carry a set of reservation keys — opaque 64-bit identities of the state it
// will touch (target object, thread context, serial event-group).  A worker
// admits a task to execution only when every key is unclaimed; while it
// runs, its keys are claimed executor-wide (across lanes: a control-class
// and an ordinary event on the same object still serialize).  Conflicting
// tasks stay queued in per-key FIFO order: the pick scan shadow-claims the
// keys of every task it skips, so a later task sharing a key with an
// earlier blocked one can never overtake it — same-target delivery order is
// exactly the width-1 order, which is the SCOOP-style ownership argument
// for lifting the §7 master-handler serialization.  Tasks with disjoint
// keys (or none) run in parallel up to the lane width.  With
// `reservations = false` the safety mechanism is gone, so the executor
// clamps the event lane back to width 1 — the ablation arm stays serial
// rather than racy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/inline.hpp"
#include "common/mpsc_queue.hpp"
#include "common/result.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace doct::exec {

// Identity of a piece of state a task will touch (target object, thread
// context, serial event-group).  Opaque to the executor; derived by the
// events layer (events::reservation_key).  0 is not a valid key.
using ReservationKey = std::uint64_t;
// Inline small-vector: real tasks carry 1–3 keys, so key sets never touch
// the heap on the delivery fast path.
using ReservationSet = common::InlineVec<ReservationKey, 4>;

enum class Lane : std::uint8_t { kControl = 0, kEvent = 1, kBulk = 2 };
inline constexpr std::size_t kLaneCount = 3;

[[nodiscard]] const char* lane_name(Lane lane);

enum class OverloadPolicy : std::uint8_t {
  kBlock = 0,       // producer waits for space, up to block_deadline
  kShedNewest = 1,  // admission fails fast with kResourceExhausted
  kCoalesce = 2,    // keyed tasks replace in place; unkeyed overflow sheds
};

struct LaneConfig {
  // Queued-task bound; 0 = unbounded (admission never fails on capacity).
  std::size_t capacity = 4096;
  OverloadPolicy policy = OverloadPolicy::kBlock;
  // kBlock only: how long a producer waits for space before shedding anyway.
  Duration block_deadline = std::chrono::seconds(5);
  // Max workers concurrently executing tasks from this lane; 0 = no cap.
  // Event-lane width 1 reproduces the §7 master handler thread exactly.
  std::size_t width = 0;
  // Max tasks one worker grabs per lock round-trip.  A batch runs to
  // completion on ONE worker, so batching above 1 is only safe for lanes
  // whose tasks never block: a parked task would strand the rest of its
  // batch while other workers sit idle.  Control work (response
  // fulfillment, census replies) is non-blocking by contract and batches;
  // event/bulk lanes carry potentially-blocking handler and method bodies
  // and default to 1.
  std::size_t batch = 1;
};

struct ExecutorConfig {
  std::size_t workers = 6;
  // Workers that service ONLY the control lane (parked when it is empty).
  // Guarantees control progress even when every general worker is blocked
  // inside a bulk method.  Clamped to workers - 1.
  std::size_t control_reserve = 1;
  // Ablation: one FIFO queue, no priorities, no reserve, no width caps —
  // the pre-refactor "one pool per purpose, first come first served" world
  // collapsed into a single queue.  E10 demonstrates the starvation.
  bool single_lane = false;
  // Reservation scheduling (the mechanism that makes event.width > 1 safe).
  // When false, reserved submissions still queue FIFO but the event lane is
  // clamped to width 1 — the ablation arm must stay serial, not racy.
  // DOCT_RESERVATIONS=on|off overrides at construction; DOCT_EVENT_WIDTH=N
  // likewise overrides event.width — the CI width-ablation lane re-runs the
  // suites across the {width} x {reservations} matrix without recompiling.
  bool reservations = true;
  // Lane queueing backend; defaults to DOCT_QUEUE (lockfree unless
  // DOCT_QUEUE=locked).  Tests pin it explicitly to exercise both.
  common::QueueBackend queue = common::queue_backend();
  LaneConfig control{.capacity = 4096,
                     .policy = OverloadPolicy::kBlock,
                     .batch = 32};
  // Raisers must fail fast, not hang: §5.3's raise/raise_and_wait return a
  // status, and the overload story depends on it being delivered promptly.
  LaneConfig event{.capacity = 4096,
                   .policy = OverloadPolicy::kShedNewest,
                   .width = 1};
  LaneConfig bulk{.capacity = 4096, .policy = OverloadPolicy::kBlock};
};

struct LaneStatsSnapshot {
  std::uint64_t submitted = 0;  // admissions attempted
  std::uint64_t executed = 0;   // tasks run to completion
  std::uint64_t shed = 0;       // admissions refused (capacity/deadline)
  std::uint64_t coalesced = 0;  // keyed tasks replaced in place
};

struct ExecutorStats {
  LaneStatsSnapshot lanes[kLaneCount];
  // Reservation scheduling (executor-wide, keys span lanes).
  std::uint64_t reservation_acquired = 0;   // tasks run holding >= 1 key
  std::uint64_t reservation_conflicts = 0;  // tasks that waited on a key
  // Producer->worker wakeups actually paid vs. admissions (lockfree mode):
  // the coalescing invariant says wakeups <= bursts, not pushes.
  std::uint64_t wakeups = 0;
  [[nodiscard]] std::uint64_t shed_total() const {
    std::uint64_t total = 0;
    for (const auto& lane : lanes) total += lane.shed;
    return total;
  }
};

class Executor {
 public:
  // `name` prefixes the per-node metrics source ("node3.exec"); `node` tags
  // reservation-wait spans with the owning node's Perfetto track.
  explicit Executor(ExecutorConfig config = {}, std::string name = "exec",
                    std::uint64_t node = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Admits a task under the lane's overload policy.  kBlock lanes may park
  // the caller up to block_deadline; on a full lane the task is shed and
  // kResourceExhausted returned.  kAborted after shutdown().  The callable
  // is stored INLINE (SmallTask): captures up to common::kSmallTaskSize
  // bytes never touch the heap, larger ones fail to compile.
  Status submit(Lane lane, common::SmallTask fn);

  // Never blocks: a full lane sheds immediately regardless of policy.  For
  // producers on delivery/interrupt paths that must not park.
  Status try_submit(Lane lane, common::SmallTask fn);

  // Reservation-scheduled admission: the task runs only when every key in
  // `reservations` is unclaimed executor-wide, and holds all of them while
  // it runs.  Tasks sharing a key execute in admission (FIFO) order; tasks
  // with disjoint keys run in parallel up to the lane width.  Keys must be
  // non-zero (events::reservation_key guarantees it); an empty set behaves
  // exactly like the unreserved overloads.
  Status submit(Lane lane, ReservationSet reservations, common::SmallTask fn);
  Status try_submit(Lane lane, ReservationSet reservations,
                    common::SmallTask fn);

  // Keys held by the task currently executing on THIS worker thread, or
  // nullptr outside one.  Lets nested submissions (surrogate exception
  // chains) inherit the parent's reservations.
  [[nodiscard]] static const ReservationSet* current_reservations();

  // Idempotent keyed admission: if a task with `key` is already queued in
  // the lane, the new fn replaces it in place (same queue position, no
  // capacity consumed) and the call reports Ok.  key must be non-zero.
  // Keyed admission always takes the scheduler mutex (supersede-in-place
  // needs a consistent index view); coalescing producers are beat threads,
  // never the hot path.
  Status submit_coalesced(Lane lane, std::uint64_t key, common::SmallTask fn);

  // Closes admission, drains every queued task (higher lanes first), joins
  // all workers.  Idempotent.  Queued work runs to completion so callers
  // can rely on ThreadPool-drain semantics at teardown.
  void shutdown();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t lane_depth(Lane lane) const;
  [[nodiscard]] const ExecutorConfig& config() const { return config_; }
  [[nodiscard]] std::size_t workers() const { return threads_.size(); }

  [[nodiscard]] ExecutorStats stats() const;
  void reset_stats();

  // Reservation keys currently claimed by running tasks (executor-wide).
  [[nodiscard]] std::size_t claimed_keys() const;

  // Telemetry sampling hook: records each lane's live queue depth and the
  // claimed-reservation-key count into "exec.lane_depth_sampled.<lane>" /
  // "exec.reservation_claimed_sampled" histograms (gauges only show the
  // instant; the sampled histograms give the collector a depth
  // distribution), and drops a lane-depth breadcrumb into the flight
  // recorder.  Called by the cluster collector at its pull period — cheap
  // enough for 100ms periods, not meant for hot paths.
  void sample_telemetry();

 private:
  // Pooled intrusive task node: rides the MPSC intake chain (MpscNode) and
  // the doubly-linked staging list (qprev/qnext).  Recycled through an
  // MPMC freelist ring, so a warmed executor admits without allocating.
  struct Task : common::MpscNode {
    common::SmallTask fn;
    std::uint64_t key = 0;         // 0 = not coalescible
    std::int64_t enqueued_us = 0;  // admission time (metrics on)
    Lane origin = Lane::kEvent;    // stats attribution under single_lane
    ReservationSet keys;           // reservation keys; empty = unreserved
    // Reservation-wait bookkeeping: set the first time the pick scan skips
    // this task over a claimed key; feeds the blocked-time histogram and
    // the "resv_wait" Perfetto span.
    bool conflicted = false;
    std::int64_t blocked_since_us = 0;   // obs on only
    obs::TraceContext trace;             // admission-site trace (tracing on)
    Task* qprev = nullptr;
    Task* qnext = nullptr;
  };

  // Intrusive FIFO staging list: stable Task pointers (coalesce_index), O(1)
  // push/erase, zero allocation — replaces deque<unique_ptr<Task>>.
  struct TaskList {
    Task* head = nullptr;
    Task* tail = nullptr;
    void push_back(Task* task);
    void erase(Task* task);
    [[nodiscard]] bool empty() const { return head == nullptr; }
  };

  struct LaneState {
    common::MpscChain intake;  // lockfree producers land here
    TaskList staging;          // scheduler's view (pick scan), under mu_
    std::unordered_map<std::uint64_t, Task*> coalesce_index;
    std::size_t active = 0;  // workers currently executing this lane
    // Admitted-but-not-picked count (intake + staging).  The admission
    // bound: fetch_add serializes producers, so the capacity check is
    // exact without a lock.
    std::atomic<std::uint64_t> depth{0};
  };

  struct AtomicLaneStats {
    common::PaddedCounter submitted;
    common::PaddedCounter executed;
    common::PaddedCounter shed;
    common::PaddedCounter coalesced;
  };

  Status admit(Lane lane, common::SmallTask fn, std::uint64_t key,
               bool may_block, ReservationSet reservations = {});
  Status admit_locked(Lane lane, common::SmallTask fn, std::uint64_t key,
                      bool may_block, ReservationSet reservations);
  [[nodiscard]] Task* alloc_task();
  void recycle_task(Task* task);
  // Producer-side wakeup: at most one notify per burst (wake_pending_).
  void wake_workers();
  void wake_workers_locked();
  // Splices every lane's intake chain into its staging list.  Caller holds
  // mu_; runs at the top of each worker scheduling round.
  void drain_intakes_locked();
  void worker_loop(std::size_t worker_index);
  // Scans the highest-priority eligible lane and moves up to `batch`
  // runnable tasks into `out`, claiming their reservation keys.  Tasks
  // whose keys are claimed (or shadow-claimed by an earlier skipped task —
  // the per-key FIFO guarantee) are left in place.  Returns the lane index
  // or kLaneCount when nothing is runnable.  Caller holds mu_.
  [[nodiscard]] std::size_t take_batch_locked(std::size_t worker_index,
                                              std::vector<Task*>& out);
  // Records blocked-on-reservation time (histogram + "resv_wait" span) for
  // a task the pick scan had skipped at least once.
  void note_reservation_wait(const Task& task, Lane lane);
  [[nodiscard]] const LaneConfig& lane_config(std::size_t lane) const;
  // single_lane funnels every admission into one physical queue.
  [[nodiscard]] std::size_t physical_lane(Lane lane) const;
  void note_shed(Lane lane);

  ExecutorConfig config_;
  SteadyClock clock_;
  std::uint64_t node_ = 0;
  bool lockfree_ = true;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for eligible work
  std::condition_variable space_cv_;  // kBlock producers wait for capacity
  LaneState lanes_[kLaneCount];
  // Reservation keys held by running tasks.  Executor-wide (not per lane):
  // a control-class and an ordinary event on the same object serialize.
  // Open-addressing table: no per-key node allocations on the pick scan.
  common::FixedHashSet claimed_;
  std::atomic<bool> closed_{false};

  // Producer->worker wakeup coalescing: producers notify only on the
  // false->true transition; workers clear it before every rescan.
  std::atomic<bool> wake_pending_{false};
  common::PaddedCounter wakeups_;

  common::MpmcRing<Task*> task_pool_{1024};

  AtomicLaneStats stats_[kLaneCount];
  common::PaddedCounter reservation_acquired_;
  common::PaddedCounter reservation_conflicts_;

  std::vector<std::thread> threads_;

  // Resolved once; hot paths record without a registry lookup.
  obs::Gauge* depth_gauge_[kLaneCount] = {};
  obs::Histogram* wait_us_[kLaneCount] = {};
  obs::Histogram* depth_sampled_[kLaneCount] = {};
  obs::ShardedCounter* shed_counter_ = nullptr;
  obs::Histogram* reservation_blocked_us_ = nullptr;
  obs::ShardedCounter* reservation_conflict_counter_ = nullptr;
  obs::Histogram* claimed_sampled_ = nullptr;
  obs::Gauge* claimed_gauge_ = nullptr;
  // Last member: unregisters before the stats it reads are destroyed.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace doct::exec
