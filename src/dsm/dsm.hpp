// Page-based distributed shared memory.
//
// The DO/CT environment (§2) runs object invocations over DSM or RPC; this
// module is the DSM substrate.  It implements a directory-based
// single-writer / multiple-reader invalidation protocol with sequential
// consistency:
//
//   * every segment has a HOME node holding the per-page directory
//     (current owner + copyset),
//   * a read miss fetches a shared copy via the home (requester → home →
//     owner → data), adding the requester to the copyset,
//   * a write miss transfers ownership and invalidates every copy before the
//     write proceeds.
//
// Since a user-space simulation cannot take real MMU faults, access is via
// explicit read()/write() calls that check page presence — a miss *is* the
// page fault, and is reported to an optional FaultHook before the default
// protocol (or instead of it, for user-level-pager segments).  This is the
// attachment point for §6.4's external pagers: the events layer raises a
// VM_FAULT system event from the hook, a buddy handler supplies the page via
// install_page(), and the faulting thread resumes — "bypassing the strict
// consistency imposed by the underlying sequentially consistent DSM".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "rpc/rpc.hpp"

namespace doct::dsm {

enum class Access : std::uint8_t { kRead = 0, kWrite = 1 };

enum class PageState : std::uint8_t {
  kInvalid = 0,  // no local copy
  kShared,       // read-only copy; owner may be elsewhere
  kOwned,        // exclusive, writable
};

struct FaultInfo {
  SegmentId segment;
  std::size_t page = 0;
  Access access = Access::kRead;
  NodeId node;  // node where the fault occurred
};

// Returns the page contents to install, or an error to fail the access.
// For kDefault segments the hook is observational (may return nullopt to let
// the coherence protocol proceed); for kUserPaged segments the hook IS the
// pager and must produce the page.
using FaultHook =
    std::function<Result<std::optional<std::vector<std::uint8_t>>>(const FaultInfo&)>;

enum class SegmentMode : std::uint8_t {
  kDefault = 0,  // kernel pager: directory coherence protocol
  kUserPaged,    // user-level pager: faults handled by the FaultHook (§6.4)
};

struct DsmConfig {
  std::size_t page_size = 4096;
};

struct DsmStats {
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t pages_fetched = 0;       // pages received from remote owners
  std::uint64_t invalidations_sent = 0;  // invalidation fan-out (as home)
  std::uint64_t invalidations_received = 0;
  std::uint64_t ownership_transfers = 0;  // granted while home
  std::uint64_t user_pager_fills = 0;     // pages supplied by install_page
};

class DsmEngine {
 public:
  DsmEngine(rpc::RpcEndpoint& rpc, NodeId self, DsmConfig config = {});
  ~DsmEngine();

  DsmEngine(const DsmEngine&) = delete;
  DsmEngine& operator=(const DsmEngine&) = delete;

  // Creates a segment homed (and initially fully owned) at this node.
  Status create_segment(SegmentId segment, std::size_t num_pages,
                        SegmentMode mode = SegmentMode::kDefault);
  // Declares a remote segment so this node can fault pages in from `home`.
  Status attach_segment(SegmentId segment, NodeId home, std::size_t num_pages,
                        SegmentMode mode = SegmentMode::kDefault);

  [[nodiscard]] Result<std::vector<std::uint8_t>> read(SegmentId segment,
                                                       std::size_t offset,
                                                       std::size_t length);
  Status write(SegmentId segment, std::size_t offset,
               std::span<const std::uint8_t> data);

  // User-level pager API (§6.4).
  Status set_fault_hook(SegmentId segment, FaultHook hook);
  Status clear_fault_hook(SegmentId segment);
  // Supplies a page (used by pagers; also usable by tests to pre-populate).
  Status install_page(SegmentId segment, std::size_t page,
                      std::vector<std::uint8_t> data, PageState state);
  // Drops a local copy (pager-directed eviction).
  Status evict_page(SegmentId segment, std::size_t page);

  [[nodiscard]] PageState page_state(SegmentId segment, std::size_t page) const;
  [[nodiscard]] DsmStats stats() const;
  [[nodiscard]] std::size_t page_size() const { return config_.page_size; }

 private:
  struct PageFrame {
    PageState state = PageState::kInvalid;
    std::vector<std::uint8_t> data;
    // Bumped on every invalidation/eviction; lets a faulting thread detect an
    // invalidate that slipped in between the home's grant and the local
    // install, and retry (sequential-consistency safeguard).
    std::uint64_t version = 0;
  };

  struct DirectoryEntry {  // kept by the home node, one per page
    NodeId owner;
    std::set<NodeId> copyset;
  };

  struct Segment {
    NodeId home;
    std::size_t num_pages = 0;
    SegmentMode mode = SegmentMode::kDefault;
    std::vector<PageFrame> frames;
    std::vector<DirectoryEntry> directory;  // non-empty only at the home
    FaultHook hook;
    // Serializes home-side protocol operations (held across the remote
    // fetch/invalidate legs, during which mu_ is released).  unique_ptr so
    // Segment stays movable.
    std::unique_ptr<std::mutex> home_mu = std::make_unique<std::mutex>();
  };

  // RPC method implementations (registered as dsm.*).
  Result<rpc::Payload> rpc_get_page(NodeId caller, Reader& args);
  Result<rpc::Payload> rpc_fetch(NodeId caller, Reader& args);
  Result<rpc::Payload> rpc_invalidate(NodeId caller, Reader& args);

  // Ensures the page is locally present with at least `access` rights.
  Status fault_in(Segment& segment, SegmentId id, std::size_t page,
                  Access access, std::unique_lock<std::mutex>& lock);

  Segment* find_segment(SegmentId id);
  const Segment* find_segment(SegmentId id) const;

  rpc::RpcEndpoint& rpc_;
  NodeId self_;
  DsmConfig config_;

  mutable std::mutex mu_;
  std::unordered_map<SegmentId, Segment> segments_;
  DsmStats stats_;
};

}  // namespace doct::dsm
