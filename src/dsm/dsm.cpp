#include "dsm/dsm.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "common/log.hpp"
#include "common/serialize.hpp"

namespace doct::dsm {

namespace {

enum class Downgrade : std::uint8_t { kToShared = 0, kToInvalid = 1 };

constexpr const char* kGetPage = "dsm.get_page";
constexpr const char* kFetch = "dsm.fetch";
constexpr const char* kInvalidate = "dsm.invalidate";

}  // namespace

DsmEngine::DsmEngine(rpc::RpcEndpoint& rpc, NodeId self, DsmConfig config)
    : rpc_(rpc), self_(self), config_(config) {
  rpc_.register_method(kGetPage, [this](NodeId caller, Reader& args) {
    return rpc_get_page(caller, args);
  });
  // fetch/invalidate never block, so they run inline on the delivery thread
  // (kFast): this guarantees they complete even while every pool worker is
  // parked inside a blocking get_page.
  rpc_.register_method(
      kFetch,
      [this](NodeId caller, Reader& args) { return rpc_fetch(caller, args); },
      rpc::MethodClass::kFast);
  rpc_.register_method(
      kInvalidate,
      [this](NodeId caller, Reader& args) {
        return rpc_invalidate(caller, args);
      },
      rpc::MethodClass::kFast);
}

DsmEngine::~DsmEngine() {
  rpc_.unregister_method(kGetPage);
  rpc_.unregister_method(kFetch);
  rpc_.unregister_method(kInvalidate);
}

DsmEngine::Segment* DsmEngine::find_segment(SegmentId id) {
  auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : &it->second;
}

const DsmEngine::Segment* DsmEngine::find_segment(SegmentId id) const {
  auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : &it->second;
}

Status DsmEngine::create_segment(SegmentId segment, std::size_t num_pages,
                                 SegmentMode mode) {
  if (!segment.valid() || num_pages == 0) {
    return {StatusCode::kInvalidArgument, "segment id and page count required"};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (segments_.contains(segment)) {
    return {StatusCode::kAlreadyExists, segment.to_string()};
  }
  Segment s;
  s.home = self_;
  s.num_pages = num_pages;
  s.mode = mode;
  s.frames.resize(num_pages);
  if (mode == SegmentMode::kDefault) {
    // The home initially owns every page, zero-filled.
    s.directory.resize(num_pages);
    for (std::size_t p = 0; p < num_pages; ++p) {
      s.directory[p].owner = self_;
      s.frames[p].state = PageState::kOwned;
      s.frames[p].data.assign(config_.page_size, 0);
    }
  }
  segments_.emplace(segment, std::move(s));
  return Status::ok();
}

Status DsmEngine::attach_segment(SegmentId segment, NodeId home,
                                 std::size_t num_pages, SegmentMode mode) {
  if (!segment.valid() || num_pages == 0) {
    return {StatusCode::kInvalidArgument, "segment id and page count required"};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (segments_.contains(segment)) {
    return {StatusCode::kAlreadyExists, segment.to_string()};
  }
  Segment s;
  s.home = home;
  s.num_pages = num_pages;
  s.mode = mode;
  s.frames.resize(num_pages);
  segments_.emplace(segment, std::move(s));
  return Status::ok();
}

Status DsmEngine::set_fault_hook(SegmentId segment, FaultHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  Segment* s = find_segment(segment);
  if (s == nullptr) return {StatusCode::kNoSuchObject, segment.to_string()};
  s->hook = std::move(hook);
  return Status::ok();
}

Status DsmEngine::clear_fault_hook(SegmentId segment) {
  std::lock_guard<std::mutex> lock(mu_);
  Segment* s = find_segment(segment);
  if (s == nullptr) return {StatusCode::kNoSuchObject, segment.to_string()};
  s->hook = nullptr;
  return Status::ok();
}

Status DsmEngine::install_page(SegmentId segment, std::size_t page,
                               std::vector<std::uint8_t> data,
                               PageState state) {
  std::lock_guard<std::mutex> lock(mu_);
  Segment* s = find_segment(segment);
  if (s == nullptr) return {StatusCode::kNoSuchObject, segment.to_string()};
  if (page >= s->num_pages) {
    return {StatusCode::kInvalidArgument, "page out of range"};
  }
  data.resize(config_.page_size, 0);
  s->frames[page].data = std::move(data);
  s->frames[page].state = state;
  stats_.user_pager_fills++;
  return Status::ok();
}

Status DsmEngine::evict_page(SegmentId segment, std::size_t page) {
  std::lock_guard<std::mutex> lock(mu_);
  Segment* s = find_segment(segment);
  if (s == nullptr) return {StatusCode::kNoSuchObject, segment.to_string()};
  if (page >= s->num_pages) {
    return {StatusCode::kInvalidArgument, "page out of range"};
  }
  s->frames[page].state = PageState::kInvalid;
  s->frames[page].data.clear();
  s->frames[page].version++;
  return Status::ok();
}

PageState DsmEngine::page_state(SegmentId segment, std::size_t page) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Segment* s = find_segment(segment);
  if (s == nullptr || page >= s->num_pages) return PageState::kInvalid;
  return s->frames[page].state;
}

DsmStats DsmEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --- Fault path -------------------------------------------------------------

Status DsmEngine::fault_in(Segment& segment, SegmentId id, std::size_t page,
                           Access access, std::unique_lock<std::mutex>& lock) {
  // Invariant: `lock` (on mu_) is held on entry and on every exit; it is
  // released around hook invocation and RPC (CP.22).
  while (true) {
    PageFrame& frame = segment.frames[page];
    const bool satisfied = access == Access::kRead
                               ? frame.state != PageState::kInvalid
                               : frame.state == PageState::kOwned;
    if (satisfied) return Status::ok();

    if (access == Access::kRead) {
      stats_.read_faults++;
    } else {
      stats_.write_faults++;
    }

    const FaultInfo info{id, page, access, self_};
    FaultHook hook = segment.hook;
    const SegmentMode mode = segment.mode;
    const NodeId home = segment.home;

    if (hook) {
      lock.unlock();
      auto supplied = hook(info);
      lock.lock();
      if (!supplied.is_ok()) return supplied.status();
      if (supplied.value().has_value()) {
        // The pager produced the page; install with the needed rights.
        auto data = std::move(*supplied.value());
        data.resize(config_.page_size, 0);
        segment.frames[page].data = std::move(data);
        segment.frames[page].state = access == Access::kWrite
                                         ? PageState::kOwned
                                         : PageState::kShared;
        stats_.user_pager_fills++;
        continue;  // re-check: another thread may have raced us
      }
      if (mode == SegmentMode::kUserPaged) {
        // The hook may have satisfied the fault out-of-band through
        // install_page (e.g. a remote pager raced the reply); re-check once
        // before failing.
        if (access == Access::kRead
                ? segment.frames[page].state != PageState::kInvalid
                : segment.frames[page].state == PageState::kOwned) {
          continue;
        }
        return {StatusCode::kNoHandler,
                "user pager declined to supply page " + std::to_string(page)};
      }
      // kDefault with observational hook: fall through to the protocol.
    } else if (mode == SegmentMode::kUserPaged) {
      return {StatusCode::kNoHandler,
              "user-paged segment has no fault hook: " + id.to_string()};
    }

    // Default kernel pager: ask the home for the page.
    const std::uint64_t version_before = segment.frames[page].version;
    Writer w;
    w.put(id);
    w.put(static_cast<std::uint64_t>(page));
    w.put(access);
    lock.unlock();
    auto reply = rpc_.call(home, kGetPage, std::move(w).take());
    lock.lock();
    if (!reply.is_ok()) return reply.status();
    PageFrame& target = segment.frames[page];
    if (target.version != version_before) {
      // An invalidation overtook the grant (the home already reassigned the
      // page to a writer).  Installing now would expose stale data; retry.
      continue;
    }
    Reader r(std::move(reply).value());
    const bool has_data = r.get_bool();
    if (has_data) {
      auto data = r.get_bytes();
      target.data = std::move(data);
      target.data.resize(config_.page_size, 0);
    } else if (target.state == PageState::kInvalid) {
      // Permission-only grant (we are the recorded owner) but our copy is
      // gone: the sole copy of the data has been lost.
      return {StatusCode::kInternal,
              "ownership grant without data for page " + std::to_string(page)};
    }
    target.state =
        access == Access::kWrite ? PageState::kOwned : PageState::kShared;
    stats_.pages_fetched++;
    return Status::ok();
  }
}

Result<std::vector<std::uint8_t>> DsmEngine::read(SegmentId segment,
                                                  std::size_t offset,
                                                  std::size_t length) {
  std::unique_lock<std::mutex> lock(mu_);
  Segment* s = find_segment(segment);
  if (s == nullptr) return Status{StatusCode::kNoSuchObject, segment.to_string()};
  if (offset + length > s->num_pages * config_.page_size) {
    return Status{StatusCode::kInvalidArgument, "read out of segment bounds"};
  }
  std::vector<std::uint8_t> out;
  out.reserve(length);
  std::size_t cursor = offset;
  std::size_t remaining = length;
  while (remaining > 0) {
    const std::size_t page = cursor / config_.page_size;
    const std::size_t in_page = cursor % config_.page_size;
    const std::size_t chunk = std::min(remaining, config_.page_size - in_page);
    const Status fault = fault_in(*s, segment, page, Access::kRead, lock);
    if (!fault.is_ok()) return fault;
    const auto& data = s->frames[page].data;
    out.insert(out.end(), data.begin() + static_cast<long>(in_page),
               data.begin() + static_cast<long>(in_page + chunk));
    cursor += chunk;
    remaining -= chunk;
  }
  return out;
}

Status DsmEngine::write(SegmentId segment, std::size_t offset,
                        std::span<const std::uint8_t> data) {
  std::unique_lock<std::mutex> lock(mu_);
  Segment* s = find_segment(segment);
  if (s == nullptr) return {StatusCode::kNoSuchObject, segment.to_string()};
  if (offset + data.size() > s->num_pages * config_.page_size) {
    return {StatusCode::kInvalidArgument, "write out of segment bounds"};
  }
  std::size_t cursor = offset;
  std::size_t written = 0;
  while (written < data.size()) {
    const std::size_t page = cursor / config_.page_size;
    const std::size_t in_page = cursor % config_.page_size;
    const std::size_t chunk =
        std::min(data.size() - written, config_.page_size - in_page);
    const Status fault = fault_in(*s, segment, page, Access::kWrite, lock);
    if (!fault.is_ok()) return fault;
    auto& frame = s->frames[page];
    std::copy(data.begin() + static_cast<long>(written),
              data.begin() + static_cast<long>(written + chunk),
              frame.data.begin() + static_cast<long>(in_page));
    cursor += chunk;
    written += chunk;
  }
  return Status::ok();
}

// --- Home-side protocol ------------------------------------------------------

Result<rpc::Payload> DsmEngine::rpc_get_page(NodeId caller, Reader& args) {
  const auto id = args.get_id<SegmentTag>();
  const auto page = static_cast<std::size_t>(args.get<std::uint64_t>());
  const auto access = args.get<Access>();

  // Serialize the whole protocol action for this segment; individual state
  // accesses still take mu_.  Lock order is always home_mu before mu_.
  std::mutex* home_mu = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Segment* s0 = find_segment(id);
    if (s0 == nullptr || s0->directory.empty()) {
      return Status{StatusCode::kNoSuchObject,
                    "not home for segment " + id.to_string()};
    }
    if (page >= s0->num_pages) {
      return Status{StatusCode::kInvalidArgument, "page out of range"};
    }
    home_mu = s0->home_mu.get();
  }
  std::lock_guard<std::mutex> op_lock(*home_mu);

  std::unique_lock<std::mutex> lock(mu_);
  Segment* s = find_segment(id);
  if (s == nullptr) {
    return Status{StatusCode::kNoSuchObject, id.to_string()};
  }

  // Serialize all protocol actions for this page: we hold mu_ only for
  // directory reads/updates and drop it around remote fetch/invalidate.
  DirectoryEntry& entry = s->directory[page];
  const NodeId owner = entry.owner;
  std::vector<std::uint8_t> page_data;
  // When the requester already owns the page (upgrading a downgraded shared
  // copy back to exclusive), grant permission only — fetching would
  // invalidate the very copy being upgraded.
  bool has_data = owner != caller;

  if (owner == caller) {
    // fall through to the directory update below
  } else if (owner == self_) {
    PageFrame& frame = s->frames[page];
    page_data = frame.data;
    // When the requester is the home itself (self-upgrade after giving out
    // copies), its own frame must be left alone: fault_in installs the grant
    // over it, and bumping the version here would make it retry forever.
    if (caller != self_) {
      if (access == Access::kWrite) {
        frame.state = PageState::kInvalid;
        frame.data.clear();
        frame.version++;
      } else if (frame.state == PageState::kOwned) {
        frame.state = PageState::kShared;
      }
    }
  } else {
    Writer w;
    w.put(id);
    w.put(static_cast<std::uint64_t>(page));
    w.put(access == Access::kWrite ? Downgrade::kToInvalid
                                   : Downgrade::kToShared);
    const rpc::Payload fetch_args = std::move(w).take();
    lock.unlock();
    // Retry while the owner's copy is in transit (grant sent, not yet
    // installed at the owner); bounded so a truly lost grant cannot wedge
    // the home forever.
    Result<rpc::Payload> fetched = rpc_.call(owner, kFetch, fetch_args);
    for (int attempt = 0;
         !fetched.is_ok() &&
         fetched.status().code() == StatusCode::kResourceExhausted &&
         attempt < 2000;
         ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      fetched = rpc_.call(owner, kFetch, fetch_args);
    }
    lock.lock();
    if (!fetched.is_ok()) return fetched.status();
    Reader r(std::move(fetched).value());
    page_data = r.get_bytes();
    // Re-find: the segment map may have rehashed while unlocked.
    s = find_segment(id);
    if (s == nullptr) {
      return Status{StatusCode::kNoSuchObject, id.to_string()};
    }
  }

  DirectoryEntry& dir = s->directory[page];
  if (access == Access::kWrite) {
    // Invalidate every shared copy except the new owner's.
    // The old owner's copy was already invalidated by the kToInvalid fetch;
    // shared copies are invalidated here.
    std::vector<NodeId> victims;
    for (NodeId member : dir.copyset) {
      if (member != caller) victims.push_back(member);
    }
    dir.copyset.clear();
    dir.owner = caller;
    stats_.ownership_transfers++;
    if (!victims.empty()) {
      stats_.invalidations_sent += victims.size();
      lock.unlock();
      for (NodeId victim : victims) {
        if (victim == self_) {
          std::lock_guard<std::mutex> relock(mu_);
          Segment* local = find_segment(id);
          if (local != nullptr) {
            local->frames[page].state = PageState::kInvalid;
            local->frames[page].data.clear();
            local->frames[page].version++;
            stats_.invalidations_received++;
          }
          continue;
        }
        Writer w;
        w.put(id);
        w.put(static_cast<std::uint64_t>(page));
        auto acked = rpc_.call(victim, kInvalidate, std::move(w).take());
        if (!acked.is_ok()) {
          DOCT_LOG(kWarn) << "invalidate of " << id.to_string() << " page "
                          << page << " at " << victim.to_string()
                          << " failed: " << acked.status().to_string();
        }
      }
      lock.lock();
    }
  } else {
    if (caller != dir.owner) dir.copyset.insert(caller);
  }

  Writer reply;
  reply.put(has_data);
  reply.put(page_data);
  return std::move(reply).take();
}

Result<rpc::Payload> DsmEngine::rpc_fetch(NodeId, Reader& args) {
  const auto id = args.get_id<SegmentTag>();
  const auto page = static_cast<std::size_t>(args.get<std::uint64_t>());
  const auto downgrade = args.get<Downgrade>();

  std::lock_guard<std::mutex> lock(mu_);
  Segment* s = find_segment(id);
  if (s == nullptr || page >= s->num_pages) {
    return Status{StatusCode::kNoSuchObject, id.to_string()};
  }
  PageFrame& frame = s->frames[page];
  if (frame.state == PageState::kInvalid) {
    // The directory can point here before our grant has been installed (the
    // page is in transit from the home's reply to our fault_in).  Tell the
    // home to retry shortly rather than failing the protocol action.
    return Status{StatusCode::kResourceExhausted, "page in transit"};
  }
  Writer reply;
  reply.put(frame.data);
  if (downgrade == Downgrade::kToInvalid) {
    frame.state = PageState::kInvalid;
    frame.data.clear();
    frame.version++;
  } else if (frame.state == PageState::kOwned) {
    frame.state = PageState::kShared;
  }
  return std::move(reply).take();
}

Result<rpc::Payload> DsmEngine::rpc_invalidate(NodeId, Reader& args) {
  const auto id = args.get_id<SegmentTag>();
  const auto page = static_cast<std::size_t>(args.get<std::uint64_t>());

  std::lock_guard<std::mutex> lock(mu_);
  Segment* s = find_segment(id);
  if (s == nullptr || page >= s->num_pages) {
    return Status{StatusCode::kNoSuchObject, id.to_string()};
  }
  s->frames[page].state = PageState::kInvalid;
  s->frames[page].data.clear();
  s->frames[page].version++;
  stats_.invalidations_received++;
  return rpc::Payload{};
}

}  // namespace doct::dsm
