// Versioned binary wire format for net::Message.
//
// Every message that crosses a process boundary is framed as:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     4  magic        0xD0C7A5E1, little-endian ("is this doct?")
//        4     1  version      kVersion; peers reject frames outside
//                              [kMinVersion, kVersion] and drop the stream
//        5     1  flags        bit 0 (kFlagTrace): trace extension present
//        6     2  kind         MessageKind (subsystem-namespaced, u16)
//        8     8  from         sender NodeId
//       16     8  to           destination NodeId
//       24     8  call         correlation CallId (0 for one-way traffic)
//       32     8  sent_at_us   sender CLOCK_MONOTONIC stamp (0 = obs off)
//       40     4  payload_len  body length-prefix; bounded by max_payload
//       44    16  [trace]      trace_id u64 + span_id u64, iff kFlagTrace
//        .     .  payload      payload_len opaque bytes
//
// Integers are little-endian.  The trace extension is optional so the
// tracing-off hot path pays zero extra wire bytes; flag bits other than
// kFlagTrace are reserved and MUST be zero in v1 (a decoder that sees one
// rejects the frame — v1 has no concept of ignorable extensions, so a
// future version that adds some must bump `version`).
//
// The send path never copies the payload: encode_header() renders the fixed
// part into a stack buffer and the socket transport writes
// {header, payload.data()} with writev, so a broadcast's legs all reference
// the one SharedPayload buffer the fan-out already shares.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.hpp"
#include "net/message.hpp"

namespace doct::net::wire {

inline constexpr std::uint32_t kMagic = 0xD0C7A5E1;
inline constexpr std::uint8_t kVersion = 1;
// Oldest protocol version this build still speaks.  Connection handshakes
// advertise [kMinVersion, kVersion]; a peer whose window does not overlap
// ours cannot talk to us (see DESIGN.md §12 "version negotiation").
inline constexpr std::uint8_t kMinVersion = 1;

inline constexpr std::uint8_t kFlagTrace = 0x01;

inline constexpr std::size_t kHeaderBytes = 44;
inline constexpr std::size_t kTraceExtBytes = 16;
inline constexpr std::size_t kMaxHeaderBytes = kHeaderBytes + kTraceExtBytes;

// Upper bound a receiver will accept for payload_len.  Protects the decoder
// from allocating garbage lengths out of a corrupted or hostile stream.
inline constexpr std::size_t kMaxPayloadBytes = 64u << 20;  // 64 MiB

// Transport-control message kinds (handshake + multicast-group replication).
// These frames are consumed by the transport itself and never reach the node
// demux; the range is reserved here so packet traces attribute them.
inline constexpr std::uint16_t kCtrlHello = 0xFF01;
inline constexpr std::uint16_t kCtrlGroupJoin = 0xFF02;
inline constexpr std::uint16_t kCtrlGroupLeave = 0xFF03;

[[nodiscard]] constexpr bool is_control_kind(std::uint16_t kind) {
  return kind >= 0xFF00;
}

// The fixed-size part of one frame, rendered for a writev-style send:
// write bytes[0..size), then the payload buffer.
struct EncodedHeader {
  std::array<std::uint8_t, kMaxHeaderBytes> bytes{};
  std::size_t size = 0;
};

[[nodiscard]] EncodedHeader encode_header(const Message& message);

// One contiguous frame (header + payload copy).  Tests and small control
// frames; the socket send path uses encode_header + writev instead.
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& message);

// Decodes exactly one complete frame.  Rejects bad magic, unsupported
// version, reserved flags, oversized or truncated payloads, and trailing
// bytes.  Never throws; malformed input is a Status, not UB.
[[nodiscard]] Result<Message> decode(const std::vector<std::uint8_t>& frame);

// Incremental frame decoder for a byte stream: feed() socket reads in any
// chunking, pop complete messages with next().  The first malformed header
// poisons the decoder (feed/next return the error from then on) — stream
// framing is unrecoverable after corruption, so the connection owning the
// decoder must be torn down and re-established.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  Status feed(const std::uint8_t* data, std::size_t len);

  [[nodiscard]] std::optional<Message> next();

  // Bytes buffered but not yet consumed as complete messages.
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }
  [[nodiscard]] bool poisoned() const { return !error_.is_ok(); }
  [[nodiscard]] const Status& error() const { return error_; }

 private:
  // Parses frames out of buffer_[pos_..] into ready_; sets error_ on the
  // first malformed header.
  void drain();

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  // consumed prefix of buffer_
  std::vector<Message> ready_;
  std::size_t ready_pos_ = 0;
  Status error_;
};

}  // namespace doct::net::wire
