// Wire messages for the simulated inter-node network.
//
// The net layer does not interpret payloads; `kind` namespaces are assigned
// by the layers above (rpc, dsm, kernel/locators, events).  Payloads are real
// byte vectors produced by common/serialize.hpp, so everything that crosses a
// node boundary is genuinely marshalled.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace doct::net {

// Message-kind ranges, one block per subsystem (documented here so a reader
// of a packet trace can attribute traffic; enforced only by convention).
enum MessageKind : std::uint16_t {
  // rpc: 0x0100
  kRpcRequest = 0x0100,
  kRpcResponse = 0x0101,
  kRpcCancel = 0x0102,
  // kernel / thread management: 0x0200
  kLocateProbe = 0x0200,
  kLocateReply = 0x0201,
  kLocateBroadcast = 0x0202,
  kLocateMulticast = 0x0203,
  kThreadMigrate = 0x0210,
  kThreadReturn = 0x0211,
  kGroupUpdate = 0x0220,
  kGroupCensus = 0x0221,
  kGroupCensusReply = 0x0222,
  // events: 0x0300
  kEventNotify = 0x0300,
  kEventAck = 0x0301,
  kEventDeadTarget = 0x0302,
  // dsm: 0x0400
  kDsmPageRequest = 0x0400,
  kDsmPageReply = 0x0401,
  kDsmInvalidate = 0x0402,
  kDsmInvalidateAck = 0x0403,
  kDsmOwnershipTransfer = 0x0404,
  // health / failure detection: 0x0500
  kHeartbeat = 0x0500,
};

// Immutable, reference-counted message body.  Marshalling produces one byte
// vector; every copy of the Message — broadcast/multicast fan-out legs,
// injected wire duplicates, RPC retransmissions — shares that one buffer
// instead of reallocating it per destination.  The buffer must never be
// mutated after construction: anyone who needs a different body builds a new
// SharedPayload.
class SharedPayload {
 public:
  SharedPayload() = default;

  // Implicit by design: marshalling sites keep writing
  // `.payload = std::move(w).take()` and the vector is adopted, not copied.
  SharedPayload(std::vector<std::uint8_t> bytes)
      : bytes_(bytes.empty()
                   ? nullptr
                   : std::make_shared<const std::vector<std::uint8_t>>(
                         std::move(bytes))) {}
  SharedPayload(std::initializer_list<std::uint8_t> bytes)
      : SharedPayload(std::vector<std::uint8_t>(bytes)) {}

  [[nodiscard]] std::size_t size() const { return bytes_ ? bytes_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const {
    return bytes_ ? bytes_->data() : nullptr;
  }

  // The shared buffer itself — hand this to Reader so parsing pins the one
  // allocation instead of copying it.  Null when the payload is empty.
  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>> share() const {
    return bytes_;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    static const std::vector<std::uint8_t> kEmpty;
    return bytes_ ? *bytes_ : kEmpty;
  }

  friend bool operator==(const SharedPayload& a, const SharedPayload& b) {
    return a.bytes() == b.bytes();
  }
  friend bool operator==(const SharedPayload& a,
                         const std::vector<std::uint8_t>& b) {
    return a.bytes() == b;
  }

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> bytes_;
};

struct Message {
  NodeId from;
  NodeId to;
  std::uint16_t kind = 0;
  CallId call;  // correlation id; invalid for one-way messages
  SharedPayload payload;
  // Observability headers (obs layer): the causal trace this message belongs
  // to and the span that sent it.  0/0 when tracing is off — the net layer
  // carries them opaquely, like a real transport's trace header.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  // Stamped by Network::send/broadcast/multicast when observability is on so
  // the receiver can attribute wire-transit time; 0 otherwise.
  std::int64_t sent_at_us = 0;
};

using MessageHandler = std::function<void(const Message&)>;

}  // namespace doct::net
