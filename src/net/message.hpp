// Wire messages for the simulated inter-node network.
//
// The net layer does not interpret payloads; `kind` namespaces are assigned
// by the layers above (rpc, dsm, kernel/locators, events).  Payloads are real
// byte vectors produced by common/serialize.hpp, so everything that crosses a
// node boundary is genuinely marshalled.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.hpp"

namespace doct::net {

// Message-kind ranges, one block per subsystem (documented here so a reader
// of a packet trace can attribute traffic; enforced only by convention).
enum MessageKind : std::uint16_t {
  // rpc: 0x0100
  kRpcRequest = 0x0100,
  kRpcResponse = 0x0101,
  kRpcCancel = 0x0102,
  // kernel / thread management: 0x0200
  kLocateProbe = 0x0200,
  kLocateReply = 0x0201,
  kLocateBroadcast = 0x0202,
  kLocateMulticast = 0x0203,
  kThreadMigrate = 0x0210,
  kThreadReturn = 0x0211,
  kGroupUpdate = 0x0220,
  kGroupCensus = 0x0221,
  kGroupCensusReply = 0x0222,
  // events: 0x0300
  kEventNotify = 0x0300,
  kEventAck = 0x0301,
  kEventDeadTarget = 0x0302,
  // dsm: 0x0400
  kDsmPageRequest = 0x0400,
  kDsmPageReply = 0x0401,
  kDsmInvalidate = 0x0402,
  kDsmInvalidateAck = 0x0403,
  kDsmOwnershipTransfer = 0x0404,
  // health / failure detection: 0x0500
  kHeartbeat = 0x0500,
};

struct Message {
  NodeId from;
  NodeId to;
  std::uint16_t kind = 0;
  CallId call;  // correlation id; invalid for one-way messages
  std::vector<std::uint8_t> payload;
};

using MessageHandler = std::function<void(const Message&)>;

}  // namespace doct::net
