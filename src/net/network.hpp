// In-process simulated multi-node network.
//
// Topology is a full mesh.  Each registered node gets an inbound FIFO mailbox
// drained by its own delivery thread, so message handling is concurrent and
// asynchronous exactly as on a real cluster.  A central "wire" thread applies
// configurable per-message latency and loss, and honours partitions.
//
// Supports the three primitives §7.1 of the paper needs from the transport:
// point-to-point send, broadcast (the "simple solution" locator), and
// multicast groups (the "sophisticated thread-management" locator).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/queue.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"

namespace doct::net {

struct NetworkConfig {
  Duration base_latency{0};        // one-way latency applied to every message
  Duration per_byte_latency{0};    // additional latency per payload byte
  double drop_probability = 0.0;   // applied to point-to-point sends only
  std::uint64_t seed = 0x5EED;
};

struct NetworkStats {
  std::uint64_t sent = 0;          // point-to-point sends attempted
  std::uint64_t delivered = 0;     // messages handed to a node handler
  std::uint64_t dropped = 0;       // lost to injected loss or partitions
  std::uint64_t broadcast_sends = 0;   // broadcast() calls
  std::uint64_t multicast_sends = 0;   // multicast() calls
  std::uint64_t bytes = 0;         // payload bytes sent
  // Total per-destination fan-out of broadcasts/multicasts (each counts as a
  // wire message for the location-cost benches).
  std::uint64_t fanout_messages = 0;
};

class Network {
 public:
  explicit Network(NetworkConfig config = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a node and its message handler.  The handler runs on the
  // node's dedicated delivery thread; it must not block indefinitely on
  // another node's handler completing (deadlock is the caller's bug, as on a
  // real kernel's interrupt path) — long work should be queued to node-local
  // worker threads.
  Status register_node(NodeId node, MessageHandler handler);
  Status unregister_node(NodeId node);

  // Point-to-point.  Ok means "accepted for transmission" — delivery is
  // asynchronous and may still be dropped (datagram semantics).
  Status send(Message message);

  // Delivers to every registered node except the sender.
  Status broadcast(Message message);

  // Multicast groups.
  Status create_multicast_group(GroupId group);
  Status join(GroupId group, NodeId node);
  Status leave(GroupId group, NodeId node);
  Status multicast(GroupId group, Message message);

  // Fault injection: a partitioned pair silently drops traffic both ways.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  void isolate(NodeId node);    // partition `node` from everyone
  void reconnect(NodeId node);  // heal all partitions involving `node`

  [[nodiscard]] NetworkStats stats() const;
  void reset_stats();

  [[nodiscard]] std::vector<NodeId> nodes() const;

  // Blocks until every queued message (wire + mailboxes) has been delivered
  // and handled.  Tests use this instead of sleeps.
  void quiesce();

  // Messages currently on the wire or in a mailbox (including one being
  // handled right now).  0 once quiesce() would return immediately.
  [[nodiscard]] std::int64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

 private:
  struct NodeState {
    MessageHandler handler;
    BlockingQueue<Message> mailbox;
    std::thread delivery_thread;
  };

  struct WireItem {
    Duration deliver_at;
    std::uint64_t sequence;  // FIFO tie-break for equal deliver_at
    Message message;
    bool operator>(const WireItem& other) const {
      if (deliver_at != other.deliver_at) return deliver_at > other.deliver_at;
      return sequence > other.sequence;
    }
  };

  void wire_loop();
  void delivery_loop(NodeState& state);
  void enqueue_wire(Message message);
  void finish_in_flight();
  [[nodiscard]] bool pair_partitioned_locked(NodeId a, NodeId b) const;
  [[nodiscard]] Duration latency_for(const Message& message) const;

  NetworkConfig config_;
  SteadyClock clock_;

  mutable std::mutex mu_;
  std::condition_variable wire_cv_;
  std::priority_queue<WireItem, std::vector<WireItem>, std::greater<>> wire_;
  std::uint64_t wire_sequence_ = 0;
  std::unordered_map<NodeId, std::unique_ptr<NodeState>> nodes_;
  std::map<GroupId, std::set<NodeId>> multicast_groups_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
  SplitMix64 rng_;
  bool shutting_down_ = false;

  // In-flight accounting for quiesce(): incremented when a message enters the
  // wire, decremented after the destination handler returns.
  std::atomic<std::int64_t> in_flight_{0};
  std::condition_variable quiesce_cv_;
  mutable std::mutex quiesce_mu_;

  mutable std::mutex stats_mu_;
  NetworkStats stats_;

  std::thread wire_thread_;
};

}  // namespace doct::net
