// In-process simulated multi-node network.
//
// Topology is a full mesh.  Each registered node gets an inbound FIFO mailbox
// drained by its own delivery thread, so message handling is concurrent and
// asynchronous exactly as on a real cluster.  A central "wire" thread applies
// configurable per-message latency; zero-latency traffic bypasses it entirely
// and is pushed straight into the destination mailbox by the sender.
//
// Locking is sharded so concurrent senders on different nodes do not
// serialize on one global mutex (see DESIGN.md "Performance model"):
//
//   topo_mu_ (shared_mutex)  nodes/groups/partitions/crashed — senders take
//                            it shared, topology changes take it unique
//   wire_mu_                 the timing queue, delayed traffic only
//   FaultInjector            internally synchronized (sharded per-stream)
//   stats_                   per-cause relaxed atomics, no lock at all
//
// Supports the three primitives §7.1 of the paper needs from the transport:
// point-to-point send, broadcast (the "simple solution" locator), and
// multicast groups (the "sophisticated thread-management" locator).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <set>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/inline.hpp"
#include "common/mpsc_queue.hpp"
#include "common/queue.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace doct::net {

// Which Transport backend a runtime::Cluster assembles its nodes on.  The
// simulator stays the default (determinism, fault injection, quiesce); the
// socket kinds put every node behind a real SocketTransport — same semantics
// a multi-process deployment sees, inside one process.  Overridable at
// Cluster construction via DOCT_TRANSPORT=inprocess|unix|tcp.
enum class TransportKind : std::uint8_t {
  kInProcess = 0,
  kUnixSocket = 1,
  kTcp = 2,
};

struct NetworkConfig {
  Duration base_latency{0};        // one-way latency applied to every message
  Duration per_byte_latency{0};    // additional latency per payload byte
  // LEGACY: applies to point-to-point sends ONLY; broadcast/multicast legs
  // are never dropped by it.  New code should configure loss through
  // FaultPlan::link_defaults (load_fault_plan), which makes every fan-out
  // leg independently lossy and is replayable from the plan seed.
  double drop_probability = 0.0;
  std::uint64_t seed = 0x5EED;
  // Per-node inbound mailbox bound; 0 = unbounded.  When a destination's
  // delivery thread falls behind by this many messages, further traffic to
  // it is dropped (datagram semantics, counted as dropped_backpressure)
  // instead of growing the queue without limit — the network-layer end of
  // the node executor's bounded-lane story.
  std::size_t mailbox_capacity = 0;

  // --- transport selection (runtime::Cluster) ------------------------------
  // Everything below is read by runtime::Cluster, not by Network itself: the
  // simulator's knobs above apply only when transport == kInProcess.
  TransportKind transport = TransportKind::kInProcess;
  // Socket modes: base listen spec.  "" = auto ("unix:<fresh tmpdir>/n<id>
  // .sock" for kUnixSocket, "tcp:127.0.0.1:0" ephemeral ports for kTcp).
  std::string listen;
  // Per-peer reconnect backoff (socket modes): first retry delay, doubling
  // to the cap while a peer stays unreachable.
  Duration reconnect_backoff_initial{std::chrono::milliseconds(10)};
  Duration reconnect_backoff_max{std::chrono::seconds(1)};
};

struct NetworkStats {
  std::uint64_t sent = 0;          // point-to-point sends attempted
  std::uint64_t delivered = 0;     // messages handed to a node handler
  std::uint64_t dropped = 0;       // total losses, all causes below
  std::uint64_t broadcast_sends = 0;   // broadcast() calls
  std::uint64_t multicast_sends = 0;   // multicast() calls
  std::uint64_t bytes = 0;         // payload bytes sent
  // Total per-destination fan-out of broadcasts/multicasts (each counts as a
  // wire message for the location-cost benches).
  std::uint64_t fanout_messages = 0;
  // Messages that went through the wire thread's timing queue (latency or
  // injected delay > 0).  Zero-latency traffic is pushed directly into the
  // destination mailbox and never counts here.
  std::uint64_t wire_queued = 0;
  // Per-cause loss breakdown (each also counts into `dropped`).
  std::uint64_t dropped_by_fault = 0;      // injector probabilistic drop
  std::uint64_t dropped_by_partition = 0;  // partitioned pair at delivery
  std::uint64_t dropped_legacy = 0;        // NetworkConfig::drop_probability
  std::uint64_t dropped_crashed = 0;       // to or from a crashed node
  std::uint64_t dropped_no_route = 0;      // destination vanished in transit
  std::uint64_t dropped_backpressure = 0;  // destination mailbox was full
  // Injected non-loss faults.
  std::uint64_t duplicated = 0;    // extra copies put on the wire
  std::uint64_t reordered = 0;     // messages delayed past later traffic
  std::uint64_t delay_spikes = 0;  // latency spikes applied
  // Node lifecycle faults.
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
};

class Network final : public Transport {
 public:
  explicit Network(NetworkConfig config = {});
  ~Network() override;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Registers a node and its message handler.  The handler runs on the
  // node's dedicated delivery thread; it must not block indefinitely on
  // another node's handler completing (deadlock is the caller's bug, as on a
  // real kernel's interrupt path) — long work should be queued to node-local
  // worker threads.
  Status register_node(NodeId node, MessageHandler handler) override;
  Status unregister_node(NodeId node) override;

  // Point-to-point.  Ok means "accepted for transmission" — delivery is
  // asynchronous and may still be dropped (datagram semantics).
  Status send(Message message) override;

  // Delivers to every registered node except the sender.  All fan-out legs
  // share the sender's payload buffer (SharedPayload): one marshal per
  // broadcast, not one per destination.
  Status broadcast(Message message) override;

  // Multicast groups.
  Status create_multicast_group(GroupId group) override;
  Status join(GroupId group, NodeId node) override;
  Status leave(GroupId group, NodeId node) override;
  Status multicast(GroupId group, Message message) override;

  // Fault injection: a partitioned pair silently drops traffic both ways.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  void isolate(NodeId node);    // partition `node` from everyone
  void reconnect(NodeId node);  // heal all partitions involving `node`

  // Installs a deterministic fault plan (see net/fault.hpp).  Replaces any
  // previous plan; window/schedule time restarts at zero.  Every run with
  // the same plan and the same per-stream traffic sequence replays the same
  // faults.
  void load_fault_plan(FaultPlan plan);

  // Fail-stop crash: unregisters the node, joins its delivery thread, and
  // flushes its mailbox (queued messages are lost, like RAM on power-off).
  // The handler is remembered so restart_node() can re-register it.  While
  // crashed, traffic to and from the node is silently dropped — senders see
  // datagram loss, not an error, so retry layers keep probing for the
  // restart.  Join semantics: waits for the in-progress handler (if any) to
  // return; handlers are short by design (long work runs on worker pools).
  Status crash_node(NodeId node);
  Status restart_node(NodeId node);
  [[nodiscard]] bool is_crashed(NodeId node) const;

  [[nodiscard]] NetworkStats stats() const;
  void reset_stats();

  [[nodiscard]] std::vector<NodeId> nodes() const override;

  // Blocks until every queued message (wire + mailboxes) has been delivered
  // and handled.  Tests use this instead of sleeps.
  void quiesce();

  // Messages currently on the wire or in a mailbox (including one being
  // handled right now).  0 once quiesce() would return immediately.
  [[nodiscard]] std::int64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

 private:
  struct NodeState {
    MessageHandler handler;
    // Backend picked by DOCT_QUEUE at registration: lock-free MPSC chain
    // (default) or the mutex+condvar BlockingQueue ablation.
    common::Mailbox<Message> mailbox;
    std::thread delivery_thread;
  };

  struct WireItem {
    Duration deliver_at;
    std::uint64_t sequence;  // FIFO tie-break for equal deliver_at
    Message message;
    bool operator>(const WireItem& other) const {
      if (deliver_at != other.deliver_at) return deliver_at > other.deliver_at;
      return sequence > other.sequence;
    }
  };

  // NetworkStats with every counter a relaxed atomic on its own cache line:
  // hot paths bump without a lock OR false sharing (concurrent senders used
  // to ping-pong the line holding sent/bytes/fanout), stats() takes a
  // snapshot.  Counts are monotonic event tallies, so relaxed ordering is
  // enough — readers only need eventual totals, not cross-counter
  // consistency at an instant.
  struct AtomicStats {
    common::PaddedCounter sent;
    common::PaddedCounter delivered;
    common::PaddedCounter dropped;
    common::PaddedCounter broadcast_sends;
    common::PaddedCounter multicast_sends;
    common::PaddedCounter bytes;
    common::PaddedCounter fanout_messages;
    common::PaddedCounter wire_queued;
    common::PaddedCounter dropped_by_fault;
    common::PaddedCounter dropped_by_partition;
    common::PaddedCounter dropped_legacy;
    common::PaddedCounter dropped_crashed;
    common::PaddedCounter dropped_no_route;
    common::PaddedCounter dropped_backpressure;
    common::PaddedCounter duplicated;
    common::PaddedCounter reordered;
    common::PaddedCounter delay_spikes;
    common::PaddedCounter crashes;
    common::PaddedCounter restarts;
  };

  void wire_loop();
  void delivery_loop(NodeState& state);
  // Applies scheduled fault-plan actions; runs with NO lock held.
  void apply_schedule(const std::vector<ScheduledAction>& actions);
  // Queues one message on the wire thread's timing queue (locks wire_mu_).
  void enqueue_wire(Message message, Duration delay);
  // Routes one wire-queue message that fell due (takes topo_mu_ shared).
  void deliver_from_wire(Message message);
  // Applies the fault injector to one outbound message (a p2p send or one
  // fan-out leg), then either pushes it straight into `target`'s mailbox
  // (zero total delay) or queues it on the wire.  Caller holds topo_mu_
  // (shared suffices).
  void transmit(NodeState& target, Message message);
  // The zero-delay fast path: partition check + direct mailbox push.
  // Caller holds topo_mu_ (shared suffices).
  void deliver_direct(NodeState& target, Message message);
  // Final mailbox admission under the configured capacity bound.  Assumes
  // the caller already holds the message's in-flight token; releases it on
  // refusal.  Caller holds topo_mu_ (shared suffices).
  void push_mailbox(NodeState& target, Message message);
  void register_node_locked(NodeId node, MessageHandler handler);
  void finish_in_flight();
  // Records the wire-transit span + histogram for one received message
  // (no-op unless observability is on and the sender stamped the message).
  void note_transit(const Message& message);
  void drop(common::PaddedCounter AtomicStats::* cause);
  // Caller holds topo_mu_ (shared suffices).
  [[nodiscard]] bool pair_partitioned_locked(NodeId a, NodeId b) const;
  [[nodiscard]] Duration latency_for(const Message& message) const;
  [[nodiscard]] Duration fault_epoch() const {
    return Duration{fault_epoch_rep_.load(std::memory_order_acquire)};
  }

  NetworkConfig config_;
  SteadyClock clock_;

  // Topology: read-mostly routing state.  Senders take it shared; node
  // lifecycle and partition edits take it unique.
  mutable std::shared_mutex topo_mu_;
  std::unordered_map<NodeId, std::unique_ptr<NodeState>> nodes_;
  std::map<GroupId, std::set<NodeId>> multicast_groups_;
  std::set<std::pair<NodeId, NodeId>> partitions_;  // normalized (min,max)
  std::unordered_map<NodeId, MessageHandler> crashed_;  // handler for restart

  // Timing wheel: only traffic with a non-zero delivery delay lives here.
  mutable std::mutex wire_mu_;
  std::condition_variable wire_cv_;
  std::priority_queue<WireItem, std::vector<WireItem>, std::greater<>> wire_;
  std::uint64_t wire_sequence_ = 0;
  bool shutting_down_ = false;

  // LEGACY drop_probability draws (p2p only, off by default).
  std::mutex rng_mu_;
  SplitMix64 rng_;

  // Fault plan execution (injector is internally synchronized; the schedule
  // is applied by the wire thread).
  FaultInjector injector_;
  std::atomic<Duration::rep> fault_epoch_rep_{0};  // plan-relative time zero

  // In-flight accounting for quiesce(): incremented when a message enters the
  // wire, decremented after the destination handler returns.
  std::atomic<std::int64_t> in_flight_{0};
  std::condition_variable quiesce_cv_;
  mutable std::mutex quiesce_mu_;

  AtomicStats stats_;

  // Resolved once at construction (registry instruments have stable
  // addresses), so delivery threads record without a registry lookup.
  obs::Histogram* transit_us_ = nullptr;

  std::thread wire_thread_;

  // Declared after everything it reads (stats_) so the source unregisters
  // from the global registry before this Network's state is destroyed.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace doct::net
