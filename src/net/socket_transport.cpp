#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/log.hpp"
#include "net/wire.hpp"
#include "obs/trace.hpp"

namespace doct::net {

namespace {

void inc(common::PaddedCounter& counter, std::uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// Bounds-checked little-endian reads over a control-frame payload; `ok`
// latches false on the first short read so callers can validate once at the
// end instead of per-field.
struct PayloadReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > size) { ok = false; return 0; }
    return data[pos++];
  }
  std::uint32_t u32() {
    if (pos + 4 > size) { ok = false; return 0; }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data[pos + i]} << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (pos + 8 > size) { ok = false; return 0; }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data[pos + i]} << (8 * i);
    pos += 8;
    return v;
  }
};

int dial(const SocketAddress& addr) {
  if (addr.family == SocketAddress::Family::kUnix) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sa.sun_path)) return -1;
    std::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(addr.port);
  if (::getaddrinfo(addr.host.c_str(), port.c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) {
    int one = 1;
    // Latency over batching for the RPC round-trip path; ignored on AF_UNIX.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

// Writes the whole frame — gathered {header, payload} so the payload bytes
// are never copied into a contiguous frame buffer.  Handles partial writes
// by advancing the iovec; MSG_NOSIGNAL turns a dead peer into an error
// return instead of SIGPIPE.
bool write_frame(int fd, const Message& message) {
  const wire::EncodedHeader header = wire::encode_header(message);
  iovec iov[2];
  iov[0].iov_base = const_cast<std::uint8_t*>(header.bytes.data());
  iov[0].iov_len = header.size;
  iov[1].iov_base = const_cast<std::uint8_t*>(message.payload.data());
  iov[1].iov_len = message.payload.size();
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = message.payload.empty() ? 1 : 2;
  std::size_t remaining = header.size + message.payload.size();
  while (remaining > 0) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    remaining -= static_cast<std::size_t>(n);
    std::size_t advanced = static_cast<std::size_t>(n);
    while (advanced > 0 && msg.msg_iovlen > 0) {
      if (advanced >= msg.msg_iov[0].iov_len) {
        advanced -= msg.msg_iov[0].iov_len;
        ++msg.msg_iov;
        --msg.msg_iovlen;
      } else {
        msg.msg_iov[0].iov_base =
            static_cast<std::uint8_t*>(msg.msg_iov[0].iov_base) + advanced;
        msg.msg_iov[0].iov_len -= advanced;
        advanced = 0;
      }
    }
  }
  return true;
}

}  // namespace

std::string SocketAddress::to_string() const {
  if (family == Family::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Result<SocketAddress> SocketAddress::parse(const std::string& text) {
  SocketAddress addr;
  if (text.rfind("unix:", 0) == 0) {
    addr.family = Family::kUnix;
    addr.path = text.substr(5);
    if (addr.path.empty()) {
      return Status{StatusCode::kInvalidArgument, "empty unix socket path"};
    }
    return addr;
  }
  if (text.rfind("tcp:", 0) == 0) {
    addr.family = Family::kTcp;
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status{StatusCode::kInvalidArgument,
                    "expected tcp:host:port, got " + text};
    }
    addr.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    int port = 0;
    for (char c : port_text) {
      if (c < '0' || c > '9') port = -1;
      if (port >= 0) port = port * 10 + (c - '0');
      if (port > 65535) port = -1;
    }
    if (port_text.empty() || port < 0) {
      return Status{StatusCode::kInvalidArgument, "bad port in " + text};
    }
    addr.port = static_cast<std::uint16_t>(port);
    return addr;
  }
  return Status{StatusCode::kInvalidArgument,
                "address must start with unix: or tcp:, got " + text};
}

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(std::move(config)),
      max_payload_(config_.max_frame_payload != 0 ? config_.max_frame_payload
                                                  : wire::kMaxPayloadBytes) {
  transit_us_ = &obs::metrics().histogram("net.transit_us");
  metrics_source_ =
      obs::metrics().register_source("net.socket", [this] {
        const Stats s = stats();
        return std::vector<std::pair<std::string, std::uint64_t>>{
            {"sent", s.sent},
            {"delivered", s.delivered},
            {"bytes_sent", s.bytes_sent},
            {"reconnects", s.reconnects},
            {"dropped_backpressure", s.dropped_backpressure},
            {"dropped_inbound", s.dropped_inbound},
            {"dropped_no_peer", s.dropped_no_peer},
            {"decode_errors", s.decode_errors},
            {"rejected_version", s.rejected_version},
        };
      });
}

SocketTransport::~SocketTransport() { stop(); }

Status SocketTransport::start() {
  auto parsed = SocketAddress::parse(config_.listen);
  if (!parsed.is_ok()) return parsed.status();
  const SocketAddress addr = std::move(parsed).value();

  if (addr.family == SocketAddress::Family::kUnix) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sa.sun_path)) {
      return {StatusCode::kInvalidArgument,
              "unix socket path too long: " + addr.path};
    }
    std::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
    ::unlink(addr.path.c_str());  // stale socket from a previous run
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string err = std::strerror(errno);
      if (listen_fd_ >= 0) ::close(listen_fd_);
      listen_fd_ = -1;
      return {StatusCode::kInternal, "bind " + addr.to_string() + ": " + err};
    }
    unix_path_ = addr.path;
    bound_address_ = addr.to_string();
  } else {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
      return {StatusCode::kInvalidArgument,
              "listen host must be a numeric IPv4 address: " + addr.host};
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    if (listen_fd_ >= 0) {
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    }
    if (listen_fd_ < 0 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      const std::string err = std::strerror(errno);
      if (listen_fd_ >= 0) ::close(listen_fd_);
      listen_fd_ = -1;
      return {StatusCode::kInternal, "bind " + addr.to_string() + ": " + err};
    }
    // Ephemeral-port bind: report the port the kernel actually assigned so
    // the driver can hand it to peers.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    SocketAddress actual = addr;
    actual.port = ntohs(bound.sin_port);
    bound_address_ = actual.to_string();
  }

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  delivery_ = std::thread([this] { delivery_loop(); });
  set_peers(config_.peers);
  return Status::ok();
}

void SocketTransport::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // Wake the acceptor: shutdown (not just close) reliably unblocks a
  // concurrent accept(2) on Linux.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());

  // Wake every reader mid-recv, then join.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }

  // Writers: datagram semantics, so pending frames are abandoned, not
  // flushed (callers wanting a clean drain call flush() first).
  std::vector<std::unique_ptr<Peer>> peers;
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    for (auto& [id, peer] : peers_) peers.push_back(std::move(peer));
    peers_.clear();
  }
  for (auto& peer : peers) {
    {
      std::lock_guard<std::mutex> lock(peer->mu);
      peer->stopping = true;
    }
    peer->outbox.close();  // unblocks a writer parked in pop_all()
    peer->cv.notify_all();
    if (peer->writer.joinable()) peer->writer.join();
  }

  inbound_.close();
  if (delivery_.joinable()) delivery_.join();
}

std::string SocketTransport::listen_address() const { return bound_address_; }

void SocketTransport::add_peer(NodeId node, const std::string& address) {
  if (node == config_.self) return;
  std::lock_guard<std::mutex> lock(peers_mu_);
  auto it = peers_.find(node);
  if (it != peers_.end()) return;  // mesh addresses are set once
  auto peer = std::make_unique<Peer>();
  peer->id = node;
  peer->address = address;
  Peer* raw = peer.get();
  peers_.emplace(node, std::move(peer));
  raw->writer = std::thread([this, raw] { writer_loop(*raw); });
}

void SocketTransport::set_peers(const std::map<NodeId, std::string>& peers) {
  for (const auto& [node, address] : peers) add_peer(node, address);
}

std::size_t SocketTransport::connected_peers() const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  std::size_t count = 0;
  for (const auto& [id, peer] : peers_) {
    std::lock_guard<std::mutex> peer_lock(peer->mu);
    if (peer->connected) ++count;
  }
  return count;
}

bool SocketTransport::wait_for_peers(std::size_t count, Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (connected_peers() < count) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

bool SocketTransport::flush(Duration timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    bool drained = true;
    {
      std::lock_guard<std::mutex> lock(peers_mu_);
      for (const auto& [id, peer] : peers_) {
        // `queued` covers the outbox AND the writer's local staging deque.
        if (peer->queued.load(std::memory_order_acquire) != 0) {
          drained = false;
        }
      }
    }
    if (drained) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void SocketTransport::drop_connections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
}

SocketTransport::Stats SocketTransport::stats() const {
  Stats s;
  s.sent = stats_.sent.load(std::memory_order_relaxed);
  s.delivered = stats_.delivered.load(std::memory_order_relaxed);
  s.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
  s.reconnects = stats_.reconnects.load(std::memory_order_relaxed);
  s.dropped_backpressure =
      stats_.dropped_backpressure.load(std::memory_order_relaxed);
  s.dropped_inbound = stats_.dropped_inbound.load(std::memory_order_relaxed);
  s.dropped_no_peer = stats_.dropped_no_peer.load(std::memory_order_relaxed);
  s.decode_errors = stats_.decode_errors.load(std::memory_order_relaxed);
  s.rejected_version = stats_.rejected_version.load(std::memory_order_relaxed);
  return s;
}

Status SocketTransport::register_node(NodeId node, MessageHandler handler) {
  if (node != config_.self) {
    return {StatusCode::kInvalidArgument,
            "socket transport hosts only " + config_.self.to_string()};
  }
  std::lock_guard<std::mutex> lock(handler_mu_);
  if (node_registered_) {
    return {StatusCode::kAlreadyExists, node.to_string()};
  }
  handler_ = std::move(handler);
  node_registered_ = true;
  return Status::ok();
}

Status SocketTransport::unregister_node(NodeId node) {
  if (node != config_.self) {
    return {StatusCode::kNoSuchNode, node.to_string()};
  }
  std::lock_guard<std::mutex> lock(handler_mu_);
  node_registered_ = false;
  handler_ = nullptr;
  return Status::ok();
}

Status SocketTransport::send(Message message) {
  inc(stats_.sent);
  stamp_outgoing(message);
  if (message.to == config_.self) {
    // Loopback goes through the same delivery queue as remote traffic so the
    // serialized-handler contract holds regardless of source.
    if (inbound_.push_bounded(std::move(message), config_.inbound_capacity) !=
        common::Mailbox<Message>::PushResult::kOk) {
      inc(stats_.dropped_inbound);
    }
    return Status::ok();
  }
  std::lock_guard<std::mutex> lock(peers_mu_);
  auto it = peers_.find(message.to);
  if (it == peers_.end()) {
    inc(stats_.dropped_no_peer);
    return {StatusCode::kNoSuchNode, message.to.to_string()};
  }
  enqueue(*it->second, std::move(message));
  return Status::ok();
}

Status SocketTransport::broadcast(Message message) {
  stamp_outgoing(message);  // one stamp shared by all legs
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (auto& [id, peer] : peers_) {
    if (id == message.from) continue;
    Message copy = message;  // shares the payload buffer
    copy.to = id;
    inc(stats_.sent);
    enqueue(*peer, std::move(copy));
  }
  return Status::ok();
}

Status SocketTransport::create_multicast_group(GroupId group) {
  std::lock_guard<std::mutex> lock(groups_mu_);
  auto [it, inserted] = groups_.try_emplace(group);
  (void)it;
  if (!inserted) return {StatusCode::kAlreadyExists, group.to_string()};
  return Status::ok();
}

Status SocketTransport::join(GroupId group, NodeId node) {
  {
    std::lock_guard<std::mutex> lock(groups_mu_);
    auto it = groups_.find(group);
    if (it == groups_.end()) {
      return {StatusCode::kNoSuchGroup, group.to_string()};
    }
    it->second.insert(node);
  }
  if (node == config_.self) announce_group(wire::kCtrlGroupJoin, group);
  return Status::ok();
}

Status SocketTransport::leave(GroupId group, NodeId node) {
  {
    std::lock_guard<std::mutex> lock(groups_mu_);
    auto it = groups_.find(group);
    if (it == groups_.end()) {
      return {StatusCode::kNoSuchGroup, group.to_string()};
    }
    it->second.erase(node);
  }
  if (node == config_.self) announce_group(wire::kCtrlGroupLeave, group);
  return Status::ok();
}

Status SocketTransport::multicast(GroupId group, Message message) {
  std::vector<NodeId> members;
  {
    std::lock_guard<std::mutex> lock(groups_mu_);
    auto it = groups_.find(group);
    if (it == groups_.end()) {
      return {StatusCode::kNoSuchGroup, group.to_string()};
    }
    members.assign(it->second.begin(), it->second.end());
  }
  stamp_outgoing(message);
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (NodeId member : members) {
    if (member == message.from) continue;
    auto it = peers_.find(member);
    if (it == peers_.end()) {
      if (member == config_.self) {
        Message copy = message;
        copy.to = member;
        inc(stats_.sent);
        if (inbound_.push_bounded(std::move(copy), config_.inbound_capacity) !=
            common::Mailbox<Message>::PushResult::kOk) {
          inc(stats_.dropped_inbound);
        }
      }
      continue;
    }
    Message copy = message;
    copy.to = member;
    inc(stats_.sent);
    enqueue(*it->second, std::move(copy));
  }
  return Status::ok();
}

std::vector<NodeId> SocketTransport::nodes() const {
  std::vector<NodeId> out{config_.self};
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    for (const auto& [id, peer] : peers_) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SocketTransport::enqueue(Peer& peer, Message message) {
  const std::size_t bytes = message.payload.size();
  // Count before pushing so `queued` never under-reads the real backlog
  // (the writer may drain and decrement the instant the push lands).
  peer.queued.fetch_add(1, std::memory_order_acq_rel);
  switch (peer.outbox.push_bounded(std::move(message),
                                   config_.pending_capacity)) {
    case common::Mailbox<Message>::PushResult::kOk:
      inc(stats_.bytes_sent, bytes);
      break;
    case common::Mailbox<Message>::PushResult::kFull:
      peer.queued.fetch_sub(1, std::memory_order_relaxed);
      inc(stats_.dropped_backpressure);
      break;  // datagram semantics: loss is silent
    case common::Mailbox<Message>::PushResult::kClosed:
      peer.queued.fetch_sub(1, std::memory_order_relaxed);
      break;  // stopping
  }
}

std::vector<std::uint8_t> SocketTransport::hello_payload() const {
  // u8 min_version, u8 version, u64 node, u32 n, n x u64 group ids this node
  // is currently a member of — the snapshot a reconnecting peer needs to
  // rebuild its sender-side membership map.
  std::vector<std::uint8_t> out;
  out.push_back(wire::kMinVersion);
  out.push_back(wire::kVersion);
  put_u64(out, config_.self.value());
  std::vector<std::uint64_t> member_of;
  {
    std::lock_guard<std::mutex> lock(groups_mu_);
    for (const auto& [group, members] : groups_) {
      if (members.contains(config_.self)) member_of.push_back(group.value());
    }
  }
  put_u32(out, static_cast<std::uint32_t>(member_of.size()));
  for (std::uint64_t group : member_of) put_u64(out, group);
  // v1-compatible trailing extension (v1 readers ignore bytes past the
  // group list): the sender's listen address.  A receiver that does not
  // know this peer — a doct-top observer attaching to the mesh — adds it
  // and thereby gains a reply path for RPC responses.
  put_u32(out, static_cast<std::uint32_t>(bound_address_.size()));
  for (const char c : bound_address_) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  return out;
}

void SocketTransport::announce_group(std::uint16_t kind, GroupId group) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, group.value());
  Message announce;
  announce.from = config_.self;
  announce.kind = kind;
  announce.payload = SharedPayload{std::move(payload)};
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (auto& [id, peer] : peers_) {
    Message copy = announce;
    copy.to = id;
    enqueue(*peer, std::move(copy));
  }
}

bool SocketTransport::handle_control(const Message& message) {
  PayloadReader reader{message.payload.data(), message.payload.size()};
  switch (message.kind) {
    case wire::kCtrlHello: {
      const std::uint8_t peer_min = reader.u8();
      const std::uint8_t peer_max = reader.u8();
      const std::uint64_t node = reader.u64();
      const std::uint32_t ngroups = reader.u32();
      if (!reader.ok) return false;
      // Version windows must overlap — a peer that can only speak versions
      // newer than ours (or vice versa) gets its connection dropped, and its
      // dialer's backoff turns that into a visible reconnect loop rather
      // than silent garbled traffic.
      if (peer_min > wire::kVersion || peer_max < wire::kMinVersion) {
        inc(stats_.rejected_version);
        DOCT_LOG(kWarn) << "socket: rejecting " << NodeId{node}.to_string()
                        << " hello: version window [" << int{peer_min} << ","
                        << int{peer_max} << "] does not overlap ours";
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(groups_mu_);
        for (std::uint32_t i = 0; i < ngroups; ++i) {
          const std::uint64_t group = reader.u64();
          if (!reader.ok) return false;
          groups_[GroupId{group}].insert(NodeId{node});
        }
      }
      // Optional trailing extension: the sender's listen address.  Unknown
      // senders (observer processes outside the configured mesh) become
      // peers so replies to them have somewhere to go; configured mesh
      // members keep their addresses (add_peer is first-write-wins).
      if (reader.pos + 4 <= reader.size) {
        const std::uint32_t len = reader.u32();
        if (reader.ok && len > 0 && len <= 512 &&
            reader.pos + len <= reader.size) {
          const std::string address(
              reinterpret_cast<const char*>(reader.data + reader.pos), len);
          add_peer(NodeId{node}, address);
        }
      }
      return true;
    }
    case wire::kCtrlGroupJoin:
    case wire::kCtrlGroupLeave: {
      const std::uint64_t group = reader.u64();
      if (!reader.ok) return false;
      std::lock_guard<std::mutex> lock(groups_mu_);
      if (message.kind == wire::kCtrlGroupJoin) {
        groups_[GroupId{group}].insert(message.from);
      } else {
        auto it = groups_.find(GroupId{group});
        if (it != groups_.end()) it->second.erase(message.from);
      }
      return true;
    }
    default:
      // Unknown control kind from a same-version peer: ignore, keep stream.
      return true;
  }
}

void SocketTransport::stamp_outgoing(Message& message) const {
  if ((obs::tracing_enabled() || obs::metrics_enabled()) &&
      message.sent_at_us == 0) {
    message.sent_at_us = obs::now_us();
  }
}

void SocketTransport::note_transit(const Message& message) {
  // Receive-side transit attribution, same shape as Network::note_transit.
  // steady-clock stamps are comparable across processes on one machine.
  if (message.sent_at_us == 0) return;
  const std::int64_t now = obs::now_us();
  const std::int64_t transit =
      now > message.sent_at_us ? now - message.sent_at_us : 0;
  if (obs::metrics_enabled()) {
    transit_us_->record_us(transit);
  }
  if (obs::tracing_enabled() && message.trace_id != 0) {
    obs::Span span;
    span.trace_id = message.trace_id;
    span.span_id = obs::tracer().new_id();
    span.parent_span = message.span_id;
    span.node = message.to.value();
    span.track = 0;
    span.name = "wire";
    span.start_us = message.sent_at_us;
    span.dur_us = transit;
    obs::tracer().record(std::move(span));
  }
}

void SocketTransport::writer_loop(Peer& peer) {
  auto parsed = SocketAddress::parse(peer.address);
  if (!parsed.is_ok()) {
    DOCT_LOG(kError) << "socket: bad peer address for " << peer.id.to_string()
                     << ": " << parsed.status().to_string();
    return;
  }
  const SocketAddress addr = std::move(parsed).value();
  Duration backoff = config_.reconnect_backoff_initial;
  int fd = -1;
  bool ever_connected = false;
  // Frames harvested from the outbox but not yet on the wire.  A write
  // failure leaves the unsent frame (and everything behind it) here, so the
  // next connection retries them in order — no front-requeue into the
  // producers' queue.
  std::deque<Message> staging;

  auto disconnect = [&] {
    if (fd >= 0) ::close(fd);
    fd = -1;
    std::lock_guard<std::mutex> lock(peer.mu);
    peer.connected = false;
  };

  while (true) {
    {
      std::lock_guard<std::mutex> lock(peer.mu);
      if (peer.stopping) break;
    }
    if (fd < 0) {
      fd = dial(addr);
      if (fd < 0) {
        // Exponential backoff between dial attempts, interruptible by stop.
        std::unique_lock<std::mutex> lock(peer.mu);
        peer.cv.wait_for(lock, backoff, [&] { return peer.stopping; });
        backoff = std::min(backoff * 2, config_.reconnect_backoff_max);
        continue;
      }
      backoff = config_.reconnect_backoff_initial;
      if (ever_connected) inc(stats_.reconnects);
      ever_connected = true;
      // Every (re)connection opens with a HELLO: version window + identity +
      // membership snapshot, so the peer can re-learn state lost with the
      // previous stream.
      Message hello;
      hello.from = config_.self;
      hello.to = peer.id;
      hello.kind = wire::kCtrlHello;
      hello.payload = SharedPayload{hello_payload()};
      if (!write_frame(fd, hello)) {
        disconnect();
        continue;
      }
      std::lock_guard<std::mutex> lock(peer.mu);
      peer.connected = true;
    }

    if (staging.empty()) {
      // Blocks until producers push (one coalesced wakeup per burst) or
      // stop() closes the outbox; empty batch == closed-and-drained.
      std::deque<Message> batch = peer.outbox.pop_all();
      if (batch.empty()) break;
      staging = std::move(batch);
    }
    while (!staging.empty()) {
      if (!write_frame(fd, staging.front())) {
        // Not delivered: keep it (and the rest of the batch) staged for the
        // next connection, in order.
        disconnect();
        break;
      }
      staging.pop_front();
      peer.queued.fetch_sub(1, std::memory_order_release);
    }
  }
  if (fd >= 0) ::close(fd);
}

void SocketTransport::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void SocketTransport::reader_loop(std::shared_ptr<Connection> conn) {
  wire::FrameDecoder decoder(max_payload_);
  std::vector<std::uint8_t> buf(64 * 1024);
  bool drop = false;
  while (!drop) {
    const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: peer's dialer owns re-establishment
    if (!decoder.feed(buf.data(), static_cast<std::size_t>(n)).is_ok()) {
      // Corrupted stream framing is unrecoverable: count it and tear the
      // connection down; the peer redials with a fresh stream.
      inc(stats_.decode_errors);
      DOCT_LOG(kWarn) << "socket: dropping connection: "
                      << decoder.error().to_string();
      break;
    }
    while (auto message = decoder.next()) {
      if (wire::is_control_kind(message->kind)) {
        if (!handle_control(*message)) {
          drop = true;
          break;
        }
      } else if (inbound_.push_bounded(std::move(*message),
                                       config_.inbound_capacity) !=
                 common::Mailbox<Message>::PushResult::kOk) {
        inc(stats_.dropped_inbound);
      }
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);
}

void SocketTransport::delivery_loop() {
  // Single consumer: handlers run one message at a time, same contract as
  // the simulator's per-node delivery thread.
  while (true) {
    std::deque<Message> batch = inbound_.pop_all();
    if (batch.empty()) return;
    MessageHandler handler;
    {
      std::lock_guard<std::mutex> lock(handler_mu_);
      if (node_registered_) handler = handler_;
    }
    for (Message& message : batch) {
      note_transit(message);
      if (handler) {
        handler(message);
        inc(stats_.delivered);
      } else {
        inc(stats_.dropped_inbound);  // no local node registered yet
      }
    }
  }
}

}  // namespace doct::net
