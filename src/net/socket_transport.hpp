// Real-socket Transport backend: one local node per instance, speaking the
// versioned wire format (net/wire.hpp) over Unix-domain or TCP stream
// sockets.  This is what lets a runtime::Cluster span OS processes.
//
// Topology: every pair of nodes uses TWO simplex connections — each side
// dials the other's listen address for its outbound traffic and accepts the
// peer's dial for inbound.  Dial-only outbound means reconnect logic lives
// entirely on the writer side (no connection "glare" to arbitrate), and an
// accepted connection identifies its sender with a HELLO control frame
// before any data flows.
//
// Threads owned by one instance:
//   * per-peer writer   dials with exponential backoff, sends HELLO (version
//                       window + node id + multicast-group snapshot), then
//                       drains a bounded outbox mailbox (lock-free MPSC by
//                       default, DOCT_QUEUE=locked ablation) with gathered
//                       {header, payload} writes — a broadcast's legs all
//                       reference the one SharedPayload buffer.  Frames a
//                       write error left undelivered stay in the writer's
//                       local staging deque, so the next connection retries
//                       them in order before touching the outbox again.
//   * accept + readers  one reader per accepted connection, each owning a
//                       wire::FrameDecoder.  Control frames (kind >= 0xFF00)
//                       are consumed by the transport; data frames go to the
//                       delivery queue.  A poisoned decoder tears the
//                       connection down — stream framing is unrecoverable
//                       after corruption — and the peer's dialer re-
//                       establishes it.
//   * delivery          a single thread drains the inbound queue and runs
//                       the registered handler one message at a time,
//                       preserving the simulator's serialized-handler-per-
//                       node contract.
//
// Loss semantics match the Transport contract: Ok from send() means
// "accepted".  While a peer is unreachable, frames queue up to
// pending_capacity and further sends are dropped (counted in stats) — the
// rpc retry layer owns reliability, and its CallId dedup makes
// retransmissions that straddle a reconnect idempotent.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/inline.hpp"
#include "common/mpsc_queue.hpp"
#include "common/queue.hpp"
#include "common/result.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace doct::net {

// "unix:/path/to.sock" or "tcp:host:port".
struct SocketAddress {
  enum class Family { kUnix, kTcp };
  Family family = Family::kUnix;
  std::string path;  // unix
  std::string host;  // tcp
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] static Result<SocketAddress> parse(const std::string& text);
};

struct SocketTransportConfig {
  NodeId self;
  // Address this node binds and accepts on.  "tcp:127.0.0.1:0" binds an
  // ephemeral port; listen_address() reports the real one after start().
  std::string listen;
  // Static mesh: peer node -> its listen address.  May also be filled in
  // after start() via set_peers() (the bind-then-exchange two-phase setup
  // ephemeral TCP ports require).
  std::map<NodeId, std::string> peers;
  Duration reconnect_backoff_initial{std::chrono::milliseconds(10)};
  Duration reconnect_backoff_max{std::chrono::seconds(1)};
  // Outbound frames queued per disconnected/slow peer before sends drop.
  std::size_t pending_capacity = 4096;
  // Inbound messages queued ahead of the delivery thread before drops.
  std::size_t inbound_capacity = 65536;
  std::size_t max_frame_payload = 0;  // 0 = wire::kMaxPayloadBytes
};

class SocketTransport final : public Transport {
 public:
  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t dropped_backpressure = 0;  // pending deque full
    std::uint64_t dropped_inbound = 0;       // delivery queue full
    std::uint64_t dropped_no_peer = 0;       // destination not in the mesh
    std::uint64_t decode_errors = 0;         // poisoned streams torn down
    std::uint64_t rejected_version = 0;      // HELLO window mismatch
  };

  explicit SocketTransport(SocketTransportConfig config);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // Binds the listen address and spawns the accept/delivery/writer threads.
  Status start();
  void stop();

  // The bound address in parseable form ("tcp:127.0.0.1:41623"), valid after
  // start(); for an ephemeral-port bind this is how peers learn the port.
  [[nodiscard]] std::string listen_address() const;

  // Adds (or replaces) one peer / the whole mesh.  Safe after start().
  void add_peer(NodeId node, const std::string& address);
  void set_peers(const std::map<NodeId, std::string>& peers);

  // Peers whose outbound connection is currently established.
  [[nodiscard]] std::size_t connected_peers() const;
  // Blocks until at least `count` peers are connected (HELLO sent).
  bool wait_for_peers(std::size_t count, Duration timeout);
  // Blocks until every peer's pending deque is empty (best effort).
  bool flush(Duration timeout);

  // Chaos/test hook: tears down every ESTABLISHED inbound connection.  The
  // peers' dialers hit the dead sockets, back off, and redial — the same
  // path a real connection loss takes.  A frame a sender had already written
  // into a torn socket is lost (datagram semantics); rpc's retry + CallId
  // dedup make that invisible one layer up.
  void drop_connections();

  [[nodiscard]] Stats stats() const;

  // Transport interface.  register_node accepts only the configured self
  // node: a socket transport hosts exactly one node per process.
  Status register_node(NodeId node, MessageHandler handler) override;
  Status unregister_node(NodeId node) override;
  Status send(Message message) override;
  Status broadcast(Message message) override;
  Status create_multicast_group(GroupId group) override;
  Status join(GroupId group, NodeId node) override;
  Status leave(GroupId group, NodeId node) override;
  Status multicast(GroupId group, Message message) override;
  [[nodiscard]] std::vector<NodeId> nodes() const override;

 private:
  struct Peer {
    NodeId id;
    std::string address;

    // Outbound frames: senders push lock-free, the writer thread drains in
    // batches.  Closed by stop().  Frames the writer has harvested but not
    // yet written live in its local staging deque; `queued` counts both
    // (outbox + staging) so flush() sees the whole backlog.
    common::Mailbox<Message> outbox;
    std::atomic<std::uint64_t> queued{0};

    // Dial/backoff/lifecycle state only — the data path never takes mu.
    std::mutex mu;
    std::condition_variable cv;
    bool connected = false;
    bool stopping = false;
    std::thread writer;
  };

  struct Connection {
    int fd = -1;
    std::thread reader;
  };

  void writer_loop(Peer& peer);
  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void delivery_loop();

  // Queues one frame on a peer's writer, applying pending_capacity.
  void enqueue(Peer& peer, Message message);
  // Routes a control frame (HELLO / group join / leave) arriving on `fd`.
  // Returns false when the connection must be dropped (version mismatch).
  bool handle_control(const Message& message);
  // HELLO body for the current group membership snapshot.
  [[nodiscard]] std::vector<std::uint8_t> hello_payload() const;
  // Announces a local join/leave to every peer.
  void announce_group(std::uint16_t kind, GroupId group);
  void stamp_outgoing(Message& message) const;
  void note_transit(const Message& message);

  SocketTransportConfig config_;
  std::size_t max_payload_;

  mutable std::mutex peers_mu_;
  std::map<NodeId, std::unique_ptr<Peer>> peers_;

  // group -> member nodes; local joins are announced, remote ones replicated
  // via control frames.  Guarded by groups_mu_.
  mutable std::mutex groups_mu_;
  std::map<GroupId, std::set<NodeId>> groups_;

  mutable std::mutex handler_mu_;
  MessageHandler handler_;
  bool node_registered_ = false;

  common::Mailbox<Message> inbound_;
  std::thread delivery_;

  int listen_fd_ = -1;
  std::string bound_address_;
  std::string unix_path_;  // unlinked on stop
  std::thread acceptor_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::atomic<bool> running_{false};

  // One counter per cache line: concurrent senders and per-connection
  // readers bump these on every frame.
  struct AtomicStats {
    common::PaddedCounter sent;
    common::PaddedCounter delivered;
    common::PaddedCounter bytes_sent;
    common::PaddedCounter reconnects;
    common::PaddedCounter dropped_backpressure;
    common::PaddedCounter dropped_inbound;
    common::PaddedCounter dropped_no_peer;
    common::PaddedCounter decode_errors;
    common::PaddedCounter rejected_version;
  };
  mutable AtomicStats stats_;

  obs::Histogram* transit_us_ = nullptr;  // same receive-side hook as Network
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace doct::net
