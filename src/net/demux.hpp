// Per-node message demultiplexer.  A node registers exactly one handler with
// the Network; that handler is a Demux which routes by message kind to the
// subsystem that owns the kind (rpc, dsm, locators, events).
#pragma once

#include <functional>
#include <mutex>
#include <unordered_map>

#include "common/log.hpp"
#include "net/message.hpp"

namespace doct::net {

class Demux {
 public:
  void route(std::uint16_t kind, MessageHandler handler) {
    std::lock_guard<std::mutex> lock(mu_);
    handlers_[kind] = std::move(handler);
  }

  void operator()(const Message& message) const {
    MessageHandler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = handlers_.find(message.kind);
      if (it != handlers_.end()) handler = it->second;
    }
    if (handler) {
      handler(message);  // invoked unlocked (CP.22)
    } else {
      DOCT_LOG(kWarn) << "no route for message kind 0x" << std::hex
                      << message.kind << " at " << message.to.to_string();
    }
  }

  // Adapter for Network::register_node.
  [[nodiscard]] MessageHandler as_handler() const {
    return [this](const Message& m) { (*this)(m); };
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint16_t, MessageHandler> handlers_;
};

}  // namespace doct::net
