#include "net/wire.hpp"

#include <cstring>

namespace doct::net::wire {
namespace {

// Little-endian scalar writes/reads independent of host byte order.
template <typename T>
void put_le(std::uint8_t* out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(value) >> (8 * i));
  }
}

template <typename T>
[[nodiscard]] T get_le(const std::uint8_t* in) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return static_cast<T>(value);
}

}  // namespace

EncodedHeader encode_header(const Message& message) {
  EncodedHeader header;
  const bool traced = message.trace_id != 0;
  std::uint8_t* p = header.bytes.data();
  put_le<std::uint32_t>(p + 0, kMagic);
  p[4] = kVersion;
  p[5] = traced ? kFlagTrace : 0;
  put_le<std::uint16_t>(p + 6, message.kind);
  put_le<std::uint64_t>(p + 8, message.from.value());
  put_le<std::uint64_t>(p + 16, message.to.value());
  put_le<std::uint64_t>(p + 24, message.call.value());
  put_le<std::uint64_t>(p + 32,
                        static_cast<std::uint64_t>(message.sent_at_us));
  put_le<std::uint32_t>(p + 40,
                        static_cast<std::uint32_t>(message.payload.size()));
  header.size = kHeaderBytes;
  if (traced) {
    put_le<std::uint64_t>(p + 44, message.trace_id);
    put_le<std::uint64_t>(p + 52, message.span_id);
    header.size += kTraceExtBytes;
  }
  return header;
}

std::vector<std::uint8_t> encode(const Message& message) {
  const EncodedHeader header = encode_header(message);
  std::vector<std::uint8_t> frame;
  frame.reserve(header.size + message.payload.size());
  frame.insert(frame.end(), header.bytes.data(),
               header.bytes.data() + header.size);
  frame.insert(frame.end(), message.payload.data(),
               message.payload.data() + message.payload.size());
  return frame;
}

Result<Message> decode(const std::vector<std::uint8_t>& frame) {
  FrameDecoder decoder;
  if (Status fed = decoder.feed(frame.data(), frame.size()); !fed.is_ok()) {
    return fed;
  }
  std::optional<Message> message = decoder.next();
  if (!message.has_value()) {
    return Status{StatusCode::kInvalidArgument,
                  "truncated frame: " + std::to_string(frame.size()) +
                      " bytes is not a complete message"};
  }
  if (decoder.buffered() != 0 || decoder.next().has_value()) {
    return Status{StatusCode::kInvalidArgument,
                  "trailing bytes after one complete frame"};
  }
  return *message;
}

Status FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (!error_.is_ok()) return error_;
  if (len > 0) buffer_.insert(buffer_.end(), data, data + len);
  drain();
  return error_;
}

std::optional<Message> FrameDecoder::next() {
  if (ready_pos_ < ready_.size()) {
    Message out = std::move(ready_[ready_pos_++]);
    if (ready_pos_ == ready_.size()) {
      ready_.clear();
      ready_pos_ = 0;
    }
    return out;
  }
  return std::nullopt;
}

void FrameDecoder::drain() {
  while (error_.is_ok()) {
    const std::size_t available = buffer_.size() - pos_;
    if (available < kHeaderBytes) break;
    const std::uint8_t* p = buffer_.data() + pos_;

    // Validate everything in the fixed header BEFORE trusting any length:
    // a corrupted stream must produce a Status, never a wild allocation.
    if (get_le<std::uint32_t>(p + 0) != kMagic) {
      error_ = Status{StatusCode::kInvalidArgument, "bad wire magic"};
      break;
    }
    const std::uint8_t version = p[4];
    if (version < kMinVersion || version > kVersion) {
      error_ = Status{StatusCode::kInvalidArgument,
                      "unsupported wire version " + std::to_string(version) +
                          " (speak " + std::to_string(kMinVersion) + ".." +
                          std::to_string(kVersion) + ")"};
      break;
    }
    const std::uint8_t flags = p[5];
    if ((flags & ~kFlagTrace) != 0) {
      error_ = Status{StatusCode::kInvalidArgument,
                      "reserved wire flag bits set"};
      break;
    }
    const auto payload_len = get_le<std::uint32_t>(p + 40);
    if (payload_len > max_payload_) {
      error_ = Status{StatusCode::kResourceExhausted,
                      "payload length " + std::to_string(payload_len) +
                          " exceeds cap " + std::to_string(max_payload_)};
      break;
    }
    const bool traced = (flags & kFlagTrace) != 0;
    const std::size_t header_len =
        kHeaderBytes + (traced ? kTraceExtBytes : 0);
    const std::size_t frame_len = header_len + payload_len;
    if (available < frame_len) break;  // wait for more bytes

    Message message;
    message.kind = get_le<std::uint16_t>(p + 6);
    message.from = NodeId{get_le<std::uint64_t>(p + 8)};
    message.to = NodeId{get_le<std::uint64_t>(p + 16)};
    message.call = CallId{get_le<std::uint64_t>(p + 24)};
    message.sent_at_us =
        static_cast<std::int64_t>(get_le<std::uint64_t>(p + 32));
    if (traced) {
      message.trace_id = get_le<std::uint64_t>(p + 44);
      message.span_id = get_le<std::uint64_t>(p + 52);
    }
    if (payload_len > 0) {
      message.payload = SharedPayload{std::vector<std::uint8_t>(
          p + header_len, p + header_len + payload_len)};
    }
    ready_.push_back(std::move(message));
    pos_ += frame_len;
  }

  // Compact once the consumed prefix dominates, so the buffer does not grow
  // with the lifetime of the connection.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > 64 * 1024)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace doct::net::wire
