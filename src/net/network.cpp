#include "net/network.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace doct::net {

namespace {
std::pair<NodeId, NodeId> normalize(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

void inc(common::PaddedCounter& counter, std::uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace

Network::Network(NetworkConfig config)
    : config_(config), rng_(config.seed) {
  fault_epoch_rep_.store(clock_.now().count(), std::memory_order_release);
  transit_us_ = &obs::metrics().histogram("net.transit_us");
  wire_thread_ = std::thread([this] { wire_loop(); });
  metrics_source_ = obs::metrics().register_source("net", [this] {
    const NetworkStats s = stats();
    return std::vector<std::pair<std::string, std::uint64_t>>{
        {"sent", s.sent},
        {"delivered", s.delivered},
        {"dropped", s.dropped},
        {"broadcast_sends", s.broadcast_sends},
        {"multicast_sends", s.multicast_sends},
        {"bytes", s.bytes},
        {"fanout_messages", s.fanout_messages},
        {"wire_queued", s.wire_queued},
        {"dropped_by_fault", s.dropped_by_fault},
        {"dropped_by_partition", s.dropped_by_partition},
        {"dropped_backpressure", s.dropped_backpressure},
        {"duplicated", s.duplicated},
        {"reordered", s.reordered},
        {"delay_spikes", s.delay_spikes},
        {"crashes", s.crashes},
        {"restarts", s.restarts},
    };
  });
}

Network::~Network() {
  {
    std::lock_guard<std::mutex> lock(wire_mu_);
    shutting_down_ = true;
  }
  wire_cv_.notify_all();
  wire_thread_.join();

  // Close every mailbox, then join every delivery thread.
  std::vector<std::unique_ptr<NodeState>> states;
  {
    std::unique_lock<std::shared_mutex> lock(topo_mu_);
    for (auto& [id, state] : nodes_) states.push_back(std::move(state));
    nodes_.clear();
  }
  for (auto& state : states) {
    state->mailbox.close();
    if (state->delivery_thread.joinable()) state->delivery_thread.join();
  }
}

void Network::register_node_locked(NodeId node, MessageHandler handler) {
  auto state = std::make_unique<NodeState>();
  state->handler = std::move(handler);
  NodeState* raw = state.get();
  state->delivery_thread = std::thread([this, raw] { delivery_loop(*raw); });
  nodes_.emplace(node, std::move(state));
}

Status Network::register_node(NodeId node, MessageHandler handler) {
  if (!node.valid() || !handler) {
    return {StatusCode::kInvalidArgument, "node id and handler required"};
  }
  std::unique_lock<std::shared_mutex> lock(topo_mu_);
  if (nodes_.contains(node)) {
    return {StatusCode::kAlreadyExists, node.to_string()};
  }
  // A fresh registration supersedes any crash-time handler kept for restart.
  crashed_.erase(node);
  register_node_locked(node, std::move(handler));
  return Status::ok();
}

Status Network::unregister_node(NodeId node) {
  std::unique_ptr<NodeState> state;
  {
    std::unique_lock<std::shared_mutex> lock(topo_mu_);
    auto it = nodes_.find(node);
    if (it == nodes_.end()) {
      // A crashed node has no live state, but unregistering it must still
      // succeed (and forget the remembered restart handler): a node runtime
      // tears down the same way whether or not the network crashed it.
      if (crashed_.erase(node) > 0) return Status::ok();
      return {StatusCode::kNoSuchNode, node.to_string()};
    }
    state = std::move(it->second);
    nodes_.erase(it);
  }
  state->mailbox.close();
  if (state->delivery_thread.joinable()) state->delivery_thread.join();
  // Drain anything left in the mailbox: those messages were in flight and are
  // now lost; release their quiesce tokens.
  while (state->mailbox.try_pop()) {
    finish_in_flight();
  }
  return Status::ok();
}

Duration Network::latency_for(const Message& message) const {
  return config_.base_latency +
         config_.per_byte_latency * static_cast<long>(message.payload.size());
}

void Network::drop(common::PaddedCounter AtomicStats::* cause) {
  inc(stats_.dropped);
  inc(stats_.*cause);
}

void Network::enqueue_wire(Message message, Duration delay) {
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  inc(stats_.wire_queued);
  {
    std::lock_guard<std::mutex> lock(wire_mu_);
    wire_.push(
        WireItem{clock_.now() + delay, wire_sequence_++, std::move(message)});
  }
  wire_cv_.notify_one();
}

void Network::deliver_direct(NodeState& target, Message message) {
  // Send time IS delivery time on the zero-delay path, so the partition
  // check the wire thread would have done at delivery happens right here.
  if (pair_partitioned_locked(message.from, message.to)) {
    drop(&AtomicStats::dropped_by_partition);
    return;
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  push_mailbox(target, std::move(message));
}

void Network::push_mailbox(NodeState& target, Message message) {
  using PushResult = common::Mailbox<Message>::PushResult;
  switch (target.mailbox.push_bounded(std::move(message),
                                      config_.mailbox_capacity)) {
    case PushResult::kOk:
      break;
    case PushResult::kFull:
      drop(&AtomicStats::dropped_backpressure);
      finish_in_flight();
      break;
    case PushResult::kClosed:
      finish_in_flight();
      break;
  }
}

void Network::transmit(NodeState& target, Message message) {
  const Duration base = latency_for(message);
  if (!injector_.armed()) {
    if (base == Duration{0}) {
      deliver_direct(target, std::move(message));
    } else {
      enqueue_wire(std::move(message), base);
    }
    return;
  }
  const FaultDecision decision = injector_.decide(
      message.from, message.to, message.kind, clock_.now() - fault_epoch());
  if (decision.drop) {
    drop(&AtomicStats::dropped_by_fault);
    return;
  }
  if (decision.duplicate) inc(stats_.duplicated);
  if (decision.reorder) inc(stats_.reordered);
  if (decision.delay_spike) inc(stats_.delay_spikes);
  const Duration delay = base + decision.extra_delay;
  if (decision.duplicate) {
    // The duplicate shares the original's payload buffer (SharedPayload).
    if (delay == Duration{0}) {
      deliver_direct(target, message);
    } else {
      enqueue_wire(message, delay);
    }
  }
  if (delay == Duration{0}) {
    deliver_direct(target, std::move(message));
  } else {
    enqueue_wire(std::move(message), delay);
  }
}

void Network::finish_in_flight() {
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  // The notify must happen under quiesce_mu_: quiesce() checks the counter
  // under that mutex, and a notify between its predicate check and its block
  // would otherwise be lost, leaving the waiter asleep forever.
  std::lock_guard<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.notify_all();
}

Status Network::send(Message message) {
  inc(stats_.sent);
  inc(stats_.bytes, message.payload.size());
  if (obs::tracing_enabled() || obs::metrics_enabled()) {
    message.sent_at_us = obs::now_us();
  }
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  // A crashed endpoint behaves like a dead host, not a config error: the
  // datagram is silently lost so retry layers keep probing for the restart.
  if (crashed_.contains(message.to) || crashed_.contains(message.from)) {
    drop(&AtomicStats::dropped_crashed);
    return Status::ok();
  }
  auto it = nodes_.find(message.to);
  if (it == nodes_.end()) {
    return {StatusCode::kNoSuchNode, message.to.to_string()};
  }
  if (config_.drop_probability > 0.0) {
    bool lost;
    {
      std::lock_guard<std::mutex> rng_lock(rng_mu_);
      lost = rng_.chance(config_.drop_probability);
    }
    if (lost) {
      drop(&AtomicStats::dropped_legacy);
      return Status::ok();  // datagram semantics: loss is silent
    }
  }
  transmit(*it->second, std::move(message));
  return Status::ok();
}

Status Network::broadcast(Message message) {
  inc(stats_.broadcast_sends);
  if (obs::tracing_enabled() || obs::metrics_enabled()) {
    message.sent_at_us = obs::now_us();  // one stamp shared by all legs
  }
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  if (crashed_.contains(message.from)) {
    drop(&AtomicStats::dropped_crashed);
    return Status::ok();
  }
  for (const auto& [id, state] : nodes_) {
    if (id == message.from) continue;
    // The copy shares the payload buffer: broadcast marshals once, every
    // leg carries the same bytes.
    Message copy = message;
    copy.to = id;
    inc(stats_.fanout_messages);
    inc(stats_.bytes, copy.payload.size());
    // Each fan-out leg passes through the injector independently: one
    // broadcast can reach some destinations and lose others.
    transmit(*state, std::move(copy));
  }
  return Status::ok();
}

Status Network::create_multicast_group(GroupId group) {
  std::unique_lock<std::shared_mutex> lock(topo_mu_);
  auto [it, inserted] = multicast_groups_.try_emplace(group);
  (void)it;
  if (!inserted) return {StatusCode::kAlreadyExists, group.to_string()};
  return Status::ok();
}

Status Network::join(GroupId group, NodeId node) {
  std::unique_lock<std::shared_mutex> lock(topo_mu_);
  auto it = multicast_groups_.find(group);
  if (it == multicast_groups_.end()) {
    return {StatusCode::kNoSuchGroup, group.to_string()};
  }
  it->second.insert(node);
  return Status::ok();
}

Status Network::leave(GroupId group, NodeId node) {
  std::unique_lock<std::shared_mutex> lock(topo_mu_);
  auto it = multicast_groups_.find(group);
  if (it == multicast_groups_.end()) {
    return {StatusCode::kNoSuchGroup, group.to_string()};
  }
  it->second.erase(node);
  return Status::ok();
}

Status Network::multicast(GroupId group, Message message) {
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  auto it = multicast_groups_.find(group);
  if (it == multicast_groups_.end()) {
    return {StatusCode::kNoSuchGroup, group.to_string()};
  }
  inc(stats_.multicast_sends);
  if (obs::tracing_enabled() || obs::metrics_enabled()) {
    message.sent_at_us = obs::now_us();
  }
  if (crashed_.contains(message.from)) {
    drop(&AtomicStats::dropped_crashed);
    return Status::ok();
  }
  for (NodeId member : it->second) {
    if (member == message.from) continue;
    auto node_it = nodes_.find(member);
    if (node_it == nodes_.end()) continue;
    Message copy = message;
    copy.to = member;
    inc(stats_.fanout_messages);
    inc(stats_.bytes, copy.payload.size());
    transmit(*node_it->second, std::move(copy));
  }
  return Status::ok();
}

void Network::partition(NodeId a, NodeId b) {
  std::unique_lock<std::shared_mutex> lock(topo_mu_);
  partitions_.insert(normalize(a, b));
}

void Network::heal(NodeId a, NodeId b) {
  std::unique_lock<std::shared_mutex> lock(topo_mu_);
  partitions_.erase(normalize(a, b));
}

void Network::isolate(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(topo_mu_);
  for (const auto& [id, state] : nodes_) {
    if (id != node) partitions_.insert(normalize(node, id));
  }
}

void Network::reconnect(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(topo_mu_);
  std::erase_if(partitions_, [node](const auto& pair) {
    return pair.first == node || pair.second == node;
  });
}

bool Network::pair_partitioned_locked(NodeId a, NodeId b) const {
  return partitions_.contains(normalize(a, b));
}

void Network::load_fault_plan(FaultPlan plan) {
  injector_.load(std::move(plan));
  fault_epoch_rep_.store(clock_.now().count(), std::memory_order_release);
  // Events scheduled at (or before) the epoch apply before this returns: a
  // zero-latency direct-push send issued right after load_fault_plan must
  // not race the wire thread past a t=0 partition or crash.
  apply_schedule(injector_.due(Duration{0}));
  wire_cv_.notify_all();  // wire thread re-reads the schedule deadline
}

Status Network::crash_node(NodeId node) {
  std::unique_ptr<NodeState> state;
  {
    std::unique_lock<std::shared_mutex> lock(topo_mu_);
    auto it = nodes_.find(node);
    if (it == nodes_.end()) return {StatusCode::kNoSuchNode, node.to_string()};
    crashed_[node] = it->second->handler;
    state = std::move(it->second);
    nodes_.erase(it);
    inc(stats_.crashes);
  }
  state->mailbox.close();
  if (state->delivery_thread.joinable()) state->delivery_thread.join();
  // Mailbox flush: queued messages die with the node; release their quiesce
  // tokens so in-flight accounting stays balanced.
  while (state->mailbox.try_pop()) {
    finish_in_flight();
  }
  return Status::ok();
}

Status Network::restart_node(NodeId node) {
  {
    std::unique_lock<std::shared_mutex> lock(topo_mu_);
    auto it = crashed_.find(node);
    if (it == crashed_.end()) {
      return {StatusCode::kNoSuchNode, "not crashed: " + node.to_string()};
    }
    MessageHandler handler = std::move(it->second);
    crashed_.erase(it);
    register_node_locked(node, std::move(handler));
    inc(stats_.restarts);
  }
  wire_cv_.notify_all();
  return Status::ok();
}

bool Network::is_crashed(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  return crashed_.contains(node);
}

NetworkStats Network::stats() const {
  NetworkStats out;
  out.sent = stats_.sent.load(std::memory_order_relaxed);
  out.delivered = stats_.delivered.load(std::memory_order_relaxed);
  out.dropped = stats_.dropped.load(std::memory_order_relaxed);
  out.broadcast_sends = stats_.broadcast_sends.load(std::memory_order_relaxed);
  out.multicast_sends = stats_.multicast_sends.load(std::memory_order_relaxed);
  out.bytes = stats_.bytes.load(std::memory_order_relaxed);
  out.fanout_messages = stats_.fanout_messages.load(std::memory_order_relaxed);
  out.wire_queued = stats_.wire_queued.load(std::memory_order_relaxed);
  out.dropped_by_fault =
      stats_.dropped_by_fault.load(std::memory_order_relaxed);
  out.dropped_by_partition =
      stats_.dropped_by_partition.load(std::memory_order_relaxed);
  out.dropped_legacy = stats_.dropped_legacy.load(std::memory_order_relaxed);
  out.dropped_crashed = stats_.dropped_crashed.load(std::memory_order_relaxed);
  out.dropped_no_route =
      stats_.dropped_no_route.load(std::memory_order_relaxed);
  out.dropped_backpressure =
      stats_.dropped_backpressure.load(std::memory_order_relaxed);
  out.duplicated = stats_.duplicated.load(std::memory_order_relaxed);
  out.reordered = stats_.reordered.load(std::memory_order_relaxed);
  out.delay_spikes = stats_.delay_spikes.load(std::memory_order_relaxed);
  out.crashes = stats_.crashes.load(std::memory_order_relaxed);
  out.restarts = stats_.restarts.load(std::memory_order_relaxed);
  return out;
}

void Network::reset_stats() {
  stats_.sent.store(0, std::memory_order_relaxed);
  stats_.delivered.store(0, std::memory_order_relaxed);
  stats_.dropped.store(0, std::memory_order_relaxed);
  stats_.broadcast_sends.store(0, std::memory_order_relaxed);
  stats_.multicast_sends.store(0, std::memory_order_relaxed);
  stats_.bytes.store(0, std::memory_order_relaxed);
  stats_.fanout_messages.store(0, std::memory_order_relaxed);
  stats_.wire_queued.store(0, std::memory_order_relaxed);
  stats_.dropped_by_fault.store(0, std::memory_order_relaxed);
  stats_.dropped_by_partition.store(0, std::memory_order_relaxed);
  stats_.dropped_legacy.store(0, std::memory_order_relaxed);
  stats_.dropped_crashed.store(0, std::memory_order_relaxed);
  stats_.dropped_no_route.store(0, std::memory_order_relaxed);
  stats_.dropped_backpressure.store(0, std::memory_order_relaxed);
  stats_.duplicated.store(0, std::memory_order_relaxed);
  stats_.reordered.store(0, std::memory_order_relaxed);
  stats_.delay_spikes.store(0, std::memory_order_relaxed);
  stats_.crashes.store(0, std::memory_order_relaxed);
  stats_.restarts.store(0, std::memory_order_relaxed);
}

std::vector<NodeId> Network::nodes() const {
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, state] : nodes_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

void Network::quiesce() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void Network::apply_schedule(const std::vector<ScheduledAction>& actions) {
  for (const ScheduledAction& action : actions) {
    switch (action.kind) {
      case ScheduledAction::Kind::kPartition:
        partition(action.a, action.b);
        break;
      case ScheduledAction::Kind::kHeal:
        heal(action.a, action.b);
        break;
      case ScheduledAction::Kind::kCrash:
        crash_node(action.a);
        break;
      case ScheduledAction::Kind::kRestart:
        restart_node(action.a);
        break;
    }
  }
}

void Network::deliver_from_wire(Message message) {
  std::shared_lock<std::shared_mutex> lock(topo_mu_);
  const bool cut = pair_partitioned_locked(message.from, message.to);
  auto it = nodes_.find(message.to);
  if (cut || it == nodes_.end()) {
    if (cut) {
      drop(&AtomicStats::dropped_by_partition);
    } else if (crashed_.contains(message.to)) {
      drop(&AtomicStats::dropped_crashed);
    } else {
      drop(&AtomicStats::dropped_no_route);
    }
    finish_in_flight();
    return;
  }
  // Holding topo_mu_ shared across the push keeps the node-exists check and
  // the push atomic with respect to unregister_node / crash_node.
  push_mailbox(*it->second, std::move(message));
}

void Network::wire_loop() {
  std::unique_lock<std::mutex> lock(wire_mu_);
  while (true) {
    if (shutting_down_) {
      // Drop everything still on the wire and release quiesce tokens.
      while (!wire_.empty()) {
        wire_.pop();
        finish_in_flight();
      }
      return;
    }

    // Apply fault-plan schedule actions that fell due.  They take topo_mu_
    // unique (partitions) or join delivery threads (crash/restart), which
    // may block on traffic needing the wire queue — so run them with
    // wire_mu_ released.
    const Duration plan_now = clock_.now() - fault_epoch();
    std::vector<ScheduledAction> due = injector_.due(plan_now);
    if (!due.empty()) {
      lock.unlock();
      apply_schedule(due);
      lock.lock();
      continue;
    }

    const Duration next_plan_event = injector_.next_event_at();
    const Duration next_sched = next_plan_event == Duration::max()
                                    ? Duration::max()
                                    : fault_epoch() + next_plan_event;
    if (wire_.empty()) {
      if (next_sched == Duration::max()) {
        // Plain wait, then re-derive everything at the loop top: a
        // predicate of "wire non-empty or shutdown" would eat the notify
        // from load_fault_plan and sleep through the schedule it installed.
        wire_cv_.wait(lock);
      } else {
        wire_cv_.wait_until(lock, TimePoint{} + next_sched);
      }
      continue;
    }
    const Duration now = clock_.now();
    const Duration next = std::min(wire_.top().deliver_at, next_sched);
    if (next > now) {
      wire_cv_.wait_until(lock, TimePoint{} + next);
      continue;
    }
    if (wire_.top().deliver_at > now) continue;  // only the schedule was due

    // Batch-drain everything already due, then route it without holding the
    // queue lock: concurrent senders keep enqueueing while we deliver.
    std::vector<Message> batch;
    while (!wire_.empty() && wire_.top().deliver_at <= now) {
      batch.push_back(std::move(const_cast<WireItem&>(wire_.top()).message));
      wire_.pop();
    }
    lock.unlock();
    for (Message& message : batch) {
      deliver_from_wire(std::move(message));
    }
    lock.lock();
  }
}

void Network::note_transit(const Message& message) {
  // Observability hook on the receive side: the sender stamped sent_at_us,
  // so transit time is measurable here without any extra wire bytes.
  if (message.sent_at_us == 0) return;
  const std::int64_t now = obs::now_us();
  const std::int64_t transit = now > message.sent_at_us
                                   ? now - message.sent_at_us
                                   : 0;
  if (obs::metrics_enabled()) {
    transit_us_->record_us(transit);
  }
  if (obs::tracing_enabled() && message.trace_id != 0) {
    obs::Span span;
    span.trace_id = message.trace_id;
    span.span_id = obs::tracer().new_id();
    span.parent_span = message.span_id;
    span.node = message.to.value();
    span.track = 0;  // dedicated wire track per node
    span.name = "wire";
    span.start_us = message.sent_at_us;
    span.dur_us = transit;
    obs::tracer().record(std::move(span));
  }
}

void Network::delivery_loop(NodeState& state) {
  // Batched drain: a burst of queued messages costs one mailbox lock
  // round-trip.  An empty batch means closed-and-drained.
  while (true) {
    std::deque<Message> batch = state.mailbox.pop_all();
    if (batch.empty()) return;
    for (Message& message : batch) {
      note_transit(message);
      state.handler(message);  // runs unlocked (CP.22)
      inc(stats_.delivered);
      finish_in_flight();
    }
  }
}

}  // namespace doct::net
