#include "net/network.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace doct::net {

namespace {
std::pair<NodeId, NodeId> normalize(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}
}  // namespace

Network::Network(NetworkConfig config)
    : config_(config), rng_(config.seed) {
  fault_epoch_ = clock_.now();
  wire_thread_ = std::thread([this] { wire_loop(); });
}

Network::~Network() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  wire_cv_.notify_all();
  wire_thread_.join();

  // Close every mailbox, then join every delivery thread.
  std::vector<std::unique_ptr<NodeState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : nodes_) states.push_back(std::move(state));
    nodes_.clear();
  }
  for (auto& state : states) {
    state->mailbox.close();
    if (state->delivery_thread.joinable()) state->delivery_thread.join();
  }
}

void Network::register_node_locked(NodeId node, MessageHandler handler) {
  auto state = std::make_unique<NodeState>();
  state->handler = std::move(handler);
  NodeState* raw = state.get();
  state->delivery_thread = std::thread([this, raw] { delivery_loop(*raw); });
  nodes_.emplace(node, std::move(state));
}

Status Network::register_node(NodeId node, MessageHandler handler) {
  if (!node.valid() || !handler) {
    return {StatusCode::kInvalidArgument, "node id and handler required"};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.contains(node)) {
    return {StatusCode::kAlreadyExists, node.to_string()};
  }
  // A fresh registration supersedes any crash-time handler kept for restart.
  crashed_.erase(node);
  register_node_locked(node, std::move(handler));
  return Status::ok();
}

Status Network::unregister_node(NodeId node) {
  std::unique_ptr<NodeState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(node);
    if (it == nodes_.end()) {
      // A crashed node has no live state, but unregistering it must still
      // succeed (and forget the remembered restart handler): a node runtime
      // tears down the same way whether or not the network crashed it.
      if (crashed_.erase(node) > 0) return Status::ok();
      return {StatusCode::kNoSuchNode, node.to_string()};
    }
    state = std::move(it->second);
    nodes_.erase(it);
  }
  state->mailbox.close();
  if (state->delivery_thread.joinable()) state->delivery_thread.join();
  // Drain anything left in the mailbox: those messages were in flight and are
  // now lost; release their quiesce tokens.
  while (state->mailbox.try_pop()) {
    finish_in_flight();
  }
  return Status::ok();
}

Duration Network::latency_for(const Message& message) const {
  return config_.base_latency +
         config_.per_byte_latency * static_cast<long>(message.payload.size());
}

void Network::enqueue_wire(Message message, Duration extra_delay) {
  // Caller holds mu_.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  wire_.push(WireItem{clock_.now() + latency_for(message) + extra_delay,
                      wire_sequence_++, std::move(message)});
  wire_cv_.notify_one();
}

void Network::transmit_locked(Message message) {
  if (!injector_.armed()) {
    enqueue_wire(std::move(message), Duration{0});
    return;
  }
  const FaultDecision decision = injector_.decide(
      message.from, message.to, message.kind, clock_.now() - fault_epoch_);
  if (decision.drop) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.dropped++;
    stats_.dropped_by_fault++;
    return;
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    if (decision.duplicate) stats_.duplicated++;
    if (decision.reorder) stats_.reordered++;
    if (decision.delay_spike) stats_.delay_spikes++;
  }
  if (decision.duplicate) {
    enqueue_wire(message, decision.extra_delay);
  }
  enqueue_wire(std::move(message), decision.extra_delay);
}

void Network::finish_in_flight() {
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  // The notify must happen under quiesce_mu_: quiesce() checks the counter
  // under that mutex, and a notify between its predicate check and its block
  // would otherwise be lost, leaving the waiter asleep forever.
  std::lock_guard<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.notify_all();
}

Status Network::send(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.sent++;
    stats_.bytes += message.payload.size();
  }
  // A crashed endpoint behaves like a dead host, not a config error: the
  // datagram is silently lost so retry layers keep probing for the restart.
  if (crashed_.contains(message.to) || crashed_.contains(message.from)) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.dropped++;
    stats_.dropped_crashed++;
    return Status::ok();
  }
  if (!nodes_.contains(message.to)) {
    return {StatusCode::kNoSuchNode, message.to.to_string()};
  }
  if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.dropped++;
    stats_.dropped_legacy++;
    return Status::ok();  // datagram semantics: loss is silent
  }
  transmit_locked(std::move(message));
  return Status::ok();
}

Status Network::broadcast(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.broadcast_sends++;
  }
  if (crashed_.contains(message.from)) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.dropped++;
    stats_.dropped_crashed++;
    return Status::ok();
  }
  for (const auto& [id, state] : nodes_) {
    if (id == message.from) continue;
    Message copy = message;
    copy.to = id;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.fanout_messages++;
      stats_.bytes += copy.payload.size();
    }
    // Each fan-out leg passes through the injector independently: one
    // broadcast can reach some destinations and lose others.
    transmit_locked(std::move(copy));
  }
  return Status::ok();
}

Status Network::create_multicast_group(GroupId group) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = multicast_groups_.try_emplace(group);
  (void)it;
  if (!inserted) return {StatusCode::kAlreadyExists, group.to_string()};
  return Status::ok();
}

Status Network::join(GroupId group, NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = multicast_groups_.find(group);
  if (it == multicast_groups_.end()) {
    return {StatusCode::kNoSuchGroup, group.to_string()};
  }
  it->second.insert(node);
  return Status::ok();
}

Status Network::leave(GroupId group, NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = multicast_groups_.find(group);
  if (it == multicast_groups_.end()) {
    return {StatusCode::kNoSuchGroup, group.to_string()};
  }
  it->second.erase(node);
  return Status::ok();
}

Status Network::multicast(GroupId group, Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = multicast_groups_.find(group);
  if (it == multicast_groups_.end()) {
    return {StatusCode::kNoSuchGroup, group.to_string()};
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.multicast_sends++;
  }
  if (crashed_.contains(message.from)) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.dropped++;
    stats_.dropped_crashed++;
    return Status::ok();
  }
  for (NodeId member : it->second) {
    if (member == message.from) continue;
    if (!nodes_.contains(member)) continue;
    Message copy = message;
    copy.to = member;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.fanout_messages++;
      stats_.bytes += copy.payload.size();
    }
    transmit_locked(std::move(copy));
  }
  return Status::ok();
}

void Network::partition(NodeId a, NodeId b) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.insert(normalize(a, b));
}

void Network::heal(NodeId a, NodeId b) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.erase(normalize(a, b));
}

void Network::isolate(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, state] : nodes_) {
    if (id != node) partitions_.insert(normalize(node, id));
  }
}

void Network::reconnect(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(partitions_, [node](const auto& pair) {
    return pair.first == node || pair.second == node;
  });
}

bool Network::pair_partitioned_locked(NodeId a, NodeId b) const {
  return partitions_.contains(normalize(a, b));
}

void Network::load_fault_plan(FaultPlan plan) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    injector_.load(std::move(plan));
    fault_epoch_ = clock_.now();
  }
  wire_cv_.notify_all();  // wire thread re-reads the schedule deadline
}

Status Network::crash_node(NodeId node) {
  std::unique_ptr<NodeState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(node);
    if (it == nodes_.end()) return {StatusCode::kNoSuchNode, node.to_string()};
    crashed_[node] = it->second->handler;
    state = std::move(it->second);
    nodes_.erase(it);
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.crashes++;
  }
  state->mailbox.close();
  if (state->delivery_thread.joinable()) state->delivery_thread.join();
  // Mailbox flush: queued messages die with the node; release their quiesce
  // tokens so in-flight accounting stays balanced.
  while (state->mailbox.try_pop()) {
    finish_in_flight();
  }
  return Status::ok();
}

Status Network::restart_node(NodeId node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = crashed_.find(node);
    if (it == crashed_.end()) {
      return {StatusCode::kNoSuchNode, "not crashed: " + node.to_string()};
    }
    MessageHandler handler = std::move(it->second);
    crashed_.erase(it);
    register_node_locked(node, std::move(handler));
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.restarts++;
  }
  wire_cv_.notify_all();
  return Status::ok();
}

bool Network::is_crashed(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_.contains(node);
}

NetworkStats Network::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Network::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = NetworkStats{};
}

std::vector<NodeId> Network::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, state] : nodes_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

void Network::quiesce() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void Network::wire_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (shutting_down_) {
      // Drop everything still on the wire and release quiesce tokens.
      while (!wire_.empty()) {
        wire_.pop();
        finish_in_flight();
      }
      return;
    }

    // Apply fault-plan schedule actions that fell due.  Partition edits are
    // cheap and happen inline; crash/restart joins a delivery thread, which
    // may itself be blocked in send() needing mu_, so those run unlocked.
    const Duration plan_now = clock_.now() - fault_epoch_;
    std::vector<ScheduledAction> lifecycle;
    for (const ScheduledAction& action : injector_.due(plan_now)) {
      switch (action.kind) {
        case ScheduledAction::Kind::kPartition:
          partitions_.insert(normalize(action.a, action.b));
          break;
        case ScheduledAction::Kind::kHeal:
          partitions_.erase(normalize(action.a, action.b));
          break;
        default:
          lifecycle.push_back(action);
      }
    }
    if (!lifecycle.empty()) {
      lock.unlock();
      for (const ScheduledAction& action : lifecycle) {
        if (action.kind == ScheduledAction::Kind::kCrash) {
          crash_node(action.a);
        } else {
          restart_node(action.a);
        }
      }
      lock.lock();
      continue;
    }

    const Duration next_plan_event = injector_.next_event_at();
    const Duration next_sched = next_plan_event == Duration::max()
                                    ? Duration::max()
                                    : fault_epoch_ + next_plan_event;
    if (wire_.empty()) {
      if (next_sched == Duration::max()) {
        // Plain wait, then re-derive everything at the loop top: a
        // predicate of "wire non-empty or shutdown" would eat the notify
        // from load_fault_plan and sleep through the schedule it installed.
        wire_cv_.wait(lock);
      } else {
        wire_cv_.wait_until(lock, TimePoint{} + next_sched);
      }
      continue;
    }
    const Duration now = clock_.now();
    const Duration next = std::min(wire_.top().deliver_at, next_sched);
    if (next > now) {
      wire_cv_.wait_until(lock, TimePoint{} + next);
      continue;
    }
    if (wire_.top().deliver_at > now) continue;  // only the schedule was due

    Message message = std::move(const_cast<WireItem&>(wire_.top()).message);
    wire_.pop();

    const bool cut = pair_partitioned_locked(message.from, message.to);
    auto it = nodes_.find(message.to);
    if (cut || it == nodes_.end()) {
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        stats_.dropped++;
        if (cut) {
          stats_.dropped_by_partition++;
        } else if (crashed_.contains(message.to)) {
          stats_.dropped_crashed++;
        } else {
          stats_.dropped_no_route++;
        }
      }
      finish_in_flight();
      continue;
    }
    // Mailbox push is cheap; keeping mu_ held here keeps the node-exists
    // check and the push atomic with respect to unregister_node.
    if (!it->second->mailbox.push(std::move(message))) {
      finish_in_flight();
    }
  }
}

void Network::delivery_loop(NodeState& state) {
  while (auto message = state.mailbox.pop()) {
    state.handler(*message);  // runs unlocked (CP.22)
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.delivered++;
    }
    finish_in_flight();
  }
}

}  // namespace doct::net
