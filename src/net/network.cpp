#include "net/network.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace doct::net {

namespace {
std::pair<NodeId, NodeId> normalize(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}
}  // namespace

Network::Network(NetworkConfig config)
    : config_(config), rng_(config.seed) {
  wire_thread_ = std::thread([this] { wire_loop(); });
}

Network::~Network() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  wire_cv_.notify_all();
  wire_thread_.join();

  // Close every mailbox, then join every delivery thread.
  std::vector<std::unique_ptr<NodeState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, state] : nodes_) states.push_back(std::move(state));
    nodes_.clear();
  }
  for (auto& state : states) {
    state->mailbox.close();
    if (state->delivery_thread.joinable()) state->delivery_thread.join();
  }
}

Status Network::register_node(NodeId node, MessageHandler handler) {
  if (!node.valid() || !handler) {
    return {StatusCode::kInvalidArgument, "node id and handler required"};
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.contains(node)) {
    return {StatusCode::kAlreadyExists, node.to_string()};
  }
  auto state = std::make_unique<NodeState>();
  state->handler = std::move(handler);
  NodeState* raw = state.get();
  state->delivery_thread = std::thread([this, raw] { delivery_loop(*raw); });
  nodes_.emplace(node, std::move(state));
  return Status::ok();
}

Status Network::unregister_node(NodeId node) {
  std::unique_ptr<NodeState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(node);
    if (it == nodes_.end()) return {StatusCode::kNoSuchNode, node.to_string()};
    state = std::move(it->second);
    nodes_.erase(it);
  }
  state->mailbox.close();
  if (state->delivery_thread.joinable()) state->delivery_thread.join();
  // Drain anything left in the mailbox: those messages were in flight and are
  // now lost; release their quiesce tokens.
  while (state->mailbox.try_pop()) {
    finish_in_flight();
  }
  return Status::ok();
}

Duration Network::latency_for(const Message& message) const {
  return config_.base_latency +
         config_.per_byte_latency * static_cast<long>(message.payload.size());
}

void Network::enqueue_wire(Message message) {
  // Caller holds mu_.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  wire_.push(WireItem{clock_.now() + latency_for(message), wire_sequence_++,
                      std::move(message)});
  wire_cv_.notify_one();
}

void Network::finish_in_flight() {
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  // The notify must happen under quiesce_mu_: quiesce() checks the counter
  // under that mutex, and a notify between its predicate check and its block
  // would otherwise be lost, leaving the waiter asleep forever.
  std::lock_guard<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.notify_all();
}

Status Network::send(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.sent++;
    stats_.bytes += message.payload.size();
  }
  if (!nodes_.contains(message.to)) {
    return {StatusCode::kNoSuchNode, message.to.to_string()};
  }
  if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.dropped++;
    return Status::ok();  // datagram semantics: loss is silent
  }
  enqueue_wire(std::move(message));
  return Status::ok();
}

Status Network::broadcast(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.broadcast_sends++;
  }
  for (const auto& [id, state] : nodes_) {
    if (id == message.from) continue;
    Message copy = message;
    copy.to = id;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.fanout_messages++;
      stats_.bytes += copy.payload.size();
    }
    enqueue_wire(std::move(copy));
  }
  return Status::ok();
}

Status Network::create_multicast_group(GroupId group) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = multicast_groups_.try_emplace(group);
  (void)it;
  if (!inserted) return {StatusCode::kAlreadyExists, group.to_string()};
  return Status::ok();
}

Status Network::join(GroupId group, NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = multicast_groups_.find(group);
  if (it == multicast_groups_.end()) {
    return {StatusCode::kNoSuchGroup, group.to_string()};
  }
  it->second.insert(node);
  return Status::ok();
}

Status Network::leave(GroupId group, NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = multicast_groups_.find(group);
  if (it == multicast_groups_.end()) {
    return {StatusCode::kNoSuchGroup, group.to_string()};
  }
  it->second.erase(node);
  return Status::ok();
}

Status Network::multicast(GroupId group, Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = multicast_groups_.find(group);
  if (it == multicast_groups_.end()) {
    return {StatusCode::kNoSuchGroup, group.to_string()};
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.multicast_sends++;
  }
  for (NodeId member : it->second) {
    if (member == message.from) continue;
    if (!nodes_.contains(member)) continue;
    Message copy = message;
    copy.to = member;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.fanout_messages++;
      stats_.bytes += copy.payload.size();
    }
    enqueue_wire(std::move(copy));
  }
  return Status::ok();
}

void Network::partition(NodeId a, NodeId b) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.insert(normalize(a, b));
}

void Network::heal(NodeId a, NodeId b) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.erase(normalize(a, b));
}

void Network::isolate(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, state] : nodes_) {
    if (id != node) partitions_.insert(normalize(node, id));
  }
}

void Network::reconnect(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(partitions_, [node](const auto& pair) {
    return pair.first == node || pair.second == node;
  });
}

bool Network::pair_partitioned_locked(NodeId a, NodeId b) const {
  return partitions_.contains(normalize(a, b));
}

NetworkStats Network::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Network::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = NetworkStats{};
}

std::vector<NodeId> Network::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, state] : nodes_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

void Network::quiesce() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void Network::wire_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (shutting_down_) {
      // Drop everything still on the wire and release quiesce tokens.
      while (!wire_.empty()) {
        wire_.pop();
        finish_in_flight();
      }
      return;
    }
    if (wire_.empty()) {
      wire_cv_.wait(lock, [&] { return !wire_.empty() || shutting_down_; });
      continue;
    }
    const Duration now = clock_.now();
    if (wire_.top().deliver_at > now) {
      const auto deadline = TimePoint{} + wire_.top().deliver_at;
      wire_cv_.wait_until(lock, deadline);
      continue;
    }
    Message message = std::move(const_cast<WireItem&>(wire_.top()).message);
    wire_.pop();

    const bool cut = pair_partitioned_locked(message.from, message.to);
    auto it = nodes_.find(message.to);
    if (cut || it == nodes_.end()) {
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        stats_.dropped++;
      }
      finish_in_flight();
      continue;
    }
    // Mailbox push is cheap; keeping mu_ held here keeps the node-exists
    // check and the push atomic with respect to unregister_node.
    if (!it->second->mailbox.push(std::move(message))) {
      finish_in_flight();
    }
  }
}

void Network::delivery_loop(NodeState& state) {
  while (auto message = state.mailbox.pop()) {
    state.handler(*message);  // runs unlocked (CP.22)
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.delivered++;
    }
    finish_in_flight();
  }
}

}  // namespace doct::net
