// Deterministic fault injection for the simulated network.
//
// A FaultPlan describes everything that should go wrong during a run:
// probabilistic per-link faults (drop, duplicate, reorder, delay spikes),
// optional time windows restricting when a fault mix is active, scheduled
// partition/heal intervals, and scheduled node crash/restart events.  A
// FaultInjector executes the plan for the Network.
//
// Determinism guarantee: the fate of a message is a pure function of
// (plan seed, source, destination, message kind, per-stream sequence
// number, active windows).  Each (link, kind) pair is an independent
// fault stream with its own counter, so unrelated traffic — heartbeats,
// retransmissions on the reverse link — never perturbs the decisions made
// for another stream.  A workload that sends the same message sequence on
// a stream therefore sees the identical fault sequence on every run with
// the same seed, regardless of thread interleaving elsewhere.
//
// The injector is internally synchronized so the Network's sharded send
// paths can consult it concurrently without a global lock: the plan is
// read-mostly (shared_mutex), the schedule has its own mutex (wire thread
// only, plus load()), and the per-stream sequence counters are sharded by
// stream hash.  Determinism is unaffected by the sharding: a stream's
// sequence numbers are still handed out under one lock in arrival order,
// and arrival order within a stream is the sender's program order.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"

namespace doct::net {

// Probabilistic faults applied independently to each wire message
// (including every leg of a broadcast/multicast fan-out).
struct LinkFaults {
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;   // deliver the message twice
  double reorder_probability = 0.0;     // delay so later traffic overtakes it
  double delay_spike_probability = 0.0;
  Duration delay_spike_min{0};
  Duration delay_spike_max{0};
  Duration reorder_delay{std::chrono::microseconds(500)};

  [[nodiscard]] bool any() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 || delay_spike_probability > 0.0;
  }
};

// Restricts a fault mix to a time window (relative to plan load) and
// optionally to a single link (unordered node pair).
struct FaultWindow {
  Duration start{0};
  Duration end{Duration::max()};
  LinkFaults faults;
  bool all_links = true;
  NodeId a;  // when !all_links: the (unordered) pair the window applies to
  NodeId b;
};

// Scheduled symmetric partition between two nodes, healed at heal_at.
struct PartitionEvent {
  NodeId a;
  NodeId b;
  Duration at{0};
  Duration heal_at{Duration::max()};  // max() = never heals
};

// Scheduled fail-stop crash (unregister + mailbox flush) and later restart
// (re-register with the original handler).
struct CrashEvent {
  NodeId node;
  Duration at{0};
  Duration restart_at{Duration::max()};  // max() = stays down
};

struct FaultPlan {
  std::uint64_t seed = 0xFA017;
  LinkFaults link_defaults;                 // applies to every link, always
  std::vector<FaultWindow> windows;         // additional scoped fault mixes
  std::vector<PartitionEvent> partitions;   // scheduled partition/heal
  std::vector<CrashEvent> crashes;          // scheduled crash/restart
  // Exempt failure-detector heartbeats (kHeartbeat) from probabilistic
  // faults.  Keeps the injector's fault counts a function of application
  // traffic only, so a seeded run replays to identical NetworkStats even
  // with timer-driven heartbeats in the background.  Scheduled partitions
  // and crashes still cut heartbeats (they are not probabilistic).
  bool spare_heartbeats = true;
};

// The fate decided for one wire message.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  bool delay_spike = false;
  Duration extra_delay{0};
};

// A scheduled action that fell due; the Network applies it.
struct ScheduledAction {
  enum class Kind : std::uint8_t { kPartition, kHeal, kCrash, kRestart };
  Kind kind;
  NodeId a;
  NodeId b;  // partition/heal only
};

class FaultInjector {
 public:
  FaultInjector() = default;

  // Installs (or replaces) the plan and resets all stream counters and the
  // schedule.  Time for windows and scheduled events restarts at zero.
  void load(FaultPlan plan);

  // True if any probabilistic fault or scheduled event is configured.
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_acquire);
  }

  // Decides the fate of one message about to enter the wire on the
  // (from -> to) stream for `kind`, at `now` microseconds since load().
  FaultDecision decide(NodeId from, NodeId to, std::uint16_t kind,
                       Duration now);

  // Returns every scheduled action due at `now`; each fires exactly once.
  std::vector<ScheduledAction> due(Duration now);

  // Time of the earliest unfired scheduled event (Duration::max() if none).
  [[nodiscard]] Duration next_event_at() const;

 private:
  struct TimedAction {
    Duration at;
    ScheduledAction action;
    bool fired = false;
  };

  // Merges link_defaults with every window active for (from, to) at `now`.
  // Caller holds plan_mu_ (shared suffices).
  [[nodiscard]] LinkFaults effective_faults(NodeId from, NodeId to,
                                            Duration now) const;

  using StreamKey = std::tuple<std::uint64_t, std::uint64_t, std::uint16_t>;

  // Per (link, kind) fault-stream sequence counters, sharded by stream hash
  // so concurrent senders on different streams never contend.  The link key
  // is the ordered (from, to) pair: each direction is its own stream.
  struct StreamShard {
    std::mutex mu;
    std::map<StreamKey, std::uint64_t> seq;
  };
  static constexpr std::size_t kStreamShards = 16;

  [[nodiscard]] StreamShard& shard_for(const StreamKey& key);

  mutable std::shared_mutex plan_mu_;  // plan_ (read-mostly)
  FaultPlan plan_;
  std::atomic<bool> armed_{false};

  mutable std::mutex sched_mu_;  // schedule_ (wire thread + load())
  std::vector<TimedAction> schedule_;  // sorted by `at`

  std::array<StreamShard, kStreamShards> streams_;
};

}  // namespace doct::net
