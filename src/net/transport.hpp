// Pluggable node-to-node transport.
//
// Exactly the surface the node stack (rpc, kernel, events, health, runtime)
// needs from a network: node registration, the three §7.1 primitives
// (point-to-point send, broadcast, multicast groups), and the membership
// roll-call kernel census sizing uses.  Two backends implement it:
//
//   * net::Network          — the in-process simulator: deterministic wire
//     timing, fault injection, partitions, quiesce().  Every existing test
//     and chaos/stress suite runs on it unchanged.
//   * net::SocketTransport  — real sockets (Unix-domain or TCP): one local
//     node per instance, framed writev I/O in the versioned wire format
//     (net/wire.hpp), per-peer reconnect with backoff.  This is what lets a
//     runtime::Cluster span OS processes.
//
// Semantics shared by both backends (callers may rely on nothing more):
//   * datagram delivery: Ok from send() means "accepted", not "delivered" —
//     messages can still be lost (faults, disconnection, backpressure), and
//     loss is silent.  Retry layers (rpc) own reliability.
//   * handlers run on a transport-owned delivery thread, one message at a
//     time per local node, never on the sender's stack.
//   * broadcast() and multicast() skip the sending node.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "net/message.hpp"

namespace doct::net {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual Status register_node(NodeId node, MessageHandler handler) = 0;
  virtual Status unregister_node(NodeId node) = 0;

  virtual Status send(Message message) = 0;
  virtual Status broadcast(Message message) = 0;

  virtual Status create_multicast_group(GroupId group) = 0;
  virtual Status join(GroupId group, NodeId node) = 0;
  virtual Status leave(GroupId group, NodeId node) = 0;
  virtual Status multicast(GroupId group, Message message) = 0;

  // Known cluster membership, sorted.  The simulator reports registered
  // nodes; the socket backend reports the configured mesh (self + peers),
  // whether or not a peer is currently reachable — census-style callers pair
  // this with the failure detector's note_peer_down fast path.
  [[nodiscard]] virtual std::vector<NodeId> nodes() const = 0;
};

}  // namespace doct::net
