#include "net/fault.hpp"

#include <algorithm>
#include <cstdio>

#include "net/message.hpp"
#include "obs/flight.hpp"

namespace doct::net {

namespace {

// One independent decision per fault category, drawn from a per-message RNG
// seeded by (plan seed, stream identity, stream sequence).  A fixed draw
// order keeps decisions stable when probabilities change between categories.
std::uint64_t mix(std::uint64_t seed, std::uint64_t from, std::uint64_t to,
                  std::uint64_t kind, std::uint64_t seq) {
  SplitMix64 h(seed);
  // Fold the stream identity in through successive SplitMix64 steps; each
  // component perturbs the state so (from=1,to=2) != (from=2,to=1).
  SplitMix64 f(h.next() ^ (from * 0x9E3779B97F4A7C15ULL));
  SplitMix64 t(f.next() ^ (to * 0xC2B2AE3D27D4EB4FULL));
  SplitMix64 k(t.next() ^ (kind * 0x165667B19E3779F9ULL));
  SplitMix64 s(k.next() ^ seq);
  return s.next();
}

// Combined probability of at least one of two independent fault sources.
double combine(double p1, double p2) { return 1.0 - (1.0 - p1) * (1.0 - p2); }

// Non-clean decisions leave a breadcrumb in the flight recorder: a crashed
// chaos run's black box shows which injected faults preceded the failure.
void note_flight(const FaultDecision& decision, NodeId from, NodeId to,
                 std::uint16_t kind) {
  if (!decision.drop && !decision.duplicate && !decision.reorder &&
      !decision.delay_spike) {
    return;
  }
  auto& recorder = obs::flight();
  if (!recorder.enabled()) return;
  char detail[48];
  std::snprintf(detail, sizeof(detail), "%s%s%s%s kind=0x%x",
                decision.drop ? "drop" : "", decision.duplicate ? "dup" : "",
                decision.reorder ? "reorder" : "",
                decision.delay_spike ? "spike" : "", kind);
  recorder.note("fault", detail, from.value(), to.value());
}

}  // namespace

void FaultInjector::load(FaultPlan plan) {
  std::unique_lock<std::shared_mutex> plan_lock(plan_mu_);
  std::lock_guard<std::mutex> sched_lock(sched_mu_);
  plan_ = std::move(plan);
  for (StreamShard& shard : streams_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.seq.clear();
  }
  schedule_.clear();
  for (const PartitionEvent& p : plan_.partitions) {
    schedule_.push_back({p.at,
                         {ScheduledAction::Kind::kPartition, p.a, p.b},
                         false});
    if (p.heal_at != Duration::max()) {
      schedule_.push_back(
          {p.heal_at, {ScheduledAction::Kind::kHeal, p.a, p.b}, false});
    }
  }
  for (const CrashEvent& c : plan_.crashes) {
    schedule_.push_back(
        {c.at, {ScheduledAction::Kind::kCrash, c.node, NodeId{}}, false});
    if (c.restart_at != Duration::max()) {
      schedule_.push_back(
          {c.restart_at, {ScheduledAction::Kind::kRestart, c.node, NodeId{}},
           false});
    }
  }
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const TimedAction& x, const TimedAction& y) {
                     return x.at < y.at;
                   });
  armed_.store(plan_.link_defaults.any() || !plan_.windows.empty() ||
                   !schedule_.empty(),
               std::memory_order_release);
}

FaultInjector::StreamShard& FaultInjector::shard_for(const StreamKey& key) {
  // Cheap stream hash; only has to spread distinct (from, to, kind) triples
  // across shards, not be collision-proof.
  const std::uint64_t h = std::get<0>(key) * 0x9E3779B97F4A7C15ULL ^
                          std::get<1>(key) * 0xC2B2AE3D27D4EB4FULL ^
                          static_cast<std::uint64_t>(std::get<2>(key)) *
                              0x165667B19E3779F9ULL;
  return streams_[(h >> 32) % kStreamShards];
}

LinkFaults FaultInjector::effective_faults(NodeId from, NodeId to,
                                           Duration now) const {
  LinkFaults out = plan_.link_defaults;
  for (const FaultWindow& w : plan_.windows) {
    if (now < w.start || now >= w.end) continue;
    if (!w.all_links) {
      const bool matches = (w.a == from && w.b == to) ||
                           (w.a == to && w.b == from);
      if (!matches) continue;
    }
    out.drop_probability =
        combine(out.drop_probability, w.faults.drop_probability);
    out.duplicate_probability =
        combine(out.duplicate_probability, w.faults.duplicate_probability);
    out.reorder_probability =
        combine(out.reorder_probability, w.faults.reorder_probability);
    out.delay_spike_probability =
        combine(out.delay_spike_probability, w.faults.delay_spike_probability);
    out.delay_spike_min = std::max(out.delay_spike_min, w.faults.delay_spike_min);
    out.delay_spike_max = std::max(out.delay_spike_max, w.faults.delay_spike_max);
    out.reorder_delay = std::max(out.reorder_delay, w.faults.reorder_delay);
  }
  return out;
}

FaultDecision FaultInjector::decide(NodeId from, NodeId to, std::uint16_t kind,
                                    Duration now) {
  FaultDecision decision;
  if (!armed()) return decision;

  std::shared_lock<std::shared_mutex> plan_lock(plan_mu_);
  if (plan_.spare_heartbeats && kind == kHeartbeat) return decision;

  const LinkFaults faults = effective_faults(from, to, now);
  if (!faults.any()) return decision;

  const auto key = std::make_tuple(from.value(), to.value(), kind);
  std::uint64_t seq;
  {
    StreamShard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    seq = shard.seq[key]++;
  }
  SplitMix64 rng(mix(plan_.seed, from.value(), to.value(), kind, seq));

  // Fixed draw order: drop, duplicate, reorder, spike, spike magnitude.
  if (rng.chance(faults.drop_probability)) {
    decision.drop = true;
    note_flight(decision, from, to, kind);
    return decision;  // nothing else matters for a dropped message
  }
  decision.duplicate = rng.chance(faults.duplicate_probability);
  decision.reorder = rng.chance(faults.reorder_probability);
  decision.delay_spike = rng.chance(faults.delay_spike_probability);
  if (decision.reorder) decision.extra_delay += faults.reorder_delay;
  if (decision.delay_spike) {
    const auto lo = faults.delay_spike_min.count();
    const auto hi = std::max(faults.delay_spike_max.count(), lo);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    decision.extra_delay +=
        Duration{lo + static_cast<Duration::rep>(rng.below(span))};
  }
  note_flight(decision, from, to, kind);
  return decision;
}

std::vector<ScheduledAction> FaultInjector::due(Duration now) {
  std::lock_guard<std::mutex> lock(sched_mu_);
  std::vector<ScheduledAction> out;
  for (TimedAction& timed : schedule_) {
    if (timed.fired) continue;
    if (timed.at > now) break;  // sorted: nothing later is due
    timed.fired = true;
    out.push_back(timed.action);
  }
  return out;
}

Duration FaultInjector::next_event_at() const {
  std::lock_guard<std::mutex> lock(sched_mu_);
  for (const TimedAction& timed : schedule_) {
    if (!timed.fired) return timed.at;
  }
  return Duration::max();
}

}  // namespace doct::net
