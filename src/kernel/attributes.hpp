// Thread attributes — the heart of the DO/CT thread model (§3.1).
//
// A logical thread carries an attribute record across every object and node
// it visits: its creator, its thread group, its I/O channel binding, a
// consistency label [Chen 89], arbitrary user attributes, the LIFO chain of
// attached event handlers (§4.2) and its timer registrations (§6.2).  The
// record is serialized into every cross-node invocation and shipped back
// (possibly modified — an invoked object may attach handlers that must stay
// attached for the thread's lifetime) when the invocation returns.
//
// Handler code cannot cross the wire; records reference it symbolically:
//   * kObjectEntry — a (private) entry point of the object in which the
//     handler was attached; executed there via an unscheduled invocation.
//   * kBuddy — an entry point of a designated other object, e.g. a central
//     monitor/debugger/pager server ("buddy handlers", [Ousterhout 81]).
//   * kPerThread — a procedure in the thread's per-thread memory, executed in
//     the context of whatever object the thread currently occupies
//     (OWN_CONTEXT).  §7.2 requires per-thread handler code to be position
//     independent and mapped at a well-known address on every node; we model
//     that with a system-wide ProcedureRegistry keyed by procedure name (the
//     name IS the well-known address; every node "maps" the same code).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/serialize.hpp"

namespace doct::kernel {

enum class HandlerKind : std::uint8_t {
  kObjectEntry = 0,  // run in the object where the handler was attached
  kBuddy = 1,        // run in a designated other object
  kPerThread = 2,    // run in the current object's context (OWN_CONTEXT)
};

struct HandlerRecord {
  HandlerId id;
  EventId event;
  HandlerKind kind = HandlerKind::kObjectEntry;
  ObjectId object;        // kObjectEntry: attaching object; kBuddy: the buddy
  std::string entry;      // entry-point name or per-thread procedure name
  ObjectId attached_in;   // object the thread occupied at attach time

  void serialize(Writer& w) const;
  static HandlerRecord deserialize(Reader& r);
  [[nodiscard]] bool operator==(const HandlerRecord&) const = default;
};

struct TimerRecord {
  EventId event;
  std::uint64_t period_us = 0;  // periodic; one-shot if one_shot is set
  bool one_shot = false;

  void serialize(Writer& w) const;
  static TimerRecord deserialize(Reader& r);
  [[nodiscard]] bool operator==(const TimerRecord&) const = default;
};

// One frame of the thread's dynamic invocation chain.  §6.3 needs "all
// objects that lie in the path between the root object and the objects where
// the threads are currently active" — the chain travels with the thread so a
// TERMINATE handler can notify every object on it.
struct InvocationFrame {
  ObjectId object;
  NodeId node;

  void serialize(Writer& w) const;
  static InvocationFrame deserialize(Reader& r);
  [[nodiscard]] bool operator==(const InvocationFrame&) const = default;
};

struct ThreadAttributes {
  ThreadId creator;
  GroupId group;
  std::string io_channel;         // §3.1: e.g. the controlling terminal
  std::string consistency_label;  // [Chen 89]
  std::map<std::string, std::string> user;

  // LIFO handler chain (§4.2): back() is the most recently attached and the
  // first eligible handler for its event.
  std::vector<HandlerRecord> handler_chain;
  std::vector<TimerRecord> timers;
  // Dynamic invocation chain, root object first.
  std::vector<InvocationFrame> call_chain;

  void serialize(Writer& w) const;
  static ThreadAttributes deserialize(Reader& r);
  [[nodiscard]] bool operator==(const ThreadAttributes&) const = default;
};

}  // namespace doct::kernel
