// ThreadContext — the per-node state of a logical distributed thread.
//
// A logical thread exists at exactly one node at a time.  When it invokes an
// object on another node, the local carrier blocks inside the RPC, the local
// context is marked departed (here=false, next_hop set — this is the TCB
// trail §7.1's path-following locator walks), and a fresh context is adopted
// on the target node.  On return the trail is popped.
//
// Event delivery is cooperative: notices are queued here and processed at
// delivery points (invocation entry/exit, explicit poll, interruptible kernel
// waits).  That reproduces the paper's semantics — the thread is "stopped at
// the point of delivery", the handler runs synchronously, then the thread is
// resumed or terminated — without undefined preemption.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/clock.hpp"

#include "common/ids.hpp"
#include "kernel/attributes.hpp"
#include "kernel/event_notice.hpp"

namespace doct::kernel {

class ThreadContext {
 public:
  ThreadContext(ThreadId tid, NodeId node) : tid_(tid), node_(node) {}

  ThreadContext(const ThreadContext&) = delete;
  ThreadContext& operator=(const ThreadContext&) = delete;

  [[nodiscard]] ThreadId tid() const { return tid_; }
  [[nodiscard]] NodeId node() const { return node_; }

  // Attributes travel with the thread.  The carrier thread may use the bare
  // references between kernel calls; any cross-thread access (timer service,
  // delivery engine) must go through with_attributes().
  ThreadAttributes& attributes() { return attributes_; }
  const ThreadAttributes& attributes() const { return attributes_; }

  template <typename Fn>
  auto with_attributes(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    return fn(attributes_);
  }

  void notify() { cv_.notify_all(); }

  // Current object the thread executes in (invalid when outside any object).
  [[nodiscard]] ObjectId current_object() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_object_;
  }
  void set_current_object(ObjectId object) {
    std::lock_guard<std::mutex> lock(mu_);
    current_object_ = object;
  }

  // Presence: false while the thread is executing at another node.
  [[nodiscard]] bool here() const {
    std::lock_guard<std::mutex> lock(mu_);
    return here_;
  }
  [[nodiscard]] NodeId next_hop() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_hop_;
  }
  void depart(NodeId to) {
    std::lock_guard<std::mutex> lock(mu_);
    here_ = false;
    next_hop_ = to;
  }
  void arrive_back() {
    std::lock_guard<std::mutex> lock(mu_);
    here_ = true;
    next_hop_ = NodeId{};
  }

  // Termination is sticky; kernel waits and delivery points observe it.
  [[nodiscard]] bool terminated() const {
    return terminated_.load(std::memory_order_acquire);
  }
  void mark_terminated() {
    terminated_.store(true, std::memory_order_release);
    cv_.notify_all();
  }

  // --- pending event queue ---------------------------------------------

  // Control events (TERMINATE/ABORT-class) overtake ordinary notices.
  void enqueue(EventNotice notice, bool urgent = false) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (urgent) {
        pending_.push_front(std::move(notice));
      } else {
        pending_.push_back(std::move(notice));
      }
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool has_pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !pending_.empty();
  }

  std::optional<EventNotice> dequeue() {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return std::nullopt;
    EventNotice notice = std::move(pending_.front());
    pending_.pop_front();
    return notice;
  }

  // Blocks until `extra()` holds, a notice is pending, the thread is
  // terminated, or `deadline` passes.  Returns immediately if any condition
  // already holds.  `extra` is evaluated under the context lock.
  template <typename Pred>
  void wait_for_signal(Pred&& extra, TimePoint deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_until(lock, deadline, [&] {
      return extra() || !pending_.empty() ||
             terminated_.load(std::memory_order_acquire);
    });
  }

  // Handler re-entrancy depth (a handler raising an event handled by another
  // handler is legal; unbounded recursion is a bug we guard against).
  [[nodiscard]] int handler_depth() const {
    return handler_depth_.load(std::memory_order_relaxed);
  }
  void enter_handler() { handler_depth_.fetch_add(1, std::memory_order_relaxed); }
  void exit_handler() { handler_depth_.fetch_sub(1, std::memory_order_relaxed); }

  std::mutex& mu() { return mu_; }
  std::condition_variable& cv() { return cv_; }

 private:
  const ThreadId tid_;
  const NodeId node_;
  ThreadAttributes attributes_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<EventNotice> pending_;
  ObjectId current_object_;
  bool here_ = true;
  NodeId next_hop_;
  std::atomic<bool> terminated_{false};
  std::atomic<int> handler_depth_{0};
};

}  // namespace doct::kernel
