#include "kernel/event_notice.hpp"

namespace doct::kernel {

void EventNotice::serialize(Writer& w) const {
  w.put(event);
  w.put(event_name);
  w.put(target_thread);
  w.put(target_group);
  w.put(target_object);
  w.put(raiser);
  w.put(raiser_node);
  w.put(synchronous);
  w.put(wait_token);
  w.put(raised_in);
  w.put(system_info);
  w.put(user_data);
  w.put(trace_id);
  w.put(parent_span);
}

EventNotice EventNotice::deserialize(Reader& r) {
  EventNotice notice;
  notice.event = r.get_id<EventTag>();
  notice.event_name = r.get_string();
  notice.target_thread = r.get_id<ThreadTag>();
  notice.target_group = r.get_id<GroupTag>();
  notice.target_object = r.get_id<ObjectTag>();
  notice.raiser = r.get_id<ThreadTag>();
  notice.raiser_node = r.get_id<NodeTag>();
  notice.synchronous = r.get_bool();
  notice.wait_token = r.get<std::uint64_t>();
  notice.raised_in = r.get_id<ObjectTag>();
  notice.system_info = r.get_string();
  notice.user_data = r.get_bytes();
  notice.trace_id = r.get<std::uint64_t>();
  notice.parent_span = r.get<std::uint64_t>();
  return notice;
}

}  // namespace doct::kernel
