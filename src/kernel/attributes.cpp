#include "kernel/attributes.hpp"

namespace doct::kernel {

void HandlerRecord::serialize(Writer& w) const {
  w.put(id);
  w.put(event);
  w.put(kind);
  w.put(object);
  w.put(entry);
  w.put(attached_in);
}

HandlerRecord HandlerRecord::deserialize(Reader& r) {
  HandlerRecord record;
  record.id = r.get_id<HandlerTag>();
  record.event = r.get_id<EventTag>();
  record.kind = r.get<HandlerKind>();
  record.object = r.get_id<ObjectTag>();
  record.entry = r.get_string();
  record.attached_in = r.get_id<ObjectTag>();
  return record;
}

void TimerRecord::serialize(Writer& w) const {
  w.put(event);
  w.put(period_us);
  w.put(one_shot);
}

TimerRecord TimerRecord::deserialize(Reader& r) {
  TimerRecord record;
  record.event = r.get_id<EventTag>();
  record.period_us = r.get<std::uint64_t>();
  record.one_shot = r.get_bool();
  return record;
}

void InvocationFrame::serialize(Writer& w) const {
  w.put(object);
  w.put(node);
}

InvocationFrame InvocationFrame::deserialize(Reader& r) {
  InvocationFrame frame;
  frame.object = r.get_id<ObjectTag>();
  frame.node = r.get_id<NodeTag>();
  return frame;
}

void ThreadAttributes::serialize(Writer& w) const {
  w.put(creator);
  w.put(group);
  w.put(io_channel);
  w.put(consistency_label);
  w.put(user);
  w.put(static_cast<std::uint32_t>(handler_chain.size()));
  for (const auto& record : handler_chain) record.serialize(w);
  w.put(static_cast<std::uint32_t>(timers.size()));
  for (const auto& record : timers) record.serialize(w);
  w.put(static_cast<std::uint32_t>(call_chain.size()));
  for (const auto& frame : call_chain) frame.serialize(w);
}

ThreadAttributes ThreadAttributes::deserialize(Reader& r) {
  ThreadAttributes attrs;
  attrs.creator = r.get_id<ThreadTag>();
  attrs.group = r.get_id<GroupTag>();
  attrs.io_channel = r.get_string();
  attrs.consistency_label = r.get_string();
  attrs.user = r.get_string_map();
  const auto num_handlers = r.get<std::uint32_t>();
  attrs.handler_chain.reserve(num_handlers);
  for (std::uint32_t i = 0; i < num_handlers; ++i) {
    attrs.handler_chain.push_back(HandlerRecord::deserialize(r));
  }
  const auto num_timers = r.get<std::uint32_t>();
  attrs.timers.reserve(num_timers);
  for (std::uint32_t i = 0; i < num_timers; ++i) {
    attrs.timers.push_back(TimerRecord::deserialize(r));
  }
  const auto num_frames = r.get<std::uint32_t>();
  attrs.call_chain.reserve(num_frames);
  for (std::uint32_t i = 0; i < num_frames; ++i) {
    attrs.call_chain.push_back(InvocationFrame::deserialize(r));
  }
  return attrs;
}

}  // namespace doct::kernel
