#include "kernel/kernel.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"
#include "common/mpsc_queue.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace doct::kernel {

namespace {

constexpr const char* kDeliverMethod = "kernel.deliver";
constexpr const char* kResumeMethod = "kernel.resume";
constexpr const char* kProbeHopMethod = "kernel.probe_hop";

// The wait slice cap makes kernel waits robust against missed wakeups
// (polling is a safety net, not the mechanism: waiters are notified).
constexpr Duration kMaxWaitSlice = std::chrono::milliseconds(5);

// Thread-locals binding an OS thread (root carrier or adopted RPC worker) to
// the logical thread it is executing.
thread_local ThreadContext* g_current_ctx = nullptr;
thread_local Kernel* g_current_kernel = nullptr;

enum class HopState : std::uint8_t {
  kHere = 0,
  kDeparted = 1,
  kDead = 2,
  kUnknown = 3,
};

// Executor coalesce keys share one namespace per lane; the salt keeps the
// kernel's different idempotent work kinds from colliding on small ids.
std::uint64_t coalesce_key(std::uint64_t salt, std::uint64_t a,
                           std::uint64_t b) {
  std::uint64_t key = salt ^ (a * 0x9E3779B97F4A7C15ULL) ^
                      (b * 0x517CC1B727220A95ULL);
  return key == 0 ? 1 : key;
}

}  // namespace

Kernel::Kernel(net::Transport& network, net::Demux& demux, rpc::RpcEndpoint& rpc,
               NodeId self, IdGenerator& ids, KernelConfig config)
    : network_(network),
      rpc_(rpc),
      self_(self),
      ids_(ids),
      config_(config),
      location_cache_(config_.location_cache) {
  // All three kernel RPC methods are non-blocking (they enqueue or read local
  // state), so they run inline on the delivery thread (kFast): delivery makes
  // progress even when every RPC worker is parked in a blocked invocation.
  rpc_.register_method(
      kDeliverMethod,
      [this](NodeId caller, Reader& args) { return rpc_deliver(caller, args); },
      rpc::MethodClass::kFast);
  rpc_.register_method(
      kResumeMethod,
      [this](NodeId caller, Reader& args) { return rpc_resume(caller, args); },
      rpc::MethodClass::kFast);
  rpc_.register_method(
      kProbeHopMethod,
      [this](NodeId caller, Reader& args) {
        return rpc_probe_hop(caller, args);
      },
      rpc::MethodClass::kFast);

  demux.route(net::kLocateProbe,
              [this](const net::Message& m) { on_locate_probe(m); });
  demux.route(net::kLocateReply,
              [this](const net::Message& m) { on_locate_reply(m); });
  demux.route(net::kGroupCensus,
              [this](const net::Message& m) { on_group_census(m); });
  demux.route(net::kGroupCensusReply,
              [this](const net::Message& m) { on_group_census_reply(m); });
  demux.route(net::kEventNotify, [this](const net::Message& m) {
    try {
      Reader r(m.payload.share());
      EventNotice notice = EventNotice::deserialize(r);
      const bool urgent = r.get_bool();
      deliver_group_local(notice, urgent);
    } catch (const DeserializeError& e) {
      DOCT_LOG(kError) << "malformed group notify: " << e.what();
    }
  });

  if (common::queue_backend() == common::QueueBackend::kLockfree) {
    // Per-record wheel timers: arming/cancelling is O(1), and an idle node
    // (no TIMER registrations) runs no timer thread at all.
    timer_wheel_ = std::make_unique<common::TimerWheel>();
  } else {
    timer_thread_ = std::thread([this] { timer_loop(); });
  }

  deliver_us_ = &obs::metrics().histogram("kernel.deliver_us");
  const std::string prefix = "node" + std::to_string(self_.value());
  metrics_source_ = obs::metrics().register_source(prefix + ".kernel", [this] {
    const KernelStats s = stats();
    return std::vector<std::pair<std::string, std::uint64_t>>{
        {"threads_spawned", s.threads_spawned},
        {"threads_terminated", s.threads_terminated},
        {"notices_delivered", s.notices_delivered},
        {"notices_dead_target", s.notices_dead_target},
        {"locate_probes_sent", s.locate_probes_sent},
        {"migrations_in", s.migrations_in},
        {"migrations_out", s.migrations_out},
        {"timer_events", s.timer_events},
        {"census_peer_down_skips", s.census_peer_down_skips},
        {"cached_deliveries", s.cached_deliveries},
    };
  });
  cache_metrics_source_ = obs::metrics().register_source(
      prefix + ".location_cache", [this] {
        const LocationCacheStats s = location_cache_.stats();
        return std::vector<std::pair<std::string, std::uint64_t>>{
            {"hits", s.hits},
            {"misses", s.misses},
            {"stale", s.stale},
            {"invalidations", s.invalidations},
            {"inserts", s.inserts},
            {"evictions", s.evictions},
        };
      });
}

Kernel::~Kernel() {
  // Stop timers first: wheel callbacks / the timer thread touch contexts_.
  if (timer_wheel_) timer_wheel_->stop();  // joins the tick thread
  {
    std::lock_guard<std::mutex> lock(timers_mu_);
    timers_shutdown_ = true;
  }
  timers_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();

  // Ask all live local threads to terminate, then join the root carriers.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [tid, ctx] : contexts_) ctx->mark_terminated();
  }
  std::map<ThreadId, RootThread> roots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    roots.swap(root_threads_);
  }
  for (auto& [tid, root] : roots) {
    if (root.os_thread.joinable()) root.os_thread.join();
  }

  rpc_.unregister_method(kDeliverMethod);
  rpc_.unregister_method(kResumeMethod);
  rpc_.unregister_method(kProbeHopMethod);
}

// --- thread lifecycle --------------------------------------------------------

ThreadContext* Kernel::current() { return g_current_ctx; }

GroupId Kernel::create_group() { return ids_.next<GroupTag>(); }

GroupId Kernel::thread_multicast_group(ThreadId tid) const {
  // Per-thread multicast group: a reserved id range derived from the tid.
  return GroupId{0x8000000000000000ULL ^ tid.value()};
}

void Kernel::multicast_join(ThreadId tid) {
  if (!config_.maintain_multicast_groups) return;
  const GroupId group = thread_multicast_group(tid);
  // Group may already exist (created at spawn); join is idempotent.
  network_.create_multicast_group(group);
  network_.join(group, self_);
}

void Kernel::multicast_leave(ThreadId tid) {
  if (!config_.maintain_multicast_groups) return;
  network_.leave(thread_multicast_group(tid), self_);
}

ThreadId Kernel::spawn(ThreadBody body, SpawnOptions options) {
  const ThreadId tid = options.explicit_tid.valid()
                           ? options.explicit_tid
                           : ids_.next_thread_id(self_);
  auto ctx = std::make_shared<ThreadContext>(tid, self_);

  // Attribute inheritance (§6.3): a child spawned from a running logical
  // thread inherits the full attribute record, handler chain included.
  ThreadContext* parent = current();
  if (options.attributes.has_value()) {
    ctx->attributes() = std::move(*options.attributes);
  } else if (parent != nullptr) {
    ctx->attributes() =
        parent->with_attributes([](ThreadAttributes& a) { return a; });
    ctx->attributes().creator = parent->tid();
  }
  if (options.group.valid()) {
    ctx->attributes().group = options.group;
  } else if (!ctx->attributes().group.valid()) {
    ctx->attributes().group = create_group();
  }

  register_context(ctx);
  multicast_join(tid);
  start_timers_for(*ctx);
  bump(&AtomicStats::threads_spawned);

  std::lock_guard<std::mutex> lock(mu_);
  RootThread& root = root_threads_[tid];
  root.context = ctx;
  root.os_thread = std::thread(
      [this, ctx, body = std::move(body)] { run_thread_body(ctx, body); });
  return tid;
}

void Kernel::run_thread_body(std::shared_ptr<ThreadContext> ctx,
                             ThreadBody body) {
  g_current_ctx = ctx.get();
  g_current_kernel = this;
  try {
    body();
  } catch (const std::exception& e) {
    DOCT_LOG(kError) << ctx->tid().to_string()
                     << " body threw: " << e.what();
  }
  g_current_ctx = nullptr;
  g_current_kernel = nullptr;

  stop_timers_for(ctx->tid());
  multicast_leave(ctx->tid());
  unregister_context(ctx->tid(), /*tombstone=*/true);
  bump(&AtomicStats::threads_terminated);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = root_threads_.find(ctx->tid());
    if (it != root_threads_.end()) it->second.done = true;
  }
  root_done_cv_.notify_all();
}

Status Kernel::join_thread(ThreadId tid, Duration timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = root_threads_.find(tid);
  if (it == root_threads_.end()) {
    return {StatusCode::kNoSuchThread, tid.to_string()};
  }
  const bool done = root_done_cv_.wait_for(lock, timeout, [&] {
    auto jt = root_threads_.find(tid);
    return jt == root_threads_.end() || jt->second.done;
  });
  if (!done) return {StatusCode::kTimeout, "join " + tid.to_string()};
  it = root_threads_.find(tid);
  if (it != root_threads_.end()) {
    std::thread to_join = std::move(it->second.os_thread);
    root_threads_.erase(it);
    lock.unlock();
    if (to_join.joinable()) to_join.join();
  }
  return Status::ok();
}

void Kernel::register_context(std::shared_ptr<ThreadContext> ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  contexts_[ctx->tid()] = std::move(ctx);
}

void Kernel::unregister_context(ThreadId tid, bool tombstone) {
  // The thread is no longer addressable here: any hint we hold for it is
  // dead weight (it exited) or wrong (it migrated away).
  location_cache_.invalidate(tid);
  std::lock_guard<std::mutex> lock(mu_);
  contexts_.erase(tid);
  if (tombstone) {
    tombstones_[tid] = clock_.now();
    // Opportunistic reap of expired tombstones (the "zombie" discussion in
    // §7: trails of death information must not accumulate).
    const Duration cutoff = clock_.now() - config_.tombstone_ttl;
    std::erase_if(tombstones_,
                  [cutoff](const auto& kv) { return kv.second < cutoff; });
  }
}

std::shared_ptr<ThreadContext> Kernel::find_context(ThreadId tid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = contexts_.find(tid);
  return it == contexts_.end() ? nullptr : it->second;
}

bool Kernel::is_tombstoned(ThreadId tid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tombstones_.contains(tid);
}

void Kernel::terminate_all_local() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [tid, ctx] : contexts_) ctx->mark_terminated();
}

void Kernel::adopt_stub(std::shared_ptr<ThreadContext> stub) {
  register_context(std::move(stub));
}

void Kernel::drop_stub(ThreadId tid, bool tombstone) {
  auto ctx = find_context(tid);
  if (ctx == nullptr || ctx->here()) return;
  unregister_context(tid, tombstone);
}

std::vector<ThreadId> Kernel::local_group_members(GroupId group) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadId> members;
  for (const auto& [tid, ctx] : contexts_) {
    if (ctx->here() && ctx->with_attributes([&](ThreadAttributes& a) {
          return a.group == group;
        })) {
      members.push_back(tid);
    }
  }
  return members;
}

std::vector<ThreadId> Kernel::local_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadId> out;
  for (const auto& [tid, ctx] : contexts_) {
    if (ctx->here()) out.push_back(tid);
  }
  return out;
}

Result<std::vector<ThreadId>> Kernel::group_census(GroupId group) {
  const std::size_t expected_replies = network_.nodes().size() - 1;
  const std::uint64_t token = new_wait_token();
  auto pending = std::make_shared<CensusPending>();
  pending->members = local_group_members(group);
  {
    std::lock_guard<std::mutex> lock(census_mu_);
    censuses_[token] = pending;
  }
  Writer w;
  w.put(token);
  w.put(group);
  network_.broadcast(net::Message{
      .from = self_,
      .to = NodeId{},
      .kind = net::kGroupCensus,
      .call = CallId{},
      .payload = std::move(w).take(),
  });
  std::vector<ThreadId> members;
  {
    std::unique_lock<std::mutex> lock(pending->mu);
    pending->cv.wait_for(lock, config_.locate_timeout, [&] {
      return pending->replies >= expected_replies;
    });
    members = pending->members;
  }
  {
    std::lock_guard<std::mutex> lock(census_mu_);
    censuses_.erase(token);
  }
  std::sort(members.begin(), members.end());
  return members;
}

void Kernel::on_group_census(const net::Message& message) {
  std::uint64_t token = 0;
  GroupId group;
  try {
    Reader r(message.payload.share());
    token = r.get<std::uint64_t>();
    group = r.get_id<GroupTag>();
  } catch (const DeserializeError& e) {
    DOCT_LOG(kError) << "malformed census probe: " << e.what();
    return;
  }
  // Building + sending the reply is idempotent per (token, requester): a
  // retransmitted probe queued behind the first coalesces in place instead
  // of consuming control-lane capacity.  Runs inline when the lane refuses
  // (full or shut down) — the work never blocks, so that is always safe.
  const auto reply = [this, token, group, to = message.from] {
    const auto members = local_group_members(group);
    Writer w;
    w.put(token);
    w.put(static_cast<std::uint32_t>(members.size()));
    for (ThreadId tid : members) w.put(tid);
    network_.send(net::Message{
        .from = self_,
        .to = to,
        .kind = net::kGroupCensusReply,
        .call = CallId{},
        .payload = std::move(w).take(),
    });
  };
  const std::uint64_t key =
      coalesce_key(0x9E3779B97F4A7C15ULL, token, message.from.value());
  if (!rpc_.executor()
           .submit_coalesced(exec::Lane::kControl, key, reply)
           .is_ok()) {
    reply();
  }
}

void Kernel::on_group_census_reply(const net::Message& message) {
  std::uint64_t token = 0;
  std::vector<ThreadId> members;
  try {
    Reader r(message.payload.share());
    token = r.get<std::uint64_t>();
    const auto count = r.get<std::uint32_t>();
    members.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      members.push_back(r.get_id<ThreadTag>());
    }
  } catch (const DeserializeError& e) {
    DOCT_LOG(kError) << "malformed census reply: " << e.what();
    return;
  }
  std::shared_ptr<CensusPending> pending;
  {
    std::lock_guard<std::mutex> lock(census_mu_);
    auto it = censuses_.find(token);
    if (it == censuses_.end()) return;  // late reply
    pending = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(pending->mu);
    pending->members.insert(pending->members.end(), members.begin(),
                            members.end());
    pending->replies++;
  }
  pending->cv.notify_all();
}

void Kernel::note_peer_down(NodeId peer) {
  // Every cached hint pointing at the dead peer would cost a full RPC
  // timeout to disprove; drop them all now, synchronously — callers (and
  // tests) rely on the cache being clean when this returns.
  location_cache_.invalidate_node(peer);
  // Skipping census waiters is control work, and repeated NODE_DOWN signals
  // for the same peer coalesce: the task snapshots the waiting set when it
  // RUNS, so collapsing duplicates loses nothing.  Inline fallback when the
  // lane refuses — the loop never blocks.
  const auto skip_waiters = [this] {
    std::vector<std::shared_ptr<CensusPending>> waiting;
    {
      std::lock_guard<std::mutex> lock(census_mu_);
      for (const auto& [token, pending] : censuses_) waiting.push_back(pending);
    }
    for (const auto& pending : waiting) {
      {
        std::lock_guard<std::mutex> lock(pending->mu);
        pending->replies++;  // the dead peer can contribute no members
      }
      pending->cv.notify_all();
      bump(&AtomicStats::census_peer_down_skips);
    }
  };
  const std::uint64_t key =
      coalesce_key(0xD6E8FEB86659FD93ULL, peer.value(), 0);
  if (!rpc_.executor()
           .submit_coalesced(exec::Lane::kControl, key, skip_waiters)
           .is_ok()) {
    skip_waiters();
  }
}

// --- delivery points ---------------------------------------------------------

Status Kernel::poll_events() {
  ThreadContext* ctx = current();
  if (ctx == nullptr) {
    return {StatusCode::kInvalidArgument, "not inside a logical thread"};
  }
  while (true) {
    if (ctx->terminated()) return {StatusCode::kTerminated, ctx->tid().to_string()};
    auto notice = ctx->dequeue();
    if (!notice.has_value()) return Status::ok();

    DeliveryCallback cb;
    {
      std::lock_guard<std::mutex> lock(delivery_mu_);
      cb = delivery_;
    }
    Verdict verdict = Verdict::kResume;
    if (cb) {
      ctx->enter_handler();
      verdict = cb(*ctx, *notice);
      ctx->exit_handler();
    }
    if (verdict == Verdict::kTerminate) {
      ctx->mark_terminated();
      return {StatusCode::kTerminated, ctx->tid().to_string()};
    }
    // kResume / kPropagate-with-no-outer-handler: continue with next notice.
  }
}

Status Kernel::sleep_for(Duration d) {
  ThreadContext* ctx = current();
  if (ctx == nullptr) {
    std::this_thread::sleep_for(d);
    return Status::ok();
  }
  const Duration deadline = clock_.now() + d;
  return wait_until(*ctx, [&] { return clock_.now() >= deadline; },
                    d + std::chrono::seconds(1));
}

Status Kernel::wait_until(ThreadContext& ctx, const std::function<bool()>& pred,
                          Duration timeout) {
  const Duration deadline = clock_.now() + timeout;
  while (true) {
    if (ctx.terminated()) {
      return {StatusCode::kTerminated, ctx.tid().to_string()};
    }
    if (ctx.has_pending() && &ctx == current()) {
      const Status polled = poll_events();
      if (!polled.is_ok()) return polled;
    }
    if (pred()) return Status::ok();
    const Duration now = clock_.now();
    if (now >= deadline) return {StatusCode::kTimeout, "wait_until"};
    const Duration slice = std::min(deadline - now, kMaxWaitSlice);
    ctx.wait_for_signal(pred, TimePoint{} + now + slice);
  }
}

// --- delivery ----------------------------------------------------------------

void Kernel::set_delivery_callback(DeliveryCallback cb) {
  std::lock_guard<std::mutex> lock(delivery_mu_);
  delivery_ = std::move(cb);
}

Status Kernel::deliver_local(const EventNotice& notice, bool urgent) {
  auto ctx = find_context(notice.target_thread);
  if (ctx == nullptr || !ctx->here()) {
    if (is_tombstoned(notice.target_thread)) {
      bump(&AtomicStats::notices_dead_target);
      return {StatusCode::kDeadTarget, notice.target_thread.to_string()};
    }
    return {StatusCode::kNoSuchThread, notice.target_thread.to_string()};
  }
  if (ctx->terminated()) {
    return {StatusCode::kDeadTarget, notice.target_thread.to_string()};
  }
  {
    // Joins the raiser's trace via the notice headers: this span marks the
    // moment the notice reached the hosting node's kernel queue.
    obs::SpanGuard span(
        "deliver", self_.value(),
        obs::TraceContext{notice.trace_id, notice.parent_span},
        notice.event_name);
    ctx->enqueue(notice, urgent);
  }
  bump(&AtomicStats::notices_delivered);
  {
    auto& recorder = obs::flight();
    if (recorder.enabled()) {
      recorder.note("deliver", notice.event_name, self_.value(),
                    notice.target_thread.value());
    }
  }
  return Status::ok();
}

std::size_t Kernel::deliver_group_local(const EventNotice& notice,
                                        bool urgent) {
  std::size_t reached = 0;
  for (ThreadId tid : local_group_members(notice.target_group)) {
    EventNotice copy = notice;
    copy.target_thread = tid;
    if (deliver_local(copy, urgent).is_ok()) reached++;
  }
  return reached;
}

Status Kernel::deliver_remote(const EventNotice& notice, bool urgent) {
  // Child of the raise span: covers locate + delivery RPC (the "route" leg).
  obs::SpanGuard span("route", self_.value(),
                      obs::TraceContext{notice.trace_id, notice.parent_span},
                      notice.event_name);
  const std::int64_t t0 = obs::metrics_enabled() ? obs::now_us() : 0;

  // Fast path: the thread is here.
  Status local = deliver_local(notice, urgent);
  if (local.is_ok() || local.code() == StatusCode::kDeadTarget) {
    if (t0 != 0) deliver_us_->record_us(obs::now_us() - t0);
    return local;
  }

  // Marshal once: the cached attempt, the located attempt, and the move-race
  // retry all reuse this buffer.
  Writer w;
  notice.serialize(w);
  w.put(urgent);
  const rpc::Payload wire = std::move(w).take();

  // Cached fast path: skip the locate entirely and let the delivery RPC
  // itself validate the hint — a kNoSuchThread reply means it was stale.
  if (auto hint = location_cache_.lookup(notice.target_thread);
      hint.has_value()) {
    if (*hint == self_) {
      // deliver_local above already proved it is not here.
      location_cache_.note_stale(notice.target_thread);
    } else {
      auto reply = rpc_.call(*hint, kDeliverMethod, wire);
      if (reply.is_ok()) {
        bump(&AtomicStats::cached_deliveries);
        if (t0 != 0) deliver_us_->record_us(obs::now_us() - t0);
        return Status::ok();
      }
      if (reply.status().code() == StatusCode::kDeadTarget) {
        location_cache_.invalidate(notice.target_thread);
        return reply.status();
      }
      // Moved, crashed host, or timeout: drop the hint and fall back to the
      // configured locator.
      location_cache_.note_stale(notice.target_thread);
    }
  }

  for (int attempt = 0; attempt < 2; ++attempt) {
    auto located = locate_fresh(notice.target_thread, config_.locator);
    if (!located.is_ok()) return located.status();
    if (located.value() == self_) {
      local = deliver_local(notice, urgent);
      if (local.is_ok() || local.code() == StatusCode::kDeadTarget) {
        if (t0 != 0) deliver_us_->record_us(obs::now_us() - t0);
        return local;
      }
      continue;  // moved while we looked: re-locate
    }
    auto reply = rpc_.call(located.value(), kDeliverMethod, wire);
    if (reply.is_ok()) {
      if (t0 != 0) deliver_us_->record_us(obs::now_us() - t0);
      return Status::ok();
    }
    if (reply.status().code() != StatusCode::kNoSuchThread) {
      return reply.status();
    }
    // The thread moved between locate and deliver; retry once.
    location_cache_.note_stale(notice.target_thread);
  }
  return {StatusCode::kNoSuchThread, notice.target_thread.to_string()};
}

Status Kernel::deliver_group(const EventNotice& notice, bool urgent) {
  deliver_group_local(notice, urgent);
  Writer w;
  notice.serialize(w);
  w.put(urgent);
  // Group raises bypass RPC, so the trace rides the raw broadcast headers.
  return network_.broadcast(net::Message{
      .from = self_,
      .to = NodeId{},
      .kind = net::kEventNotify,
      .call = CallId{},
      .payload = std::move(w).take(),
      .trace_id = notice.trace_id,
      .span_id = notice.parent_span,
  });
}

std::uint64_t Kernel::new_wait_token() {
  // Tokens are globally unique: node id in the high bits.
  return (self_.value() << 48) |
         (next_token_.fetch_add(1, std::memory_order_relaxed) &
          0xFFFFFFFFFFFFULL);
}

void Kernel::prepare_wait(std::uint64_t wait_token) {
  std::lock_guard<std::mutex> lock(waiters_mu_);
  waiters_.try_emplace(wait_token, std::make_shared<Waiter>());
}

Result<Verdict> Kernel::await_resume(std::uint64_t wait_token,
                                     Duration timeout) {
  std::shared_ptr<Waiter> waiter;
  {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    auto [it, inserted] =
        waiters_.try_emplace(wait_token, std::make_shared<Waiter>());
    (void)inserted;
    waiter = it->second;
  }
  ThreadContext* ctx = current();
  Status status = Status::ok();
  if (ctx != nullptr) {
    // Block as a logical thread: remain responsive to incoming events
    // (a synchronously-blocked raiser can still be TERMINATEd).
    status = wait_until(*ctx,
                        [&] {
                          std::lock_guard<std::mutex> lock(waiter->mu);
                          return waiter->verdict.has_value();
                        },
                        timeout);
  } else {
    std::unique_lock<std::mutex> lock(waiter->mu);
    if (!waiter->cv.wait_for(lock, timeout,
                             [&] { return waiter->verdict.has_value(); })) {
      status = Status{StatusCode::kTimeout, "await_resume"};
    }
  }
  {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    waiters_.erase(wait_token);
  }
  if (!status.is_ok()) return status;
  std::lock_guard<std::mutex> lock(waiter->mu);
  if (!waiter->verdict.has_value()) {
    return Status{StatusCode::kInternal, "woken without verdict"};
  }
  // The verdict applies to the TARGET of the raise; whether it also applies
  // to the blocked raiser is the events layer's decision (it does when the
  // raiser raised at itself — the exception-handling shape, §6.1).
  return *waiter->verdict;
}

Status Kernel::resume_waiter(std::uint64_t wait_token, Verdict verdict) {
  // Child of whatever got us here: the handler's span for a local resume,
  // the rpc.serve span when the handler node RPCed kernel.resume.
  obs::SpanGuard span("resume", self_.value());
  std::shared_ptr<Waiter> waiter;
  {
    std::lock_guard<std::mutex> lock(waiters_mu_);
    auto it = waiters_.find(wait_token);
    if (it == waiters_.end()) {
      return {StatusCode::kNoSuchThread, "no waiter for token"};
    }
    waiter = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(waiter->mu);
    if (waiter->verdict.has_value()) {
      return {StatusCode::kAlreadyExists, "already resumed"};
    }
    waiter->verdict = verdict;
  }
  waiter->cv.notify_all();
  // A raiser blocked as a logical thread waits on its context cv; nudge all
  // local contexts cheaply via their own condition variables.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [tid, ctx] : contexts_) ctx->notify();
  return Status::ok();
}

// --- kernel RPC methods --------------------------------------------------------

Result<rpc::Payload> Kernel::rpc_deliver(NodeId, Reader& args) {
  EventNotice notice = EventNotice::deserialize(args);
  const bool urgent = args.get_bool();
  const Status status = deliver_local(notice, urgent);
  if (!status.is_ok()) return status;
  return rpc::Payload{};
}

Result<rpc::Payload> Kernel::rpc_resume(NodeId, Reader& args) {
  const auto token = args.get<std::uint64_t>();
  const auto verdict = args.get<Verdict>();
  const Status status = resume_waiter(token, verdict);
  if (!status.is_ok()) return status;
  return rpc::Payload{};
}

Result<rpc::Payload> Kernel::rpc_probe_hop(NodeId, Reader& args) {
  const auto tid = args.get_id<ThreadTag>();
  Writer w;
  auto ctx = find_context(tid);
  if (ctx != nullptr) {
    if (ctx->here()) {
      w.put(HopState::kHere);
      w.put(NodeId{});
    } else {
      w.put(HopState::kDeparted);
      w.put(ctx->next_hop());
    }
  } else if (is_tombstoned(tid)) {
    w.put(HopState::kDead);
    w.put(NodeId{});
  } else {
    w.put(HopState::kUnknown);
    w.put(NodeId{});
  }
  return std::move(w).take();
}

// --- locators (§7.1) -----------------------------------------------------------

Result<NodeId> Kernel::locate(ThreadId tid, LocatorKind kind) {
  // Local checks are free under every strategy.
  auto ctx = find_context(tid);
  if (ctx != nullptr && ctx->here()) return self_;
  if (is_tombstoned(tid)) {
    return Status{StatusCode::kDeadTarget, tid.to_string()};
  }

  // Cache consult: a hit short-circuits the O(n)-message / O(hops)-RTT
  // strategy to a single probe at the hinted node.  The probe keeps locate()
  // authoritative — a stale hint costs one bounded RTT, never a wrong answer.
  if (auto hint = location_cache_.lookup(tid);
      hint.has_value() && *hint != self_) {
    Writer w;
    w.put(tid);
    auto reply = rpc_.call(*hint, kProbeHopMethod, std::move(w).take(),
                           config_.locate_timeout);
    if (reply.is_ok()) {
      try {
        Reader r(std::move(reply).value());
        const auto state = r.get<HopState>();
        (void)r.get_id<NodeTag>();
        if (state == HopState::kHere) return *hint;
        if (state == HopState::kDead) {
          location_cache_.note_stale(tid);
          return Status{StatusCode::kDeadTarget, tid.to_string()};
        }
      } catch (const DeserializeError& e) {
        DOCT_LOG(kError) << "malformed probe reply: " << e.what();
      }
    }
    location_cache_.note_stale(tid);
  }
  return locate_fresh(tid, kind);
}

Result<NodeId> Kernel::locate_fresh(ThreadId tid, LocatorKind kind) {
  auto ctx = find_context(tid);
  if (ctx != nullptr && ctx->here()) return self_;
  if (is_tombstoned(tid)) {
    return Status{StatusCode::kDeadTarget, tid.to_string()};
  }
  Result<NodeId> found = [&]() -> Result<NodeId> {
    switch (kind) {
      case LocatorKind::kBroadcast:
        return locate_broadcast(tid);
      case LocatorKind::kPathFollow:
        return locate_path_follow(tid);
      case LocatorKind::kMulticast:
        return locate_multicast(tid);
    }
    return Status{StatusCode::kInvalidArgument, "unknown locator"};
  }();
  if (found.is_ok() && found.value() != self_) {
    location_cache_.note(tid, found.value());
  }
  return found;
}

Result<NodeId> Kernel::locate_broadcast(ThreadId tid) {
  const std::uint64_t token = new_wait_token();
  auto pending = std::make_shared<LocatePending>();
  {
    std::lock_guard<std::mutex> lock(locate_mu_);
    locates_[token] = pending;
  }
  Writer w;
  w.put(token);
  w.put(tid);
  network_.broadcast(net::Message{
      .from = self_,
      .to = NodeId{},
      .kind = net::kLocateProbe,
      .call = CallId{},
      .payload = std::move(w).take(),
  });
  std::unique_lock<std::mutex> lock(pending->mu);
  pending->cv.wait_for(lock, config_.locate_timeout,
                       [&] { return pending->found.has_value(); });
  const auto found = pending->found;
  lock.unlock();
  {
    std::lock_guard<std::mutex> glock(locate_mu_);
    locates_.erase(token);
  }
  if (!found.has_value()) {
    return Status{StatusCode::kNoSuchThread, tid.to_string()};
  }
  if (!found->valid()) {
    return Status{StatusCode::kDeadTarget, tid.to_string()};
  }
  return *found;
}

Result<NodeId> Kernel::locate_path_follow(ThreadId tid) {
  // §7.1: "Starting with the root node, one can traverse the path of the
  // thread, using information in the system's thread-control blocks."
  NodeId node = IdGenerator::thread_root_node(tid);
  const std::size_t max_hops = network_.nodes().size() + 4;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    if (node == self_) {
      auto ctx = find_context(tid);
      if (ctx == nullptr) {
        if (is_tombstoned(tid)) {
          return Status{StatusCode::kDeadTarget, tid.to_string()};
        }
        return Status{StatusCode::kNoSuchThread, tid.to_string()};
      }
      if (ctx->here()) return self_;
      node = ctx->next_hop();
      continue;
    }
    Writer w;
    w.put(tid);
    bump(&AtomicStats::locate_probes_sent);
    auto reply = rpc_.call(node, kProbeHopMethod, std::move(w).take(),
                           config_.locate_timeout);
    if (!reply.is_ok()) return reply.status();
    Reader r(std::move(reply).value());
    const auto state = r.get<HopState>();
    const auto next = r.get_id<NodeTag>();
    switch (state) {
      case HopState::kHere:
        return node;
      case HopState::kDeparted:
        node = next;
        break;
      case HopState::kDead:
        return Status{StatusCode::kDeadTarget, tid.to_string()};
      case HopState::kUnknown:
        // The trail is broken — exactly the miss the paper predicts for
        // threads spawned by non-claimable asynchronous invocations.
        return Status{StatusCode::kNoSuchThread, tid.to_string()};
    }
  }
  return Status{StatusCode::kNoSuchThread, "trail loop for " + tid.to_string()};
}

Result<NodeId> Kernel::locate_multicast(ThreadId tid) {
  if (!config_.maintain_multicast_groups) {
    return Status{StatusCode::kInvalidArgument,
                  "multicast thread tracking disabled"};
  }
  const std::uint64_t token = new_wait_token();
  auto pending = std::make_shared<LocatePending>();
  {
    std::lock_guard<std::mutex> lock(locate_mu_);
    locates_[token] = pending;
  }
  Writer w;
  w.put(token);
  w.put(tid);
  const Status sent =
      network_.multicast(thread_multicast_group(tid), net::Message{
                                                          .from = self_,
                                                          .to = NodeId{},
                                                          .kind = net::kLocateProbe,
                                                          .call = CallId{},
                                                          .payload = std::move(w).take(),
                                                      });
  if (!sent.is_ok()) {
    std::lock_guard<std::mutex> glock(locate_mu_);
    locates_.erase(token);
    return Status{StatusCode::kNoSuchThread, tid.to_string()};
  }
  std::unique_lock<std::mutex> lock(pending->mu);
  pending->cv.wait_for(lock, config_.locate_timeout,
                       [&] { return pending->found.has_value(); });
  const auto found = pending->found;
  lock.unlock();
  {
    std::lock_guard<std::mutex> glock(locate_mu_);
    locates_.erase(token);
  }
  if (!found.has_value()) {
    return Status{StatusCode::kNoSuchThread, tid.to_string()};
  }
  if (!found->valid()) {
    return Status{StatusCode::kDeadTarget, tid.to_string()};
  }
  return *found;
}

void Kernel::on_locate_probe(const net::Message& message) {
  std::uint64_t token = 0;
  ThreadId tid;
  try {
    Reader r(message.payload.share());
    token = r.get<std::uint64_t>();
    tid = r.get_id<ThreadTag>();
  } catch (const DeserializeError& e) {
    DOCT_LOG(kError) << "malformed locate probe: " << e.what();
    return;
  }
  auto ctx = find_context(tid);
  const bool present = ctx != nullptr && ctx->here();
  const bool dead = ctx == nullptr && is_tombstoned(tid);
  if (!present && !dead) return;  // stay silent
  Writer w;
  w.put(token);
  w.put(present);
  w.put(dead);
  w.put(self_);
  network_.send(net::Message{
      .from = self_,
      .to = message.from,
      .kind = net::kLocateReply,
      .call = CallId{},
      .payload = std::move(w).take(),
  });
}

void Kernel::on_locate_reply(const net::Message& message) {
  std::uint64_t token = 0;
  bool present = false;
  bool dead = false;
  NodeId node;
  try {
    Reader r(message.payload.share());
    token = r.get<std::uint64_t>();
    present = r.get_bool();
    dead = r.get_bool();
    node = r.get_id<NodeTag>();
  } catch (const DeserializeError& e) {
    DOCT_LOG(kError) << "malformed locate reply: " << e.what();
    return;
  }
  std::shared_ptr<LocatePending> pending;
  {
    std::lock_guard<std::mutex> lock(locate_mu_);
    auto it = locates_.find(token);
    if (it == locates_.end()) return;  // late reply
    pending = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(pending->mu);
    if (!pending->found.has_value()) {
      pending->found = present ? node : NodeId{};  // invalid id == dead
      (void)dead;
    }
  }
  pending->cv.notify_all();
}

// --- migration -----------------------------------------------------------------

rpc::Payload Kernel::serialize_context_core(ThreadContext& ctx) {
  Writer w;
  w.put(ctx.tid());
  ctx.with_attributes([&](ThreadAttributes& a) { a.serialize(w); });
  w.put(ctx.terminated());
  return std::move(w).take();
}

Result<rpc::Payload> Kernel::travel(
    NodeId dest,
    const std::function<Result<rpc::Payload>(const rpc::Payload& ctx_core)>&
        call) {
  ThreadContext* ctx = current();
  if (ctx == nullptr) {
    return Status{StatusCode::kInvalidArgument, "not inside a logical thread"};
  }
  if (ctx->terminated()) {
    return Status{StatusCode::kTerminated, ctx->tid().to_string()};
  }

  const rpc::Payload core = serialize_context_core(*ctx);
  stop_timers_for(ctx->tid());
  ctx->depart(dest);
  // We know exactly where the thread is going: seed the cache so raises at
  // it from this node skip the locate while it is away.
  location_cache_.note(ctx->tid(), dest);
  bump(&AtomicStats::migrations_out);

  auto result = call(core);

  ctx->arrive_back();
  // Back home: the hint now points away from the thread's true location.
  location_cache_.invalidate(ctx->tid());
  if (result.is_ok()) {
    // Reply layout: [ctx_core_out][user payload...]; we consume the core and
    // hand the rest to the caller.
    try {
      Reader r(result.value());
      auto core_out = r.get_bytes();
      Reader core_reader(std::move(core_out));
      (void)core_reader.get_id<ThreadTag>();
      ThreadAttributes updated = ThreadAttributes::deserialize(core_reader);
      const bool terminated = core_reader.get_bool();
      ctx->with_attributes(
          [&](ThreadAttributes& a) { a = std::move(updated); });
      if (terminated) ctx->mark_terminated();
      rpc::Payload user(result.value().begin() +
                            static_cast<long>(result.value().size() -
                                              r.remaining()),
                        result.value().end());
      start_timers_for(*ctx);
      // Invocation return is a delivery point.
      const Status polled = poll_events();
      if (!polled.is_ok()) return polled;
      return user;
    } catch (const DeserializeError& e) {
      start_timers_for(*ctx);
      return Status{StatusCode::kInternal,
                    std::string("malformed travel reply: ") + e.what()};
    }
  }
  start_timers_for(*ctx);
  const Status polled = poll_events();
  if (!polled.is_ok()) return polled;
  return result.status();
}

Result<rpc::Payload> Kernel::adopt_and_run(
    const rpc::Payload& ctx_core,
    const std::function<Status(ThreadContext&)>& body) {
  ThreadId tid;
  ThreadAttributes attrs;
  bool already_terminated = false;
  try {
    Reader r(ctx_core);
    tid = r.get_id<ThreadTag>();
    attrs = ThreadAttributes::deserialize(r);
    already_terminated = r.get_bool();
  } catch (const DeserializeError& e) {
    return Status{StatusCode::kInternal,
                  std::string("malformed context core: ") + e.what()};
  }

  auto ctx = std::make_shared<ThreadContext>(tid, self_);
  ctx->attributes() = std::move(attrs);
  if (already_terminated) ctx->mark_terminated();
  register_context(ctx);
  multicast_join(tid);
  start_timers_for(*ctx);
  bump(&AtomicStats::migrations_in);

  // Bind this OS thread (an RPC worker) to the adopted logical thread,
  // preserving any outer binding (re-entrant A->B->A invocations).
  ThreadContext* const saved_ctx = g_current_ctx;
  Kernel* const saved_kernel = g_current_kernel;
  g_current_ctx = ctx.get();
  g_current_kernel = this;

  // Invocation entry is a delivery point.
  Status status = poll_events();
  if (status.is_ok()) {
    status = body(*ctx);
  }
  // Invocation exit is a delivery point (unless already terminated).
  if (!ctx->terminated()) {
    const Status polled = poll_events();
    if (status.is_ok() && !polled.is_ok()) status = polled;
  }

  g_current_ctx = saved_ctx;
  g_current_kernel = saved_kernel;

  const rpc::Payload core_out = serialize_context_core(*ctx);
  stop_timers_for(tid);
  multicast_leave(tid);
  unregister_context(tid, /*tombstone=*/false);

  if (!status.is_ok() && status.code() != StatusCode::kTerminated) {
    return status;
  }
  return core_out;
}

// --- timers (§6.2) ----------------------------------------------------------

Status Kernel::add_timer(ThreadContext& ctx, TimerRecord record) {
  if (record.period_us == 0) {
    return {StatusCode::kInvalidArgument, "timer period must be positive"};
  }
  ctx.with_attributes([&](ThreadAttributes& a) {
    std::erase_if(a.timers,
                  [&](const TimerRecord& t) { return t.event == record.event; });
    a.timers.push_back(record);
  });
  {
    std::lock_guard<std::mutex> lock(timers_mu_);
    std::erase_if(timers_, [&](const TimerEntry& e) {
      if (e.tid == ctx.tid() && e.record.event == record.event) {
        if (timer_wheel_ && e.wheel_timer != 0) {
          timer_wheel_->cancel(e.wheel_timer);
        }
        return true;
      }
      return false;
    });
    timers_.push_back(TimerEntry{
        ctx.tid(), record,
        clock_.now() + std::chrono::microseconds(record.period_us)});
    if (timer_wheel_) arm_wheel_locked(timers_.back());
  }
  timers_cv_.notify_all();
  return Status::ok();
}

Status Kernel::remove_timer(ThreadContext& ctx, EventId event) {
  ctx.with_attributes([&](ThreadAttributes& a) {
    std::erase_if(a.timers,
                  [&](const TimerRecord& t) { return t.event == event; });
  });
  std::lock_guard<std::mutex> lock(timers_mu_);
  std::erase_if(timers_, [&](const TimerEntry& e) {
    if (e.tid == ctx.tid() && e.record.event == event) {
      if (timer_wheel_ && e.wheel_timer != 0) {
        timer_wheel_->cancel(e.wheel_timer);
      }
      return true;
    }
    return false;
  });
  return Status::ok();
}

void Kernel::start_timers_for(ThreadContext& ctx) {
  // §6.2: "When the thread visits another node, the thread attribute list is
  // examined and the event registration information is recreated."
  const auto records = ctx.with_attributes(
      [](ThreadAttributes& a) { return a.timers; });
  if (records.empty()) return;
  {
    std::lock_guard<std::mutex> lock(timers_mu_);
    for (const auto& record : records) {
      timers_.push_back(TimerEntry{
          ctx.tid(), record,
          clock_.now() + std::chrono::microseconds(record.period_us)});
      if (timer_wheel_) arm_wheel_locked(timers_.back());
    }
  }
  timers_cv_.notify_all();
}

void Kernel::stop_timers_for(ThreadId tid) {
  std::lock_guard<std::mutex> lock(timers_mu_);
  std::erase_if(timers_, [&](const TimerEntry& e) {
    if (e.tid != tid) return false;
    if (timer_wheel_ && e.wheel_timer != 0) timer_wheel_->cancel(e.wheel_timer);
    return true;
  });
}

void Kernel::arm_wheel_locked(TimerEntry& entry) {
  const ThreadId tid = entry.tid;
  const EventId event = entry.record.event;
  entry.wheel_timer = timer_wheel_->schedule(
      std::chrono::microseconds(entry.record.period_us),
      [this, tid, event] { on_wheel_timer(tid, event); });
}

void Kernel::on_wheel_timer(ThreadId tid, EventId event) {
  // The one-shot wheel timer has fired; look the registry entry back up (it
  // may have been removed or migrated away since arming — then do nothing).
  TimerRecord fired;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(timers_mu_);
    if (timers_shutdown_) return;
    auto it = std::find_if(timers_.begin(), timers_.end(),
                           [&](const TimerEntry& e) {
                             return e.tid == tid && e.record.event == event;
                           });
    if (it == timers_.end()) return;
    fired = it->record;
    found = true;
    if (fired.one_shot) {
      timers_.erase(it);
    } else {
      arm_wheel_locked(*it);  // next period
    }
  }
  if (!found) return;
  auto ctx = find_context(tid);
  if (ctx != nullptr && ctx->here() && !ctx->terminated()) {
    EventNotice notice;
    notice.event = fired.event;
    notice.event_name = "TIMER";
    notice.target_thread = tid;
    notice.raiser_node = self_;
    notice.system_info = "timer";
    ctx->enqueue(notice, /*urgent=*/false);
    if (fired.one_shot) {
      ctx->with_attributes([&](ThreadAttributes& a) {
        std::erase_if(a.timers,
                      [&](const TimerRecord& t) { return t.event == event; });
      });
    }
    bump(&AtomicStats::timer_events);
  }
}

void Kernel::timer_loop() {
  std::unique_lock<std::mutex> lock(timers_mu_);
  while (!timers_shutdown_) {
    if (timers_.empty()) {
      timers_cv_.wait(lock, [&] { return !timers_.empty() || timers_shutdown_; });
      continue;
    }
    auto next = std::min_element(
        timers_.begin(), timers_.end(),
        [](const TimerEntry& a, const TimerEntry& b) {
          return a.next_fire < b.next_fire;
        });
    const Duration now = clock_.now();
    if (next->next_fire > now) {
      timers_cv_.wait_until(lock, TimePoint{} + next->next_fire);
      continue;
    }
    TimerEntry fired = *next;
    if (fired.record.one_shot) {
      timers_.erase(next);
    } else {
      next->next_fire = now + std::chrono::microseconds(fired.record.period_us);
    }
    lock.unlock();

    auto ctx = find_context(fired.tid);
    if (ctx != nullptr && ctx->here() && !ctx->terminated()) {
      EventNotice notice;
      notice.event = fired.record.event;
      notice.event_name = "TIMER";
      notice.target_thread = fired.tid;
      notice.raiser_node = self_;
      notice.system_info = "timer";
      ctx->enqueue(notice, /*urgent=*/false);
      if (fired.record.one_shot) {
        ctx->with_attributes([&](ThreadAttributes& a) {
          std::erase_if(a.timers, [&](const TimerRecord& t) {
            return t.event == fired.record.event;
          });
        });
      }
      bump(&AtomicStats::timer_events);
    }
    lock.lock();
  }
}

void Kernel::bump(std::atomic<std::uint64_t> AtomicStats::* counter) {
  (stats_.*counter).fetch_add(1, std::memory_order_relaxed);
}

KernelStats Kernel::stats() const {
  KernelStats out;
  out.threads_spawned = stats_.threads_spawned.load(std::memory_order_relaxed);
  out.threads_terminated =
      stats_.threads_terminated.load(std::memory_order_relaxed);
  out.notices_delivered =
      stats_.notices_delivered.load(std::memory_order_relaxed);
  out.notices_dead_target =
      stats_.notices_dead_target.load(std::memory_order_relaxed);
  out.locate_probes_sent =
      stats_.locate_probes_sent.load(std::memory_order_relaxed);
  out.migrations_in = stats_.migrations_in.load(std::memory_order_relaxed);
  out.migrations_out = stats_.migrations_out.load(std::memory_order_relaxed);
  out.timer_events = stats_.timer_events.load(std::memory_order_relaxed);
  out.census_peer_down_skips =
      stats_.census_peer_down_skips.load(std::memory_order_relaxed);
  out.cached_deliveries =
      stats_.cached_deliveries.load(std::memory_order_relaxed);
  return out;
}

void Kernel::reset_stats() {
  stats_.threads_spawned.store(0, std::memory_order_relaxed);
  stats_.threads_terminated.store(0, std::memory_order_relaxed);
  stats_.notices_delivered.store(0, std::memory_order_relaxed);
  stats_.notices_dead_target.store(0, std::memory_order_relaxed);
  stats_.locate_probes_sent.store(0, std::memory_order_relaxed);
  stats_.migrations_in.store(0, std::memory_order_relaxed);
  stats_.migrations_out.store(0, std::memory_order_relaxed);
  stats_.timer_events.store(0, std::memory_order_relaxed);
  stats_.census_peer_down_skips.store(0, std::memory_order_relaxed);
  stats_.cached_deliveries.store(0, std::memory_order_relaxed);
}

}  // namespace doct::kernel
