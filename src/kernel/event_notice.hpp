// EventNotice — the unit that travels when an event is raised (§3).
//
// "Raising an event results in a notice being sent to a set of interested
// recipients."  The notice carries the event identity, the addressing used
// (exactly one of thread / group / object is valid, mirroring the §5.3
// table), raiser identity for synchronous resume, and the event block's data:
// kernel-defined system information plus an optional user-defined structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/serialize.hpp"

namespace doct::kernel {

struct EventNotice {
  EventId event;
  std::string event_name;  // registered name, e.g. "TERMINATE" (§3: naming)

  // Destination: exactly one valid id (raise(e,tid) / raise(e,gtid) /
  // raise(e,oid)).
  ThreadId target_thread;
  GroupId target_group;
  ObjectId target_object;

  // Raiser identity.  For raise_and_wait the raiser blocks until a handler
  // resumes it; wait_token correlates the resume message.
  ThreadId raiser;
  NodeId raiser_node;
  bool synchronous = false;
  std::uint64_t wait_token = 0;

  // Event block contents (§4.1): "generic system information such as state
  // of the registers ... and space for user defined data structures".
  ObjectId raised_in;        // object context at the raise point
  std::string system_info;   // simulated machine state (pc, fault address...)
  std::vector<std::uint8_t> user_data;

  // Causal trace identity (obs layer): the trace minted at the raise point
  // and the span that emitted this notice.  0/0 when tracing is off; carried
  // on the wire so a remote handler joins the raiser's trace.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  void serialize(Writer& w) const;
  static EventNotice deserialize(Reader& r);
  [[nodiscard]] bool operator==(const EventNotice&) const = default;
};

}  // namespace doct::kernel
