// Per-node thread-location cache (tid -> last-known hosting node).
//
// §7.1's locators are authoritative but expensive: a broadcast probe is O(n)
// messages, path-following is up to O(hops) RTTs.  The cache remembers where
// a locate (or a successful remote delivery) last found a thread so the next
// raise can skip the locate entirely.  Entries are HINTS, not truth:
//
//   * a lookup hit may be stale — the thread moved or died since.  The
//     deliver path validates by simply delivering: a kNoSuchThread reply
//     means the hint was wrong, the entry is dropped (note_stale) and the
//     configured locator runs as the fallback.
//   * thread exits and migrations invalidate the local entry eagerly
//     (unregister_context / travel), and a confirmed-down peer drops every
//     entry pointing at it (note_peer_down -> invalidate_node), so cached
//     entries for crashed nodes cannot wedge delivery behind RPC timeouts.
//
// This is the mechanism trade-off studied in "Design and Evaluation of
// Mechanisms for a Multicomputer Object Store" (PAPERS.md): cheap optimistic
// hints plus invalidation-on-move beat an authoritative lookup per use.
//
// Internally sharded: lookups on different threads never contend, and no
// shard lock is held across any I/O.  Counters are relaxed atomics.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/ids.hpp"

namespace doct::kernel {

struct LocationCacheConfig {
  bool enabled = true;
  std::size_t capacity = 4096;  // total entries across all shards
};

struct LocationCacheStats {
  std::uint64_t hits = 0;           // lookups that returned a hint
  std::uint64_t misses = 0;         // lookups with no entry
  std::uint64_t stale = 0;          // hints that proved wrong at delivery
  std::uint64_t invalidations = 0;  // eager drops (exit/migrate/node-down)
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;      // capacity pressure drops
};

class LocationCache {
 public:
  explicit LocationCache(LocationCacheConfig config = {}) : config_(config) {}

  LocationCache(const LocationCache&) = delete;
  LocationCache& operator=(const LocationCache&) = delete;

  [[nodiscard]] bool enabled() const { return config_.enabled; }

  // Returns the cached hint for `tid`, if any.  Counts a hit or a miss.
  std::optional<NodeId> lookup(ThreadId tid) {
    if (!config_.enabled) return std::nullopt;
    Shard& shard = shard_for(tid);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(tid);
    if (it == shard.entries.end()) {
      bump(misses_);
      return std::nullopt;
    }
    bump(hits_);
    return it->second;
  }

  // Records (or refreshes) where a locate / successful delivery found `tid`.
  void note(ThreadId tid, NodeId node) {
    if (!config_.enabled || !node.valid()) return;
    Shard& shard = shard_for(tid);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(tid);
    if (it != shard.entries.end()) {
      it->second = node;
      return;
    }
    if (shard.entries.size() >= std::max<std::size_t>(
                                    1, config_.capacity / kShards)) {
      // Capacity pressure: drop an arbitrary resident.  Hints are cheap to
      // re-learn, so plain displacement beats LRU bookkeeping on this path.
      shard.entries.erase(shard.entries.begin());
      bump(evictions_);
    }
    shard.entries.emplace(tid, node);
    bump(inserts_);
  }

  // The hint for `tid` was consulted and proved wrong: drop it.
  void note_stale(ThreadId tid) {
    if (!config_.enabled) return;
    if (erase(tid)) bump(stale_);
  }

  // Eager drop on a move/exit the local kernel observed directly.
  void invalidate(ThreadId tid) {
    if (!config_.enabled) return;
    if (erase(tid)) bump(invalidations_);
  }

  // A peer is confirmed down: every hint pointing at it is now useless (and
  // worse than useless — each one costs a full RPC timeout to disprove).
  void invalidate_node(NodeId node) {
    if (!config_.enabled) return;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.entries.begin(); it != shard.entries.end();) {
        if (it->second == node) {
          it = shard.entries.erase(it);
          bump(invalidations_);
        } else {
          ++it;
        }
      }
    }
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.entries.clear();
    }
  }

  [[nodiscard]] LocationCacheStats stats() const {
    LocationCacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.stale = stale_.load(std::memory_order_relaxed);
    out.invalidations = invalidations_.load(std::memory_order_relaxed);
    out.inserts = inserts_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    return out;
  }

  void reset_stats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    stale_.store(0, std::memory_order_relaxed);
    invalidations_.store(0, std::memory_order_relaxed);
    inserts_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    std::mutex mu;
    std::unordered_map<ThreadId, NodeId> entries;
  };

  Shard& shard_for(ThreadId tid) {
    // Thread ids are sequential per node; fold the high (root-node) bits in
    // so one spawner's threads still spread across shards.
    const std::uint64_t v = tid.value() * 0x9E3779B97F4A7C15ULL;
    return shards_[(v >> 32) % kShards];
  }

  bool erase(ThreadId tid) {
    Shard& shard = shard_for(tid);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.entries.erase(tid) > 0;
  }

  static void bump(std::atomic<std::uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  LocationCacheConfig config_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stale_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace doct::kernel
