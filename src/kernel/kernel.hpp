// Per-node kernel: distributed logical threads, thread groups, thread
// location, event delivery plumbing, timers, and migration primitives.
//
// Responsibilities (paper §7 "OS Support for Event Notification"):
//   * spawn/terminate logical threads; children inherit thread attributes
//     (§6.3: "Any subsequent thread spawned from the root thread inherits the
//     thread attributes including the event registry and the handler
//     information").
//   * maintain the TCB trail that the path-following locator traverses, and
//     per-thread multicast groups for the multicast locator (§7.1).
//   * deliver EventNotices to threads present at this node, waking blocked
//     carriers; queue urgency for control events.
//   * resume synchronous raisers (raise_and_wait) when a handler decides.
//   * run per-thread timers, recreated from thread attributes on every
//     migration (§6.2).
//   * keep tombstones of dead threads so a raiser gets DEAD_TARGET instead of
//     silence (§7: fault-tolerance discussion).
//
// The kernel deliberately does NOT know how handlers are found or executed —
// that is the events layer's job, injected via set_delivery_callback().  The
// kernel only knows how to move notices to the right thread on the right
// node and how to stop/resume carriers.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/id_gen.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/timer_wheel.hpp"
#include "exec/executor.hpp"
#include "kernel/location_cache.hpp"
#include "kernel/thread_context.hpp"
#include "net/demux.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "rpc/rpc.hpp"

namespace doct::kernel {

// Thread-location strategies (§7.1).
enum class LocatorKind : std::uint8_t {
  kBroadcast = 0,   // flood a probe; O(n) messages, 1 RTT
  kPathFollow = 1,  // walk the TCB trail from the root node; <= hops RTTs
  kMulticast = 2,   // per-thread multicast group maintained on each hop
};

struct KernelConfig {
  LocatorKind locator = LocatorKind::kPathFollow;
  Duration locate_timeout = std::chrono::seconds(2);
  Duration tombstone_ttl = std::chrono::seconds(30);
  bool maintain_multicast_groups = true;  // cost of kMulticast readiness
  // Thread-location cache: consulted before running the configured locator.
  // Disable (enabled=false) to measure the bare §7.1 strategies (bench E1).
  LocationCacheConfig location_cache;
  // The node's unified executor (lanes, capacities, overload policies).
  // NodeRuntime constructs one exec::Executor per node from this; event
  // lane width 1 is the §7 master handler thread, wider trades serialization
  // for parallel handler execution.
  exec::ExecutorConfig executor;
};

struct KernelStats {
  std::uint64_t threads_spawned = 0;
  std::uint64_t threads_terminated = 0;
  std::uint64_t notices_delivered = 0;   // enqueued to a local thread
  std::uint64_t notices_dead_target = 0;
  std::uint64_t locate_probes_sent = 0;  // path-follow hop RPCs
  std::uint64_t migrations_in = 0;
  std::uint64_t migrations_out = 0;
  std::uint64_t timer_events = 0;
  std::uint64_t census_peer_down_skips = 0;  // note_peer_down fast-paths
  std::uint64_t cached_deliveries = 0;  // remote raises sent via a cache hit
};

// Verdict a handler renders for the stopped thread (§3: after the handler
// finishes, the suspended thread is resumed or terminated) and, for
// synchronous raises, for the blocked raiser.
enum class Verdict : std::uint8_t {
  kResume = 0,
  kTerminate = 1,
  kPropagate = 2,  // thread-based chains only: pass to the next handler out
};

// The events layer's entry point: given the thread context stopped at a
// delivery point and the notice, run handlers and render a verdict.
using DeliveryCallback =
    std::function<Verdict(ThreadContext& ctx, const EventNotice& notice)>;

// Body of a logical thread.  Runs with the kernel's thread-local "current
// context" set; kernel APIs (poll_events, sleep, spawn) find it implicitly.
using ThreadBody = std::function<void()>;

struct SpawnOptions {
  GroupId group;                 // default: a fresh group
  std::optional<ThreadAttributes> attributes;  // default: inherit or fresh
  // Used by the objects layer for asynchronous invocations: a claimable
  // async child gets a tid allocated at the *caller's* node (so its root node
  // points back along the trail); the kernel then must not mint a fresh one.
  ThreadId explicit_tid;
};

class Kernel {
 public:
  Kernel(net::Transport& network, net::Demux& demux, rpc::RpcEndpoint& rpc,
         NodeId self, IdGenerator& ids, KernelConfig config = {});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] IdGenerator& ids() { return ids_; }
  [[nodiscard]] const KernelConfig& config() const { return config_; }

  // --- threads -----------------------------------------------------------

  // Spawns a logical thread rooted at this node.  If called from inside a
  // running logical thread, the child inherits that thread's attributes
  // (handler chain included) unless options override them.
  ThreadId spawn(ThreadBody body, SpawnOptions options = {});

  // Blocks until the given locally-rooted thread's body returns.
  Status join_thread(ThreadId tid, Duration timeout = std::chrono::seconds(30));

  // Context of the logical thread currently executing on this OS thread
  // (nullptr outside any logical thread).
  static ThreadContext* current();

  // Shared handle to a context registered at this node (nullptr if unknown).
  // Subsystems that run work against a context on another OS thread (e.g.
  // surrogate handler execution) must hold this so the context outlives a
  // raiser that gives up waiting.
  [[nodiscard]] std::shared_ptr<ThreadContext> share_context(
      ThreadId tid) const {
    return find_context(tid);
  }

  // Processes pending notices for the current thread now (a delivery point).
  // Returns kTerminated if a handler terminated the thread.
  Status poll_events();

  // Interruptible sleep: wakes early to run handlers, then resumes sleeping.
  Status sleep_for(Duration d);

  // Generic interruptible wait used by higher-level blocking primitives
  // (distributed locks, raise_and_wait).  Waits until `pred()` is true,
  // running delivery points whenever notices arrive.  `pred` is evaluated
  // under the context lock.
  Status wait_until(ThreadContext& ctx, const std::function<bool()>& pred,
                    Duration timeout);

  // --- delivery plumbing (events layer) -----------------------------------

  void set_delivery_callback(DeliveryCallback cb);

  // Delivers a notice to a thread present at this node.  kNoSuchThread if it
  // is not here (caller should re-locate); kDeadTarget if it died here.
  Status deliver_local(const EventNotice& notice, bool urgent);

  // Delivers to every local member of the notice's target group.  Returns
  // the number of local threads reached.
  std::size_t deliver_group_local(const EventNotice& notice, bool urgent);

  // Sends a notice to a thread anywhere in the system: locates it, then
  // RPCs kernel.deliver to the hosting node, retrying once on a move race.
  Status deliver_remote(const EventNotice& notice, bool urgent);

  // Broadcast a group notice to all nodes (plus local delivery).
  Status deliver_group(const EventNotice& notice, bool urgent);

  // Wakes a raiser blocked in raise_and_wait (called via RPC by the node
  // where the handler ran).
  Status resume_waiter(std::uint64_t wait_token, Verdict verdict);

  // Registers the wait slot for a token.  MUST be called before the notice
  // is delivered: a fast handler can resume before the raiser would
  // otherwise get around to waiting.
  void prepare_wait(std::uint64_t wait_token);

  // Blocks the current thread until resume_waiter(token) fires.  The verdict
  // applies to the raise's TARGET; the caller decides whether it also
  // applies to itself (it does when raising at oneself).
  Result<Verdict> await_resume(std::uint64_t wait_token, Duration timeout);
  [[nodiscard]] std::uint64_t new_wait_token();

  // --- location (§7.1) -----------------------------------------------------

  // Finds the node where `tid` currently executes.  Consults the location
  // cache after the local checks; a cached answer is a HINT (the thread may
  // have moved since) — callers that act on it must be prepared for
  // kNoSuchThread and fall back to locate_fresh().
  Result<NodeId> locate(ThreadId tid) { return locate(tid, config_.locator); }
  Result<NodeId> locate(ThreadId tid, LocatorKind kind);

  // Runs the locate strategy unconditionally (skipping the cache) and notes
  // the fresh answer into the cache.  Used after a cached hint proves stale.
  Result<NodeId> locate_fresh(ThreadId tid, LocatorKind kind);

  [[nodiscard]] LocationCache& location_cache() { return location_cache_; }

  // --- migration primitives (objects layer) -------------------------------

  // Marks the current thread departed to `dest`, runs `call` (which performs
  // the remote invocation RPC carrying the serialized context), then restores
  // presence and attributes from the returned bytes.  The TCB trail entry and
  // multicast-group membership are maintained here.
  struct TravelGuard;
  Result<rpc::Payload> travel(
      NodeId dest,
      const std::function<Result<rpc::Payload>(const rpc::Payload& ctx_core)>&
          call);

  // Target-side: adopts a migrating thread for the duration of `body`.
  // Deserializes the context core, runs body on the calling (RPC worker)
  // thread with current() set, and returns the re-serialized context core to
  // ship back.  `body` receives the adopted context.
  Result<rpc::Payload> adopt_and_run(
      const rpc::Payload& ctx_core,
      const std::function<Status(ThreadContext&)>& body);

  // Registers a stub (departed) context for a claimable async-invocation
  // child: the trail entry that lets path-following find the child (§7.1).
  void adopt_stub(std::shared_ptr<ThreadContext> stub);
  // Removes a stub when the child completes, leaving a tombstone so later
  // raises report DEAD_TARGET.  No-op if the context is present (here) —
  // that means it is a live thread, not a stub.
  void drop_stub(ThreadId tid, bool tombstone);

  // --- groups --------------------------------------------------------------

  [[nodiscard]] GroupId create_group();
  // ThreadIds of group members currently present at this node.
  [[nodiscard]] std::vector<ThreadId> local_group_members(GroupId group) const;
  // All threads currently present at this node.
  [[nodiscard]] std::vector<ThreadId> local_threads() const;

  // Cluster-wide census of a thread group (broadcast query, V-kernel style):
  // every node reports its local members; waits for all replies or the
  // locate timeout.  The paper's §6.3 termination recipe deliberately avoids
  // needing this (QUIT is addressed to the group), but controllers and tests
  // want the roll call.
  [[nodiscard]] Result<std::vector<ThreadId>> group_census(GroupId group);

  // Failure-detector hook: a peer is confirmed down, so any census still
  // waiting on it will never hear back.  Counts the dead peer as replied on
  // every pending census (it can contribute no members), letting callers
  // return immediately instead of burning the full locate timeout.
  void note_peer_down(NodeId peer);

  // --- timers (§6.2) -------------------------------------------------------

  // Registers a timer on the current thread's attributes and starts it here;
  // migration automatically recreates it at each node the thread visits.
  Status add_timer(ThreadContext& ctx, TimerRecord record);
  Status remove_timer(ThreadContext& ctx, EventId event);

  [[nodiscard]] KernelStats stats() const;
  void reset_stats();

  // True if the thread died at this node recently (tombstoned).
  [[nodiscard]] bool is_tombstoned(ThreadId tid) const;

  // Marks every context present at this node terminated (node shutdown):
  // carriers and adopted bodies unwind at their next delivery point.
  void terminate_all_local();

 private:
  struct RootThread {
    std::thread os_thread;
    std::shared_ptr<ThreadContext> context;
    bool done = false;
  };

  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Verdict> verdict;
  };

  struct TimerEntry {
    ThreadId tid;
    TimerRecord record;
    Duration next_fire{0};
    // Wheel-mode only: the armed one-shot wheel timer for the next fire
    // (re-armed by on_wheel_timer); 0 in the locked ablation.
    common::TimerId wheel_timer = 0;
  };

  // RPC methods.
  Result<rpc::Payload> rpc_deliver(NodeId caller, Reader& args);
  Result<rpc::Payload> rpc_resume(NodeId caller, Reader& args);
  Result<rpc::Payload> rpc_probe_hop(NodeId caller, Reader& args);

  // Broadcast/multicast locate probes arrive as raw messages.
  void on_locate_probe(const net::Message& message);
  void on_locate_reply(const net::Message& message);
  void on_group_census(const net::Message& message);
  void on_group_census_reply(const net::Message& message);

  void run_thread_body(std::shared_ptr<ThreadContext> ctx, ThreadBody body);
  Status process_pending_locked(ThreadContext& ctx,
                                std::unique_lock<std::mutex>& lock);
  void register_context(std::shared_ptr<ThreadContext> ctx);
  void unregister_context(ThreadId tid, bool tombstone);
  std::shared_ptr<ThreadContext> find_context(ThreadId tid) const;

  [[nodiscard]] GroupId thread_multicast_group(ThreadId tid) const;
  void multicast_join(ThreadId tid);
  void multicast_leave(ThreadId tid);

  Result<NodeId> locate_broadcast(ThreadId tid);
  Result<NodeId> locate_path_follow(ThreadId tid);
  Result<NodeId> locate_multicast(ThreadId tid);

  void timer_loop();
  // Wheel-mode fire path: looks up the (tid, event) entry, delivers the
  // TIMER notice, and re-arms unless one-shot.  Runs on the wheel's tick
  // thread, so it must not block.
  void on_wheel_timer(ThreadId tid, EventId event);
  // Arms (or re-arms) a registry entry's wheel timer; holds timers_mu_.
  void arm_wheel_locked(TimerEntry& entry);
  void start_timers_for(ThreadContext& ctx);
  void stop_timers_for(ThreadId tid);

  [[nodiscard]] rpc::Payload serialize_context_core(ThreadContext& ctx);

  net::Transport& network_;
  rpc::RpcEndpoint& rpc_;
  NodeId self_;
  IdGenerator& ids_;
  KernelConfig config_;
  SteadyClock clock_;

  DeliveryCallback delivery_;
  mutable std::mutex delivery_mu_;

  mutable std::mutex mu_;
  std::unordered_map<ThreadId, std::shared_ptr<ThreadContext>> contexts_;
  std::map<ThreadId, RootThread> root_threads_;
  std::condition_variable root_done_cv_;
  std::unordered_map<ThreadId, Duration> tombstones_;  // tid -> death time

  mutable std::mutex waiters_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Waiter>> waiters_;
  std::atomic<std::uint64_t> next_token_{1};

  // Pending broadcast/multicast locate requests (token -> reply slot).
  struct LocatePending {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<NodeId> found;
  };
  mutable std::mutex locate_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<LocatePending>> locates_;

  struct CensusPending {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<ThreadId> members;
    std::size_t replies = 0;
  };
  mutable std::mutex census_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<CensusPending>> censuses_;

  mutable std::mutex timers_mu_;
  std::condition_variable timers_cv_;
  std::vector<TimerEntry> timers_;  // registry; §6.2 recreation reads this
  bool timers_shutdown_ = false;
  std::thread timer_thread_;  // locked ablation: min-scan loop
  // Lockfree mode: per-record one-shot wheel timers replace the scan loop —
  // O(1) per arm/cancel.  Stopped (joined) first in the destructor.
  std::unique_ptr<common::TimerWheel> timer_wheel_;

  LocationCache location_cache_;

  // KernelStats with relaxed atomic counters: spawn/deliver/locate hot paths
  // bump without a lock; stats() snapshots.
  struct AtomicStats {
    std::atomic<std::uint64_t> threads_spawned{0};
    std::atomic<std::uint64_t> threads_terminated{0};
    std::atomic<std::uint64_t> notices_delivered{0};
    std::atomic<std::uint64_t> notices_dead_target{0};
    std::atomic<std::uint64_t> locate_probes_sent{0};
    std::atomic<std::uint64_t> migrations_in{0};
    std::atomic<std::uint64_t> migrations_out{0};
    std::atomic<std::uint64_t> timer_events{0};
    std::atomic<std::uint64_t> census_peer_down_skips{0};
    std::atomic<std::uint64_t> cached_deliveries{0};
  };
  void bump(std::atomic<std::uint64_t> AtomicStats::* counter);
  AtomicStats stats_;

  // Resolved once at construction; deliver_remote records routing latency.
  obs::Histogram* deliver_us_ = nullptr;
  // Last members: unregister before the stats/cache they read are destroyed.
  obs::MetricsRegistry::SourceHandle metrics_source_;
  obs::MetricsRegistry::SourceHandle cache_metrics_source_;
};

}  // namespace doct::kernel
