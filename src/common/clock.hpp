// Clock abstraction: benches use the real steady clock; tests that exercise
// timer events (§6.2 monitoring) use a manually advanced simulated clock so
// timer delivery is deterministic.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace doct {

using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::steady_clock::time_point;

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Duration now() const = 0;
  // Blocks until the clock reaches `deadline` (real clock: sleeps; simulated
  // clock: waits for advance()).  Returns immediately if already past.
  virtual void sleep_until(Duration deadline) = 0;
};

class SteadyClock final : public Clock {
 public:
  [[nodiscard]] Duration now() const override {
    return std::chrono::duration_cast<Duration>(
        std::chrono::steady_clock::now().time_since_epoch());
  }
  void sleep_until(Duration deadline) override;
};

// Deterministic clock: time only moves when a test calls advance().
class SimClock final : public Clock {
 public:
  [[nodiscard]] Duration now() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  void sleep_until(Duration deadline) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return now_ >= deadline || stopped_; });
  }

  void advance(Duration delta) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      now_ += delta;
    }
    cv_.notify_all();
  }

  // Releases all sleepers (used at test teardown so no thread blocks forever).
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Duration now_{0};
  bool stopped_ = false;
};

}  // namespace doct
