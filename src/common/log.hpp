// Tiny leveled logger.  Off by default (benches must not pay for logging);
// tests and examples turn it on per-severity.  Thread-safe: one global sink
// behind a mutex, messages are formatted before the lock is taken.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace doct {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_internal {
std::atomic<int>& global_level();
void emit(LogLevel level, const std::string& message);
}  // namespace log_internal

inline void set_log_level(LogLevel level) {
  log_internal::global_level().store(static_cast<int>(level),
                                     std::memory_order_relaxed);
}

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         log_internal::global_level().load(std::memory_order_relaxed);
}

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_internal::emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace doct

#define DOCT_LOG(level)                         \
  if (!::doct::log_enabled(::doct::LogLevel::level)) { \
  } else                                        \
    ::doct::LogLine(::doct::LogLevel::level)
