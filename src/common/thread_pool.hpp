// Fixed-size worker pool.  RPC servers and master handler threads execute
// work here so a node's network delivery thread is never blocked by nested
// invocations (the classic deadlock of running long work on the "interrupt"
// path).  Threads are joined in the destructor (CP.25/CP.26: no detach).
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/queue.hpp"

namespace doct {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      if (num_threads == 1) {
        // A single-worker pool (the per-node master handler thread, §7) is
        // a serial executor: batch-drain the queue so a burst of N events
        // costs one lock round-trip instead of N.  Multi-worker pools keep
        // popping one task at a time — a batch grabbed by one worker would
        // serialize work the other workers should be stealing.
        threads_.emplace_back([this] {
          while (true) {
            auto batch = tasks_.pop_all();
            if (batch.empty()) return;
            for (auto& task : batch) task();
          }
        });
      } else {
        threads_.emplace_back([this] {
          while (auto task = tasks_.pop()) (*task)();
        });
      }
    }
  }

  ~ThreadPool() { shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Returns false if the pool is shutting down.
  bool submit(std::function<void()> task) {
    return tasks_.push(std::move(task));
  }

  // Drains outstanding tasks, then joins all workers.  Idempotent.
  void shutdown() {
    tasks_.close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

 private:
  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
};

}  // namespace doct
