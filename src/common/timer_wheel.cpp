#include "common/timer_wheel.hpp"

#include <algorithm>

namespace doct::common {

namespace {
constexpr std::uint64_t kNoTick = ~std::uint64_t{0};
}  // namespace

TimerWheel::TimerWheel(Duration tick)
    : tick_(tick.count() > 0 ? tick : Duration{1}),
      epoch_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { tick_loop(); });
}

TimerWheel::~TimerWheel() { stop(); }

std::uint64_t TimerWheel::ticks_for(Duration d) const {
  if (d.count() <= 0) return 1;  // never fire early, never fire inline
  const std::uint64_t ticks =
      (static_cast<std::uint64_t>(d.count()) +
       static_cast<std::uint64_t>(tick_.count()) - 1) /
      static_cast<std::uint64_t>(tick_.count());
  return std::max<std::uint64_t>(1, ticks);
}

std::uint64_t TimerWheel::tick_of(TimePoint when) const {
  if (when <= epoch_) return 0;
  const auto since = std::chrono::duration_cast<Duration>(when - epoch_);
  return static_cast<std::uint64_t>(since.count()) /
         static_cast<std::uint64_t>(tick_.count());
}

std::uint64_t TimerWheel::ceil_tick_of(TimePoint when) const {
  if (when <= epoch_) return 0;
  // Ceiling at nanosecond precision: truncating to the Duration unit first
  // and then rounding up can still land a hair short of the real boundary,
  // which is an early fire (the invariant schedule() sells is "never
  // early").
  const auto since_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(when - epoch_);
  const auto tick_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(tick_);
  return (static_cast<std::uint64_t>(since_ns.count()) +
          static_cast<std::uint64_t>(tick_ns.count()) - 1) /
         static_cast<std::uint64_t>(tick_ns.count());
}

TimerId TimerWheel::schedule(Duration delay, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  return arm_locked(ticks_for(delay), 0, std::move(fn));
}

TimerId TimerWheel::schedule_periodic(Duration period,
                                      std::function<void()> fn) {
  const std::uint64_t ticks = ticks_for(period);
  std::lock_guard<std::mutex> lock(mu_);
  return arm_locked(ticks, ticks, std::move(fn));
}

TimerId TimerWheel::arm_locked(std::uint64_t delay_ticks,
                               std::uint64_t period_ticks,
                               std::function<void()> fn) {
  // Expiry is anchored to real time, not to the tick thread's progress
  // pointer: current_tick_ lags behind the clock whenever the thread sleeps
  // toward a far deadline (or is frozen on an idle wheel), and measuring the
  // delay from a stale tick would fire this timer early — possibly the
  // moment the thread wakes.  Ceiling rounding keeps the never-early
  // invariant at the boundary.
  const std::uint64_t now_tick =
      ceil_tick_of(std::chrono::steady_clock::now());
  const TimerId id = next_id_++;
  Timer timer;
  timer.id = id;
  timer.expiry_tick = std::max(current_tick_, now_tick) + delay_ticks;
  timer.period_ticks = period_ticks;
  timer.fn = std::make_shared<const std::function<void()>>(std::move(fn));
  file_locked(timer);
  const std::uint64_t expiry = timer.expiry_tick;
  timers_.emplace(id, std::move(timer));
  ++stats_.scheduled;
  // Satellite-fix logic, generalized: wake the tick thread only when this
  // deadline is earlier than what it is already sleeping toward.
  if (expiry < sleep_target_) cv_.notify_all();
  return id;
}

void TimerWheel::file_locked(const Timer& timer) {
  const std::uint64_t delta = timer.expiry_tick - current_tick_;
  std::uint64_t filed = timer.expiry_tick;
  std::size_t level = 0;
  if (delta < (1ull << kSlotBits)) {
    level = 0;
  } else if (delta < (1ull << (2 * kSlotBits))) {
    level = 1;
  } else if (delta < (1ull << (3 * kSlotBits))) {
    level = 2;
  } else {
    level = 3;
    const std::uint64_t horizon = (1ull << (4 * kSlotBits)) - 1;
    // Far timers clamp to the top level's farthest slot and re-cascade.
    filed = std::min(filed, current_tick_ + horizon);
  }
  const std::size_t slot =
      static_cast<std::size_t>((filed >> (level * kSlotBits)) &
                               (kSlots - 1));
  slots_[level][slot].push_back(timer.id);
}

bool TimerWheel::cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  // The slot entry is left to lazily expire; liveness is the map entry.
  if (timers_.erase(id) == 0) return false;
  ++stats_.cancelled;
  return true;
}

void TimerWheel::collect_slot_locked(std::size_t level, std::size_t slot,
                                     std::vector<Due>& due) {
  std::vector<TimerId>& ids = slots_[level][slot];
  if (ids.empty()) return;
  for (const TimerId id : ids) {
    auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // cancelled: lazily dropped here
    Timer& timer = it->second;
    if (timer.expiry_tick > current_tick_) {
      // Not due yet (a cascaded or clamped far timer): re-file closer in.
      ++stats_.cascaded;
      file_locked(timer);
      continue;
    }
    if (timer.period_ticks != 0) {
      // Periodic: fires now, stays live; re-filed after the callback runs.
      due.push_back(Due{id, timer.period_ticks, timer.fn});
    } else {
      due.push_back(Due{id, 0, std::move(timer.fn)});
      timers_.erase(it);
    }
  }
  ids.clear();
}

void TimerWheel::advance_locked(std::vector<Due>& due) {
  ++current_tick_;
  collect_slot_locked(0, static_cast<std::size_t>(current_tick_ &
                                                  (kSlots - 1)),
                      due);
  // Cascade each higher level exactly at its boundary.
  for (std::size_t level = 1; level < kLevels; ++level) {
    const std::uint64_t mask = (1ull << (level * kSlotBits)) - 1;
    if ((current_tick_ & mask) != 0) break;
    collect_slot_locked(
        level,
        static_cast<std::size_t>((current_tick_ >> (level * kSlotBits)) &
                                 (kSlots - 1)),
        due);
  }
}

std::uint64_t TimerWheel::next_due_tick_locked() const {
  if (timers_.empty()) return kNoTick;
  std::uint64_t best = kNoTick;
  // Level 0 is exact: scan the next 64 ticks' slots.
  for (std::uint64_t i = 1; i <= kSlots; ++i) {
    const std::uint64_t tick = current_tick_ + i;
    if (!slots_[0][static_cast<std::size_t>(tick & (kSlots - 1))].empty()) {
      best = tick;
      break;
    }
  }
  // Higher levels are conservative: anything there becomes due no earlier
  // than that level's next cascade boundary.
  for (std::size_t level = 1; level < kLevels; ++level) {
    bool any = false;
    for (std::size_t slot = 0; slot < kSlots && !any; ++slot) {
      any = !slots_[level][slot].empty();
    }
    if (!any) continue;
    const std::uint64_t shift = level * kSlotBits;
    const std::uint64_t boundary = ((current_tick_ >> shift) + 1) << shift;
    best = std::min(best, boundary);
  }
  return best;
}

void TimerWheel::tick_loop() {
  std::vector<Due> due;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const std::uint64_t now_tick =
        tick_of(std::chrono::steady_clock::now());
    // Skip-ahead: every tick strictly before the earliest possibly-due tick
    // has empty slots at every level, so nothing is missed by jumping.
    const std::uint64_t next_armed = next_due_tick_locked();
    if (next_armed != kNoTick && next_armed > current_tick_ + 1) {
      current_tick_ =
          std::max(current_tick_, std::min(now_tick, next_armed - 1));
    }
    due.clear();
    while (current_tick_ < now_tick && !stop_) {
      advance_locked(due);
      if (due.size() >= 1024) break;  // bound one batch; loop resumes
    }
    if (!due.empty()) {
      lock.unlock();
      for (const Due& d : due) {
        (*d.fn)();
      }
      lock.lock();
      stats_.fired += due.size();
      for (Due& d : due) {
        if (d.period_ticks == 0) continue;
        auto it = timers_.find(d.id);
        if (it == timers_.end()) continue;  // cancelled while firing
        it->second.expiry_tick = current_tick_ + d.period_ticks;
        file_locked(it->second);
      }
      continue;  // callbacks took time: re-read the clock before sleeping
    }
    const std::uint64_t next = next_due_tick_locked();
    if (next == kNoTick) {
      sleep_target_ = kNoTick;
      cv_.wait(lock);
      continue;
    }
    sleep_target_ = next;
    cv_.wait_until(lock, epoch_ + next * tick_);
    sleep_target_ = 0;  // awake: arms need not notify until we sleep again
  }
}

void TimerWheel::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

TimerWheel::Stats TimerWheel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t TimerWheel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timers_.size();
}

}  // namespace doct::common
