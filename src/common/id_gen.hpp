// Global id allocation.  Ids are unique across the whole simulated system —
// the paper assumes "given the unique name of a thread, it is possible to
// find the root node" (§7.1); we encode the root node in the high bits of a
// ThreadId so the path-following locator can recover it without a lookup.
#pragma once

#include <atomic>

#include "common/ids.hpp"

namespace doct {

class IdGenerator {
 public:
  IdGenerator() = default;
  // Multi-process clusters: each node process seeds its counter with a
  // node-distinct base (node id in bits 40..47) so plain ids (CallId,
  // GroupId, ...) minted in different OS processes never collide.  The base
  // stays inside the 48-bit sequence field of thread/object ids, so the
  // root-node-in-top-16-bits encoding is unaffected.
  explicit IdGenerator(std::uint64_t start) : counter_(start) {}

  template <typename Tag>
  [[nodiscard]] TypedId<Tag> next() {
    return TypedId<Tag>{counter_.fetch_add(1, std::memory_order_relaxed)};
  }

  // ThreadIds carry their root node in the top 16 bits (§7.1: root node is
  // derivable from the unique thread name).
  [[nodiscard]] ThreadId next_thread_id(NodeId root) {
    const auto seq = counter_.fetch_add(1, std::memory_order_relaxed);
    return ThreadId{(root.value() << 48) | (seq & 0xFFFFFFFFFFFFULL)};
  }

  [[nodiscard]] static NodeId thread_root_node(ThreadId tid) {
    return NodeId{tid.value() >> 48};
  }

  // ObjectIds carry their creating node the same way; objects do not migrate,
  // so the creating node is also the hosting node.
  [[nodiscard]] ObjectId next_object_id(NodeId creator) {
    const auto seq = counter_.fetch_add(1, std::memory_order_relaxed);
    return ObjectId{(creator.value() << 48) | (seq & 0xFFFFFFFFFFFFULL)};
  }

  [[nodiscard]] static NodeId object_home_node(ObjectId oid) {
    return NodeId{oid.value() >> 48};
  }

 private:
  std::atomic<std::uint64_t> counter_{1};  // 0 is the invalid id
};

}  // namespace doct
