// Allocation-counting test hook for the zero-alloc fast-path gate.
//
// Including this header REPLACES the global operator new/delete for the
// whole binary with counting versions, so include it in EXACTLY ONE
// translation unit per binary (the substrate test and bench_e14_substrate).
// The counters are process-wide: a measurement window is
//
//   warm up the path;                      // pools/tables populate
//   doct::common::alloc_probe_reset();
//   ... exercise the steady-state path ...
//   n = doct::common::alloc_probe_allocs();
//
// Keep the window free of gtest/benchmark machinery (asserts, state
// captures) — those allocate and would be charged to the path under test.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace doct::common {

inline std::atomic<std::uint64_t> g_alloc_probe_count{0};

inline void alloc_probe_reset() {
  g_alloc_probe_count.store(0, std::memory_order_relaxed);
}

inline std::uint64_t alloc_probe_allocs() {
  return g_alloc_probe_count.load(std::memory_order_relaxed);
}

}  // namespace doct::common

// Global replacements: every heap acquisition funnels through these (the
// sized/aligned deletes forward).  std::malloc keeps sanitizer interposition
// working under ASan/TSan.
inline void* doct_alloc_probe_alloc(std::size_t size, std::size_t align) {
  doct::common::g_alloc_probe_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new(std::size_t size) {
  return doct_alloc_probe_alloc(size, 0);
}
void* operator new[](std::size_t size) {
  return doct_alloc_probe_alloc(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return doct_alloc_probe_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return doct_alloc_probe_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
