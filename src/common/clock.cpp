#include "common/clock.hpp"

#include <thread>

namespace doct {

void SteadyClock::sleep_until(Duration deadline) {
  const auto target = TimePoint{} + deadline;
  std::this_thread::sleep_until(target);
}

}  // namespace doct
