// Small fixed-footprint building blocks for the zero-allocation hot path.
//
// The lock-free substrate (mpsc_queue.hpp) removes the *locks* from the
// delivery spine; the types here remove the *allocations*.  Every one of them
// exists because a profile of the same-node raise→handler path showed a heap
// round-trip hiding inside an innocent-looking std type:
//
//   SmallTask    std::function<void()> heap-allocates any capture larger than
//                two pointers — a moved EventNotice never fits.  SmallTask is
//                a move-only callable with a fixed in-object buffer: captures
//                up to kSmallTaskSize bytes are stored inline, and an
//                oversized capture is a compile error, not a silent malloc.
//   InlineVec    small-vector with N inline slots (reservation-key sets are
//                1–3 keys; the heap spill only triggers on pathological
//                nesting depth).
//   FixedHashSet open-addressing set of non-zero u64 keys (the executor's
//                claimed-reservation set): no per-node allocation, grows by
//                table doubling so a warmed executor never allocates again.
//   PaddedCounter a relaxed atomic u64 on its own cache line, killing false
//                sharing between unrelated hot counters packed into one
//                *Stats struct.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace doct::common {

// ---------------------------------------------------------------------------
// PaddedCounter

// One atomic counter per cache line.  Drop-in for the bare
// std::atomic<std::uint64_t> members of the hot *Stats structs: exposes the
// same fetch_add/load/store surface so call sites (including member-pointer
// bump helpers) compile unchanged.
struct alignas(64) PaddedCounter {
  std::atomic<std::uint64_t> value{0};

  std::uint64_t fetch_add(std::uint64_t delta,
                          std::memory_order order =
                              std::memory_order_relaxed) noexcept {
    return value.fetch_add(delta, order);
  }
  [[nodiscard]] std::uint64_t load(std::memory_order order =
                                       std::memory_order_relaxed)
      const noexcept {
    return value.load(order);
  }
  void store(std::uint64_t v, std::memory_order order =
                                  std::memory_order_relaxed) noexcept {
    value.store(v, order);
  }
};
static_assert(sizeof(PaddedCounter) == 64, "one counter per cache line");

// ---------------------------------------------------------------------------
// SmallTask

inline constexpr std::size_t kSmallTaskSize = 320;

// Move-only callable wrapper with a fixed inline buffer and NO heap fallback.
// The executor's task type: a capture that does not fit is a compile error,
// which is exactly the contract the zero-alloc delivery path needs — nobody
// can silently regress it back into a malloc.
template <std::size_t Size>
class BasicSmallTask {
 public:
  BasicSmallTask() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicSmallTask> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  BasicSmallTask(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  BasicSmallTask(BasicSmallTask&& other) noexcept { move_from(other); }
  BasicSmallTask& operator=(BasicSmallTask&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  BasicSmallTask(const BasicSmallTask&) = delete;
  BasicSmallTask& operator=(const BasicSmallTask&) = delete;
  ~BasicSmallTask() { reset(); }

  template <typename F>
  void emplace(F&& fn) {
    using Decayed = std::decay_t<F>;
    static_assert(sizeof(Decayed) <= Size,
                  "capture too large for SmallTask: shrink the capture or "
                  "raise kSmallTaskSize");
    static_assert(alignof(Decayed) <= alignof(std::max_align_t),
                  "over-aligned captures unsupported");
    reset();
    ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
    ops_ = &ops_for<Decayed>;
  }

  void operator()() {
    ops_->invoke(static_cast<void*>(storage_));
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(static_cast<void*>(storage_));
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move_to)(void* src, void* dst);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename F>
  static constexpr Ops ops_for{
      [](void* self) { (*static_cast<F*>(self))(); },
      [](void* src, void* dst) {
        ::new (dst) F(std::move(*static_cast<F*>(src)));
        static_cast<F*>(src)->~F();
      },
      [](void* self) { static_cast<F*>(self)->~F(); },
  };

  void move_from(BasicSmallTask& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->move_to(static_cast<void*>(other.storage_),
                          static_cast<void*>(storage_));
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Size];
  const Ops* ops_ = nullptr;
};

using SmallTask = BasicSmallTask<kSmallTaskSize>;

// ---------------------------------------------------------------------------
// InlineVec

// Minimal small-vector: N slots inline, heap spill past N.  Only what the
// reservation-key sets need (push_back, iteration, indexing, ==); keys stay
// allocation-free at the 1–3 keys every real task carries.
template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "InlineVec is for trivially copyable payloads (keys, ptrs)");

 public:
  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }
  InlineVec(const InlineVec& other) { copy_from(other); }
  InlineVec(InlineVec&& other) noexcept { steal_from(other); }
  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      clear_storage();
      copy_from(other);
    }
    return *this;
  }
  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      clear_storage();
      steal_from(other);
    }
    return *this;
  }
  ~InlineVec() { clear_storage(); }

  void push_back(const T& v) {
    if (size_ == capacity_) grow();
    data_[size_++] = v;
  }
  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  void grow() {
    const std::size_t next = capacity_ * 2;
    T* heap = new T[next];
    for (std::size_t i = 0; i < size_; ++i) heap[i] = data_[i];
    if (data_ != inline_) delete[] data_;
    data_ = heap;
    capacity_ = next;
  }
  void copy_from(const InlineVec& other) {
    if (other.size_ > N) {
      data_ = new T[other.capacity_];
      capacity_ = other.capacity_;
    }
    size_ = other.size_;
    for (std::size_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
  }
  void steal_from(InlineVec& other) noexcept {
    if (other.data_ != other.inline_) {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    size_ = other.size_;
    for (std::size_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
    other.size_ = 0;
  }
  void clear_storage() noexcept {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    capacity_ = N;
    size_ = 0;
  }

  T inline_[N]{};
  T* data_ = inline_;
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// FixedHashSet

// Open-addressing (linear probe) set of NON-ZERO u64 keys with tombstone
// deletion and power-of-two doubling.  Replaces std::unordered_set for the
// executor's claimed-reservation set: membership tests and insert/erase on
// the scheduling path cost zero allocations once the table has warmed up.
class FixedHashSet {
 public:
  explicit FixedHashSet(std::size_t initial_capacity = 64) {
    cap_ = 16;
    while (cap_ < initial_capacity) cap_ <<= 1;
    slots_ = new std::uint64_t[cap_]();
  }
  FixedHashSet(const FixedHashSet&) = delete;
  FixedHashSet& operator=(const FixedHashSet&) = delete;
  ~FixedHashSet() { delete[] slots_; }

  [[nodiscard]] bool contains(std::uint64_t key) const noexcept {
    const std::size_t mask = cap_ - 1;
    std::size_t i = mix(key) & mask;
    for (;;) {
      const std::uint64_t slot = slots_[i];
      if (slot == key) return true;
      if (slot == kEmpty) return false;  // tombstones keep probing alive
      i = (i + 1) & mask;
    }
  }

  // Returns true when the key was newly inserted.
  bool insert(std::uint64_t key) {
    if ((size_ + tombstones_ + 1) * 4 >= cap_ * 3) rehash();
    const std::size_t mask = cap_ - 1;
    std::size_t i = mix(key) & mask;
    std::size_t first_tomb = cap_;  // cap_ = none seen
    for (;;) {
      const std::uint64_t slot = slots_[i];
      if (slot == key) return false;
      if (slot == kEmpty) {
        if (first_tomb != cap_) {
          slots_[first_tomb] = key;
          --tombstones_;
        } else {
          slots_[i] = key;
        }
        ++size_;
        return true;
      }
      if (slot == kTombstone && first_tomb == cap_) first_tomb = i;
      i = (i + 1) & mask;
    }
  }

  bool erase(std::uint64_t key) noexcept {
    const std::size_t mask = cap_ - 1;
    std::size_t i = mix(key) & mask;
    for (;;) {
      const std::uint64_t slot = slots_[i];
      if (slot == key) {
        slots_[i] = kTombstone;
        --size_;
        ++tombstones_;
        return true;
      }
      if (slot == kEmpty) return false;
      i = (i + 1) & mask;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  // Keys are reservation identities (never 0); reserve ~0 as the tombstone.
  static constexpr std::uint64_t kEmpty = 0;
  static constexpr std::uint64_t kTombstone = ~std::uint64_t{0};

  static std::size_t mix(std::uint64_t key) noexcept {
    // splitmix64 finalizer: reservation keys are pointers/ids with low
    // entropy in the low bits.
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }

  void rehash() {
    const std::size_t old_cap = cap_;
    std::uint64_t* old = slots_;
    cap_ = cap_ * 2;
    slots_ = new std::uint64_t[cap_]();
    size_ = 0;
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old[i] != kEmpty && old[i] != kTombstone) insert(old[i]);
    }
    delete[] old;
  }

  std::uint64_t* slots_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace doct::common
