#include "common/result.hpp"

namespace doct {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kUnknownEvent:
      return "UNKNOWN_EVENT";
    case StatusCode::kDeadTarget:
      return "DEAD_TARGET";
    case StatusCode::kNoSuchThread:
      return "NO_SUCH_THREAD";
    case StatusCode::kNoSuchObject:
      return "NO_SUCH_OBJECT";
    case StatusCode::kNoSuchNode:
      return "NO_SUCH_NODE";
    case StatusCode::kNoSuchGroup:
      return "NO_SUCH_GROUP";
    case StatusCode::kNoHandler:
      return "NO_HANDLER";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kPartitioned:
      return "PARTITIONED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kTerminated:
      return "TERMINATED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace doct
