// Status / Result error-handling vocabulary used across every layer.
//
// The kernel boundary of a 1993 OS reported errors as codes; we keep that
// flavour (callers of raise()/locate()/invoke() want to branch on *why* a
// request failed — dead target, unknown event, partitioned node) while giving
// it a modern value-semantics shape.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace doct {

enum class StatusCode {
  kOk = 0,
  kUnknownEvent,      // event name never registered (§3: naming)
  kDeadTarget,        // thread destroyed before delivery (§7, fault-tolerance)
  kNoSuchThread,      // locator could not find the thread
  kNoSuchObject,
  kNoSuchNode,
  kNoSuchGroup,
  kNoHandler,         // no handler attached and no default action
  kAlreadyExists,
  kInvalidArgument,
  kPermissionDenied,  // e.g. invoking a private handler entry point (§5.1)
  kTimeout,
  kPartitioned,       // destination unreachable in the simulated network
  kAborted,           // invocation aborted by ABORT event (§6.3)
  kTerminated,        // thread terminated by handler verdict
  kResourceExhausted,
  kInternal,
};

[[nodiscard]] const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    std::string out = status_code_name(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(storage_).is_ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  [[nodiscard]] bool is_ok() const {
    return std::holds_alternative<T>(storage_);
  }
  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(storage_);
  }

  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(storage_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace doct
