#include "common/log.hpp"

#include <iostream>
#include <mutex>

namespace doct::log_internal {

std::atomic<int>& global_level() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kOff)};
  return level;
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[" << level_tag(level) << "] " << message << "\n";
}

}  // namespace doct::log_internal
