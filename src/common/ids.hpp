// Strongly typed identifiers for the DO/CT environment.
//
// The paper's model names four kinds of addressable entities: nodes, logical
// threads (which span nodes), thread groups, and passive objects.  Events are
// also named entities (EventId).  Using distinct wrapper types prevents the
// classic bug of passing a thread id where an object id is expected — the
// raise() table in §5.3 dispatches on the *static* type of the destination.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace doct {

// CRTP-free tagged id: each Tag instantiates an unrelated type.
template <typename Tag>
class TypedId {
 public:
  using underlying_type = std::uint64_t;

  constexpr TypedId() = default;
  constexpr explicit TypedId(underlying_type value) : value_(value) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(TypedId, TypedId) = default;

  [[nodiscard]] std::string to_string() const {
    return std::string(Tag::prefix) + ":" + std::to_string(value_);
  }

  static constexpr underlying_type kInvalid = 0;

 private:
  underlying_type value_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, TypedId<Tag> id) {
  return os << id.to_string();
}

struct NodeTag {
  static constexpr const char* prefix = "node";
};
struct ThreadTag {
  static constexpr const char* prefix = "thr";
};
struct GroupTag {
  static constexpr const char* prefix = "grp";
};
struct ObjectTag {
  static constexpr const char* prefix = "obj";
};
struct EventTag {
  static constexpr const char* prefix = "evt";
};
struct SegmentTag {
  static constexpr const char* prefix = "seg";
};
struct HandlerTag {
  static constexpr const char* prefix = "hdl";
};
struct CallTag {
  static constexpr const char* prefix = "call";
};

using NodeId = TypedId<NodeTag>;
using ThreadId = TypedId<ThreadTag>;
using GroupId = TypedId<GroupTag>;
using ObjectId = TypedId<ObjectTag>;
using EventId = TypedId<EventTag>;
using SegmentId = TypedId<SegmentTag>;   // DSM segment
using HandlerId = TypedId<HandlerTag>;   // a single attached handler
using CallId = TypedId<CallTag>;         // RPC correlation id

}  // namespace doct

namespace std {
template <typename Tag>
struct hash<doct::TypedId<Tag>> {
  size_t operator()(doct::TypedId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
