// SplitMix64: small, fast, seedable RNG for deterministic workload generation
// in tests and benches.  Not for cryptography.
#pragma once

#include <cstdint>

namespace doct {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double probability) { return uniform() < probability; }

 private:
  std::uint64_t state_;
};

}  // namespace doct
