// Closable blocking MPMC queue.  The workhorse of the simulated kernel: node
// mailboxes, master-handler work queues and carrier-thread run queues are all
// instances.  close() wakes all waiters so shutdown never hangs (CP.42: wait
// only with a condition; CP.26: threads are always joined after their queue
// closes).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace doct {

template <typename T>
class BlockingQueue {
 public:
  enum class PushResult { kOk, kClosed, kFull };

  // Returns false if the queue is closed (item is dropped).
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Bounded push: refuses the item (kFull) when `capacity` items are already
  // queued, so a slow consumer exerts backpressure instead of growing the
  // queue without bound.  capacity 0 = unbounded (behaves like push()).  The
  // caller distinguishes kFull (count a drop) from kClosed (consumer gone).
  PushResult push_bounded(T item, std::size_t capacity) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (capacity != 0 && items_.size() >= capacity) {
        return PushResult::kFull;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return PushResult::kOk;
  }

  // Push to the front — used for high-priority control events (TERMINATE
  // should overtake queued user events).
  bool push_front(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_front(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed *and drained*.
  // nullopt means closed-and-empty: the consumer should exit.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Batched drain: blocks like pop(), then takes EVERYTHING queued in one
  // lock round-trip.  A burst of N messages costs one mutex acquisition for
  // the whole batch instead of N.  An empty deque means closed-and-drained:
  // the consumer should exit.
  std::deque<T> pop_all() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    std::deque<T> batch;
    batch.swap(items_);
    return batch;
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace doct
