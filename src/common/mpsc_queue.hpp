// Lock-free queueing substrate (DAPL "future directions": fewer context
// switches, fewer locks, fewer atomics on the event hot path).
//
// Three cooperating pieces:
//
//   MpscChain   intrusive lock-free multi-producer/single-consumer chain.
//               push() is ONE CAS and reports the empty→non-empty
//               transition; take_all() is ONE exchange plus a pointer
//               reversal, so draining a burst of N nodes costs O(N) pointer
//               writes and exactly one atomic — no mutex, no per-item pops.
//   WakeupGate  coalesces producer→consumer wakeups: a burst of N pushes
//               costs at most ONE condvar notify (the futex/eventfd pattern
//               without requiring eventfd).  The empty lock acquisition in
//               signal() is the classic fence against the
//               checked-predicate-then-wait race: a consumer between its
//               predicate check and cv wait still holds the mutex, so the
//               producer's lock_guard serializes behind it and the notify
//               cannot be lost.
//   Mailbox<T>  a BlockingQueue<T>-compatible facade over either backend —
//               the old mutex+condvar BlockingQueue (DOCT_QUEUE=locked, the
//               ablation/fallback) or the lock-free chain with a pooled-node
//               freelist and the wakeup gate (DOCT_QUEUE=lockfree, default).
//               Network node mailboxes and SocketTransport inbound/writer
//               queues run on it.
//
// Closed-state contract (what the network's in-flight accounting needs):
// push/push_bounded linearize against close() on one atomic state word, so a
// push either (a) returns kClosed/kFull and the item is dropped by the
// CALLER, or (b) succeeds and the item is guaranteed retrievable by the
// consumer's post-close drain — no third outcome, even under races.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/queue.hpp"

namespace doct::common {

// ---------------------------------------------------------------------------
// Backend selection

enum class QueueBackend : std::uint8_t { kLocked, kLockfree };

// DOCT_QUEUE=locked|lockfree.  Read at every construction site (executors,
// mailboxes, the timing-substrate owners), so CI re-runs the full suite on
// the locked ablation without recompiling and tests can flip backends
// in-process between constructions.
inline QueueBackend queue_backend() {
  if (const char* env = std::getenv("DOCT_QUEUE")) {
    if (std::strcmp(env, "locked") == 0) return QueueBackend::kLocked;
    if (std::strcmp(env, "lockfree") == 0) return QueueBackend::kLockfree;
  }
  return QueueBackend::kLockfree;
}

// ---------------------------------------------------------------------------
// MpscChain

struct MpscNode {
  MpscNode* next = nullptr;
};

// Intrusive MPSC chain: producers CAS nodes onto a stack head; the single
// consumer exchanges the whole stack out and reverses it into FIFO order.
// The reversal puts the O(N) work on the consumer, off the producers' (hot)
// side, and preserves per-producer push order — which is what the executor's
// per-key FIFO guarantee builds on.
class MpscChain {
 public:
  // Returns true when the chain was empty (the empty→non-empty transition):
  // exactly the pushes that must signal the consumer's wakeup gate.
  bool push(MpscNode* node) noexcept {
    MpscNode* head = head_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!head_.compare_exchange_weak(head, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
    return head == nullptr;
  }

  // Takes every queued node in FIFO order (oldest first).  Single consumer.
  [[nodiscard]] MpscNode* take_all() noexcept {
    MpscNode* node = head_.exchange(nullptr, std::memory_order_acquire);
    MpscNode* fifo = nullptr;
    while (node != nullptr) {
      MpscNode* next = node->next;
      node->next = fifo;
      fifo = node;
      node = next;
    }
    return fifo;
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<MpscNode*> head_{nullptr};
};

// ---------------------------------------------------------------------------
// WakeupGate

// Producer→consumer wakeup coalescing.  signal() from any thread; ONE
// consumer thread alternates consume_pending()/wait().  However many signals
// land between two waits, at most one of them pays the mutex+notify.
class WakeupGate {
 public:
  void signal() {
    signals_.fetch_add(1, std::memory_order_relaxed);
    if (pending_.exchange(true, std::memory_order_acq_rel)) return;
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    { std::lock_guard<std::mutex> lock(mu_); }  // fence vs. a racing wait()
    cv_.notify_one();
  }

  // Wakes the waiter without setting pending (close/shutdown paths: the
  // waiter's extra predicate decides).
  void kick() {
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  }

  // Consumer: clear the pending flag BEFORE scanning for work, so a signal
  // that lands after the scan re-arms the gate.
  bool consume_pending() noexcept {
    return pending_.exchange(false, std::memory_order_acq_rel);
  }

  // Consumer: sleep until signalled or `extra()` (e.g. closed) holds.
  template <typename ExtraPred>
  void wait(ExtraPred extra) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) || extra();
    });
  }

  // Instrumentation for the coalescing invariant tests/bench: wakeups()
  // counts notifies actually paid, signals() counts signal() calls.
  [[nodiscard]] std::uint64_t wakeups() const noexcept {
    return wakeups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t signals() const noexcept {
    return signals_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> pending_{false};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> signals_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
// MpmcRing

// Bounded MPMC ring (Vyukov sequence-number scheme) used as an ABA-safe
// freelist: recycled nodes flow consumer→pool→producers without a lock and
// without the Treiber-stack ABA hazard.
template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  bool push(T value) noexcept {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool pop(T& out) noexcept {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

// ---------------------------------------------------------------------------
// Mailbox

// BlockingQueue-compatible MPSC mailbox over either backend.  The consumer
// side (pop_all / try_pop) must stay single-threaded — exactly how every
// user runs it (one delivery/writer thread per mailbox, and teardown flushes
// only after joining that thread).
template <typename T>
class Mailbox {
 public:
  using PushResult = typename BlockingQueue<T>::PushResult;

  explicit Mailbox(QueueBackend backend = queue_backend(),
                   std::size_t pool_capacity = 512)
      : backend_(backend), pool_(pool_capacity) {}

  ~Mailbox() {
    MpscNode* node = chain_.take_all();
    while (node != nullptr) {
      MpscNode* next = node->next;
      delete static_cast<Node*>(node);
      node = next;
    }
    Node* pooled = nullptr;
    while (pool_.pop(pooled)) delete pooled;
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  bool push(T item) {
    if (backend_ == QueueBackend::kLocked) {
      return locked_.push(std::move(item));
    }
    return push_bounded(std::move(item), 0) == PushResult::kOk;
  }

  PushResult push_bounded(T item, std::size_t capacity) {
    if (backend_ == QueueBackend::kLocked) {
      return locked_.push_bounded(std::move(item), capacity);
    }
    // Admission first, on the shared state word: fetch_add linearizes
    // against close()'s fetch_or, so "admitted" and "closed" are mutually
    // exclusive outcomes and the depth check is exact.
    const std::uint64_t prev =
        state_.fetch_add(1, std::memory_order_acq_rel);
    if ((prev & kClosedBit) != 0) {
      state_.fetch_sub(1, std::memory_order_relaxed);
      return PushResult::kClosed;
    }
    if (capacity != 0 && (prev & kDepthMask) >= capacity) {
      state_.fetch_sub(1, std::memory_order_relaxed);
      return PushResult::kFull;
    }
    Node* node = nullptr;
    if (!pool_.pop(node)) node = new Node;
    node->value.emplace(std::move(item));
    if (chain_.push(node)) gate_.signal();
    return PushResult::kOk;
  }

  // Blocks until items are available or the mailbox is closed AND fully
  // drained; an empty deque means closed-and-drained (consumer exits).
  std::deque<T> pop_all() {
    if (backend_ == QueueBackend::kLocked) return locked_.pop_all();
    std::deque<T> out;
    if (!drained_.empty()) {
      out.swap(drained_);
      return out;
    }
    for (;;) {
      gate_.consume_pending();
      harvest(out);
      if (!out.empty()) return out;
      const std::uint64_t state = state_.load(std::memory_order_acquire);
      if ((state & kClosedBit) != 0) {
        if ((state & kDepthMask) == 0) return out;  // closed-and-drained
        // An admitted push has not landed on the chain yet (producer is
        // between fetch_add and chain.push); it is a handful of
        // instructions away.
        std::this_thread::yield();
        continue;
      }
      gate_.wait([&] {
        return (state_.load(std::memory_order_acquire) & kClosedBit) != 0;
      });
    }
  }

  std::optional<T> try_pop() {
    if (backend_ == QueueBackend::kLocked) return locked_.try_pop();
    while (drained_.empty()) {
      std::deque<T> got;
      harvest(got);
      if (!got.empty()) {
        drained_.swap(got);
        break;
      }
      const std::uint64_t state = state_.load(std::memory_order_acquire);
      // Post-close flushes must retrieve every admitted item: spin out the
      // in-flight producers (see pop_all).
      if ((state & kClosedBit) != 0 && (state & kDepthMask) != 0) {
        std::this_thread::yield();
        continue;
      }
      return std::nullopt;
    }
    T item = std::move(drained_.front());
    drained_.pop_front();
    return item;
  }

  void close() {
    if (backend_ == QueueBackend::kLocked) {
      locked_.close();
      return;
    }
    state_.fetch_or(kClosedBit, std::memory_order_acq_rel);
    gate_.kick();
  }

  [[nodiscard]] bool closed() const {
    if (backend_ == QueueBackend::kLocked) return locked_.closed();
    return (state_.load(std::memory_order_acquire) & kClosedBit) != 0;
  }

  [[nodiscard]] std::size_t size() const {
    if (backend_ == QueueBackend::kLocked) return locked_.size();
    return static_cast<std::size_t>(state_.load(std::memory_order_acquire) &
                                    kDepthMask);
  }

  [[nodiscard]] QueueBackend backend() const noexcept { return backend_; }

  // Wakeup-coalescing instrumentation (lockfree backend; locked reports 0).
  [[nodiscard]] std::uint64_t wakeups() const noexcept {
    return gate_.wakeups();
  }
  [[nodiscard]] std::uint64_t signals() const noexcept {
    return gate_.signals();
  }

 private:
  struct Node : MpscNode {
    std::optional<T> value;
  };

  void harvest(std::deque<T>& out) {
    MpscNode* node = chain_.take_all();
    std::uint64_t taken = 0;
    while (node != nullptr) {
      MpscNode* next = node->next;
      Node* typed = static_cast<Node*>(node);
      out.push_back(std::move(*typed->value));
      typed->value.reset();
      if (!pool_.push(typed)) delete typed;
      node = next;
      ++taken;
    }
    if (taken != 0) state_.fetch_sub(taken, std::memory_order_acq_rel);
  }

  static constexpr std::uint64_t kClosedBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kDepthMask = kClosedBit - 1;

  QueueBackend backend_;
  BlockingQueue<T> locked_;  // DOCT_QUEUE=locked backend

  MpscChain chain_;
  WakeupGate gate_;
  // depth (admitted, not yet harvested) | closed bit.
  std::atomic<std::uint64_t> state_{0};
  MpmcRing<Node*> pool_;
  std::deque<T> drained_;  // consumer-local overflow for try_pop
};

}  // namespace doct::common
