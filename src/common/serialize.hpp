// Minimal byte-buffer serialization used by the net/rpc layers and by the
// persistent object store.
//
// Messages in the simulated network are real byte vectors — thread attributes,
// event blocks and invocation arguments are marshalled and unmarshalled at
// node boundaries exactly as they would be on the wire, so "the state of the
// client is visible to the server" property (§3.1 Thread Contexts) is
// exercised through genuine serialization rather than shared pointers.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "common/ids.hpp"

namespace doct {

class Writer {
 public:
  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  void put(T value) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(T));
  }

  template <typename Tag>
  void put(TypedId<Tag> id) {
    put(id.value());
  }

  void put(const std::string& s) {
    put(static_cast<std::uint32_t>(s.size()));
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  void put(const std::vector<std::uint8_t>& v) {
    put(static_cast<std::uint32_t>(v.size()));
    buffer_.insert(buffer_.end(), v.begin(), v.end());
  }

  void put(bool b) { put(static_cast<std::uint8_t>(b ? 1 : 0)); }

  template <typename K, typename V>
  void put(const std::map<K, V>& m) {
    put(static_cast<std::uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      put(k);
      put(v);
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buffer_); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

class DeserializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Reader {
 public:
  // An empty payload borrows the static empty buffer instead of paying a
  // make_shared — the zero-alloc delivery path (DESIGN §14.2) constructs a
  // Reader over an empty argument vector on every same-node handler call.
  explicit Reader(std::vector<std::uint8_t> bytes)
      : owned_(bytes.empty()
                   ? nullptr
                   : std::make_shared<const std::vector<std::uint8_t>>(
                         std::move(bytes))),
        bytes_(owned_ ? owned_.get() : empty()) {}

  // Zero-copy parse: pins a shared buffer (e.g. net::SharedPayload::share())
  // for the Reader's lifetime instead of copying it.  Null means empty.
  explicit Reader(std::shared_ptr<const std::vector<std::uint8_t>> bytes)
      : owned_(std::move(bytes)), bytes_(owned_ ? owned_.get() : empty()) {}

  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  [[nodiscard]] T get() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, bytes_->data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename Tag>
  [[nodiscard]] TypedId<Tag> get_id() {
    return TypedId<Tag>{get<typename TypedId<Tag>::underlying_type>()};
  }

  [[nodiscard]] std::string get_string() {
    const auto size = get<std::uint32_t>();
    require(size);
    std::string s(reinterpret_cast<const char*>(bytes_->data() + pos_), size);
    pos_ += size;
    return s;
  }

  [[nodiscard]] std::vector<std::uint8_t> get_bytes() {
    const auto size = get<std::uint32_t>();
    require(size);
    std::vector<std::uint8_t> v(
        bytes_->begin() + static_cast<long>(pos_),
        bytes_->begin() + static_cast<long>(pos_ + size));
    pos_ += size;
    return v;
  }

  [[nodiscard]] bool get_bool() { return get<std::uint8_t>() != 0; }

  [[nodiscard]] std::map<std::string, std::string> get_string_map() {
    const auto size = get<std::uint32_t>();
    std::map<std::string, std::string> m;
    for (std::uint32_t i = 0; i < size; ++i) {
      auto k = get_string();
      m.emplace(std::move(k), get_string());
    }
    return m;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_->size(); }
  [[nodiscard]] std::size_t remaining() const { return bytes_->size() - pos_; }

 private:
  static const std::vector<std::uint8_t>* empty() {
    static const std::vector<std::uint8_t> kEmpty;
    return &kEmpty;
  }

  void require(std::size_t n) const {
    if (pos_ + n > bytes_->size()) {
      throw DeserializeError("buffer underrun: need " + std::to_string(n) +
                             " bytes, have " +
                             std::to_string(bytes_->size() - pos_));
    }
  }

  std::shared_ptr<const std::vector<std::uint8_t>> owned_;
  const std::vector<std::uint8_t>* bytes_;  // never null
  std::size_t pos_ = 0;
};

}  // namespace doct
