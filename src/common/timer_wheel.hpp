// Hierarchical timer wheel (Varghese & Lauck): O(1) schedule/cancel/expire
// regardless of how many timers are pending.
//
// Replaces the per-owner scan-all-deadlines condvar loops (the RPC retry
// thread's wait_until scan, the failure detector's beat loop, the kernel's
// TIMER-record thread — which is also what monitor sampling deadlines ride
// on): with thousands of pending calls those loops cost O(n) per wakeup and
// a notify per registration; the wheel costs one slot append per schedule
// and visits only the expiring slot per tick.
//
// Four levels of 64 slots at a 1ms tick cover ~64ms / ~4s / ~4.4min / ~4.7h;
// longer delays clamp to the top level and re-cascade.  The tick thread
// sleeps to the next *armed* deadline (idle wheels burn zero CPU — there is
// no 1kHz heartbeat when nothing is scheduled) and catches up tick-by-tick
// after a long sleep, cascading higher levels at their boundaries.
//
// Concurrency contract: schedule/schedule_periodic/cancel are thread-safe
// and O(1) under an internal mutex (never held while callbacks run).
// Callbacks fire on the wheel's single tick thread, OUTSIDE the wheel lock —
// they may schedule/cancel freely, but must not block for long (they share
// the thread with every other timer).  cancel() prevents all future fires
// but does NOT wait for an in-flight callback; owners that destroy callback
// state must stop() the wheel first (stop joins the tick thread).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"

namespace doct::common {

using TimerId = std::uint64_t;

class TimerWheel {
 public:
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t cascaded = 0;  // timers re-filed at a level boundary
  };

  explicit TimerWheel(Duration tick = std::chrono::milliseconds(1));
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // One-shot timer after `delay` (rounded UP to the next tick so a timer
  // never fires early).  Returns an id for cancel().
  TimerId schedule(Duration delay, std::function<void()> fn);

  // Periodic timer: first fire after `period`, then every `period`.  Fixed
  // cadence is tick-quantized; a slow callback delays subsequent fires (no
  // burst catch-up for periodics).
  TimerId schedule_periodic(Duration period, std::function<void()> fn);

  // True when the timer existed and will not fire again.  False when it
  // already fired (one-shot) or never existed.  Does not wait for an
  // in-flight callback.
  bool cancel(TimerId id);

  // Stops and joins the tick thread; pending timers never fire.  Idempotent.
  // Called by the destructor, but owners whose callbacks touch member state
  // should call it explicitly before that state is destroyed.
  void stop();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t pending() const;

 private:
  static constexpr std::size_t kLevels = 4;
  static constexpr std::size_t kSlotBits = 6;
  static constexpr std::size_t kSlots = 1u << kSlotBits;  // 64

  struct Timer {
    TimerId id = 0;
    std::uint64_t expiry_tick = 0;
    std::uint64_t period_ticks = 0;  // 0 = one-shot
    // shared_ptr so a periodic fire copies a refcount, not the callable.
    std::shared_ptr<const std::function<void()>> fn;
  };

  struct Due {
    TimerId id = 0;
    std::uint64_t period_ticks = 0;
    std::shared_ptr<const std::function<void()>> fn;
  };

  [[nodiscard]] std::uint64_t ticks_for(Duration d) const;
  [[nodiscard]] std::uint64_t tick_of(TimePoint when) const;
  [[nodiscard]] std::uint64_t ceil_tick_of(TimePoint when) const;
  TimerId arm_locked(std::uint64_t delay_ticks, std::uint64_t period_ticks,
                     std::function<void()> fn);
  // Files a live timer into the slot matching its remaining delta.
  void file_locked(const Timer& timer);
  // Advances one tick, collecting every due timer (cascades at boundaries).
  void advance_locked(std::vector<Due>& due);
  void collect_slot_locked(std::size_t level, std::size_t slot,
                           std::vector<Due>& due);
  // Earliest tick at which anything can be due (cascades included); ~0 when
  // the wheel is empty.
  [[nodiscard]] std::uint64_t next_due_tick_locked() const;
  void tick_loop();

  const Duration tick_;
  const TimePoint epoch_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<TimerId> slots_[kLevels][kSlots];
  std::unordered_map<TimerId, Timer> timers_;  // live (not yet fired/cancelled)
  std::uint64_t current_tick_ = 0;
  std::uint64_t sleep_target_ = 0;  // tick the thread currently sleeps toward
  TimerId next_id_ = 1;
  bool stop_ = false;
  Stats stats_;

  std::thread thread_;
};

}  // namespace doct::common
