#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

namespace doct::obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};

// Compact double formatting for JSON: integral values print without a
// fractional part, everything else with two decimals.
void append_number(std::ostringstream& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    out << static_cast<std::int64_t>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    out << buf;
  }
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

namespace {
// Anchored at the first obs use in the process (static init of this TU is
// close enough — the error is microseconds against uptimes of seconds).
const std::int64_t g_process_start_us = now_us();
std::atomic<std::uint64_t> g_self_node{0};
}  // namespace

std::int64_t uptime_us() { return now_us() - g_process_start_us; }

void set_self_node(std::uint64_t node) {
  g_self_node.store(node, std::memory_order_relaxed);
}

std::uint64_t self_node() {
  return g_self_node.load(std::memory_order_relaxed);
}

std::size_t ShardedCounter::shard() {
  // Thread-id hash computed once per thread; threads spread across cells so
  // concurrent add()s rarely share a cache line.
  static thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return slot;
}

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < (std::uint64_t{1} << kSubBits)) {
    return static_cast<std::size_t>(value);
  }
  const std::uint32_t exp = 63 - static_cast<std::uint32_t>(
                                     std::countl_zero(value));
  const std::uint64_t sub = (value >> (exp - kSubBits)) &
                            ((std::uint64_t{1} << kSubBits) - 1);
  return ((static_cast<std::size_t>(exp) - kSubBits + 1) << kSubBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t index) {
  if (index < (std::size_t{1} << kSubBits)) {
    return static_cast<std::uint64_t>(index);
  }
  const std::uint64_t octave =
      (index >> kSubBits) + kSubBits - 1;  // inverse of bucket_index's exp
  const std::uint64_t sub = index & ((std::uint64_t{1} << kSubBits) - 1);
  return (std::uint64_t{1} << octave) |
         (sub << (octave - kSubBits));
}

double Histogram::percentile_locked(const std::uint64_t* counts,
                                    std::uint64_t total, double q) const {
  if (total == 0) return 0;
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = seen + counts[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket between its lower bound and the lower
      // bound of the next bucket.
      const double lo = static_cast<double>(bucket_lower_bound(i));
      const double hi =
          i + 1 < kBuckets ? static_cast<double>(bucket_lower_bound(i + 1))
                           : lo;
      const double frac =
          counts[i] == 0
              ? 0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    seen = next;
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

HistogramSnapshot Histogram::snapshot() const {
  // Consistent-enough copy: buckets are sampled once; concurrent writers can
  // make count/sum drift by a few records, which is fine for monitoring.
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  HistogramSnapshot snap;
  snap.count = total;
  snap.max = max_.load(std::memory_order_relaxed);
  snap.mean = total == 0
                  ? 0
                  : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(total);
  snap.p50 = percentile_locked(counts, total, 0.50);
  snap.p90 = percentile_locked(counts, total, 0.90);
  snap.p99 = percentile_locked(counts, total, 0.99);
  if (snap.max != 0) {
    snap.p50 = std::min(snap.p50, static_cast<double>(snap.max));
    snap.p90 = std::min(snap.p90, static_cast<double>(snap.max));
    snap.p99 = std::min(snap.p99, static_cast<double>(snap.max));
  }
  return snap;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const std::uint64_t other_max = other.max_.load(std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_.compare_exchange_weak(seen, other_max,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::SourceHandle& MetricsRegistry::SourceHandle::operator=(
    SourceHandle&& other) noexcept {
  if (this != &other) {
    release();
    owner_ = other.owner_;
    id_ = other.id_;
    other.owner_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void MetricsRegistry::SourceHandle::release() {
  if (owner_ != nullptr) {
    std::lock_guard<std::mutex> lock(owner_->mu_);
    owner_->sources_.erase(id_);
    owner_ = nullptr;
    id_ = 0;
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

ShardedCounter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<ShardedCounter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsRegistry::SourceHandle MetricsRegistry::register_source(
    std::string prefix, Source source) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_source_++;
  sources_.emplace(id, std::make_pair(std::move(prefix), std::move(source)));
  return SourceHandle(this, id);
}

std::string MetricsRegistry::snapshot_json() const {
  // Pull every source.  Runs UNDER mu_ so a SourceHandle being released
  // (subsystem destruction) blocks until the snapshot is done — a source is
  // never invoked after its owner died.  The corollary: sources must not
  // call back into the registry (they only read their own stats structs).
  // Duplicate keys sum so two subsystems sharing a prefix aggregate.
  std::map<std::string, std::uint64_t> pulled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : sources_) {
      for (const auto& [name, value] : entry.second()) {
        pulled[entry.first + "." + name] += value;
      }
    }
  }

  std::ostringstream out;
  out << "{\"meta\":{\"seq\":"
      << snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1
      << ",\"wall_ms\":" << wall_ms() << ",\"uptime_us\":" << uptime_us()
      << ",\"node\":" << self_node() << "},\"counters\":{";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << counter->value();
    }
  }
  for (const auto& [name, value] : pulled) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, gauge] : gauges_) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":" << gauge->value();
    }
  }
  out << "},\"histograms\":{";
  first = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, histogram] : histograms_) {
      if (!first) out << ",";
      first = false;
      const HistogramSnapshot snap = histogram->snapshot();
      out << "\"" << name << "\":{\"count\":" << snap.count
          << ",\"mean\":";
      append_number(out, snap.mean);
      out << ",\"p50\":";
      append_number(out, snap.p50);
      out << ",\"p90\":";
      append_number(out, snap.p90);
      out << ",\"p99\":";
      append_number(out, snap.p99);
      out << ",\"max\":" << snap.max << "}";
    }
  }
  out << "}}";
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace doct::obs
