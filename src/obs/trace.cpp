#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"  // now_us()

namespace doct::obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};

thread_local TraceContext t_current;

std::uint64_t this_track() {
  // Stable per-OS-thread id for the Chrome "tid" field; hashed and folded
  // so the numbers stay small enough to read.
  static thread_local const std::uint64_t track =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 97;
  return track;
}

void append_escaped(std::ostringstream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

bool tracing_enabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

TraceContext current_context() { return t_current; }

void set_current_context(TraceContext ctx) { t_current = ctx; }

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

Tracer::Tracer() {
  // Export the eviction counter alongside the metrics snapshot.  The handle
  // leaks with the singleton; the closure only reads an atomic, so it never
  // re-enters the registry (snapshot_json pulls sources under its lock).
  static auto* handle = new MetricsRegistry::SourceHandle(
      metrics().register_source("obs", [this] {
        return std::vector<std::pair<std::string, std::uint64_t>>{
            {"trace_dropped_total", dropped_.load(std::memory_order_relaxed)}};
      }));
  (void)handle;
}

void Tracer::record(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    spans_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  span.seq = ++record_seq_;
  spans_.push_back(std::move(span));
}

std::vector<Span> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Span>(spans_.begin(), spans_.end());
}

std::vector<Span> Tracer::snapshot_since(std::uint64_t after_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Seqs are monotonic along the deque, so binary-search the cursor.
  auto it = std::lower_bound(
      spans_.begin(), spans_.end(), after_seq + 1,
      [](const Span& span, std::uint64_t seq) { return span.seq < seq; });
  return std::vector<Span>(it, spans_.end());
}

std::uint64_t Tracer::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_seq_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (spans_.size() > capacity_) {
    spans_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::string Tracer::to_chrome_json() const {
  const std::vector<Span> spans = snapshot();

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;

  // One metadata record per node so Perfetto labels each track.
  std::map<std::uint64_t, bool> nodes;
  for (const Span& span : spans) nodes[span.node] = true;
  for (const auto& [node, unused] : nodes) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << node
        << ",\"tid\":0,\"args\":{\"name\":\"node " << node << "\"}}";
  }

  for (const Span& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"";
    append_escaped(out, span.name);
    out << "\",\"cat\":\"doct\",\"ph\":\"X\",\"pid\":" << span.node
        << ",\"tid\":" << span.track << ",\"ts\":" << span.start_us
        << ",\"dur\":" << span.dur_us << ",\"args\":{\"trace_id\":\""
        << span.trace_id << "\",\"span_id\":\"" << span.span_id
        << "\",\"parent\":\"" << span.parent_span << "\"";
    if (!span.detail.empty()) {
      out << ",\"detail\":\"";
      append_escaped(out, span.detail);
      out << "\"";
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

SpanGuard::SpanGuard(const char* name, std::uint64_t node,
                     std::string_view detail) {
  if (!tracing_enabled()) return;
  open(name, node, t_current, /*mint_if_absent=*/false, detail);
}

SpanGuard::SpanGuard(const char* name, std::uint64_t node, MintTraceTag,
                     std::string_view detail) {
  if (!tracing_enabled()) return;
  open(name, node, t_current, /*mint_if_absent=*/true, detail);
}

SpanGuard::SpanGuard(const char* name, std::uint64_t node, TraceContext parent,
                     std::string_view detail) {
  if (!tracing_enabled()) return;
  open(name, node, parent, /*mint_if_absent=*/false, detail);
}

void SpanGuard::open(const char* name, std::uint64_t node, TraceContext parent,
                     bool mint_if_absent, std::string_view detail) {
  if (!parent.valid()) {
    if (!mint_if_absent) return;
    parent = TraceContext{tracer().new_id(), 0};
  }
  active_ = true;
  span_.trace_id = parent.trace_id;
  span_.span_id = tracer().new_id();
  span_.parent_span = parent.span_id;
  span_.node = node;
  span_.track = this_track();
  span_.name = name;
  span_.detail.assign(detail.data(), detail.size());
  span_.start_us = now_us();
  saved_ = t_current;
  t_current = TraceContext{span_.trace_id, span_.span_id};
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  t_current = saved_;
  span_.dur_us = now_us() - span_.start_us;
  tracer().record(std::move(span_));
}

}  // namespace doct::obs
