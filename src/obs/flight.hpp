// Per-node flight recorder — an always-on bounded ring of fixed-size POD
// breadcrumbs (recent trace spans, delivered events, lane-depth samples,
// fault-injector decisions) that survives to a dump file when the process
// dies violently.  Every chaos/nightly failure gets a black box: the ring
// dumps to DOCT_FLIGHT_DIR on SIGSEGV/SIGABRT/std::terminate (async-signal-
// safe path), on NODE_DOWN observation in surviving doct-node processes,
// and on demand.
//
// Cost contract mirrors the rest of obs: note() behind a relaxed atomic
// check when disarmed; armed, one relaxed fetch_add + a bounded memcpy into
// a preallocated slot — no locks, no allocation, safe from any thread.
// Readers (dump paths) tolerate torn slots: a slot's seq is zeroed before
// the body is rewritten and republished last, so a half-written slot is
// skipped, never misparsed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace doct::obs {

struct FlightEntry {
  std::int64_t ts_us = 0;   // steady clock (obs::now_us)
  std::uint64_t a = 0;      // kind-specific operands (node ids, depths, ...)
  std::uint64_t b = 0;
  std::uint64_t seq = 0;    // publish order; 0 = slot never fully written
  char kind[16] = {};       // short vocabulary: "span", "deliver", "fault"...
  char detail[72] = {};     // truncated free text (event name, lane, reason)
};

class FlightRecorder {
 public:
  static FlightRecorder& global();

  // Arms the recorder: allocates the ring (capacity is fixed at first
  // configure; later calls keep it), remembers the node label and the dump
  // directory.  An empty dir still records — dumps then need an explicit
  // path.  Reads DOCT_FLIGHT_RING for the capacity when `capacity` is 0
  // (default 4096 entries).
  void configure(std::uint64_t node, std::string dir, std::size_t capacity = 0);

  // Arms from DOCT_FLIGHT_DIR / DOCT_FLIGHT_RING if set; no-op otherwise.
  // Returns whether the recorder is armed afterwards.
  bool configure_from_env(std::uint64_t node);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void note(const char* kind, std::string_view detail, std::uint64_t a = 0,
            std::uint64_t b = 0);

  // Full-fidelity dump (ring + metrics + trace JSON) to
  // <dir>/flight-node<N>-<reason>.json.  NOT async-signal-safe.
  Status dump(const std::string& reason);
  Status dump_to(const std::string& path, const std::string& reason);

  // Async-signal-safe dump: ring only, open(2)/write(2), static buffers.
  // Called from the crash handlers; safe to call anywhere.
  void dump_signal(const char* reason);

  [[nodiscard]] std::uint64_t node() const {
    return node_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string dir() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t noted_total() const {
    return head_.load(std::memory_order_relaxed);
  }

  // Live slots in publish order, oldest first (skips torn/unwritten slots).
  [[nodiscard]] std::vector<FlightEntry> entries() const;

 private:
  FlightRecorder() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> node_{0};
  std::atomic<std::uint64_t> head_{0};
  std::unique_ptr<FlightEntry[]> ring_;
  std::size_t capacity_ = 0;
  // dir_ is written once under configure's caller discipline and read from
  // dump paths; guarded by a tiny spin on the enabled_ flag ordering.
  mutable std::mutex dir_mu_;
  std::string dir_;
};

[[nodiscard]] inline FlightRecorder& flight() {
  return FlightRecorder::global();
}

// Installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers and a std::terminate
// handler that write the async-signal-safe flight dump and then re-raise so
// the default disposition (core, nonzero exit) still happens.  Idempotent.
void install_crash_handlers();

}  // namespace doct::obs
