// Cluster-wide telemetry merge — the designated-node Collector ingests each
// node's metrics snapshot (the JSON documents MetricsRegistry emits, pulled
// over the monitor service in-process or over RPC for remote shards) and
// folds them into one node-labelled cluster document:
//
//   * names prefixed "node<N>." are re-homed to node N's row (prefix
//     stripped), so in-process shards sharing one registry still split out;
//   * un-prefixed (process-global) names land on the row of the node the
//     document came from — exactly right in multi-process mode where each
//     process hosts one node;
//   * counter deltas between successive ingests of the same node divide by
//     the snapshot meta's wall_ms delta → per-second rates;
//   * histograms keep their {count,mean,p50,p90,p99,max} summary per node.
//
// Includes the minimal JSON reader the obs plane needs for its own
// documents (objects/arrays/strings/numbers/bools; no external dependency).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace doct::obs {

// Minimal JSON value — enough to read back what this layer writes (and any
// well-formed document; numbers collapse to double).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] double num_or(const std::string& key, double fallback) const;
};

[[nodiscard]] Result<JsonValue> parse_json(std::string_view text);

struct HistogramRow {
  std::uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  std::uint64_t max = 0;
};

class Collector {
 public:
  // Folds one process snapshot (MetricsRegistry::snapshot_json output) into
  // the cluster view; `source_node` labels the document's un-prefixed
  // metrics (and is the fallback when the meta lacks a node id).
  Status ingest(std::uint64_t source_node, std::string_view metrics_json);

  // Node ids with at least one ingested snapshot, ascending.
  [[nodiscard]] std::vector<std::uint64_t> nodes() const;

  // The merged cluster document:
  //   {"collected_wall_ms":...,"nodes":{"1":{"seq":..,"wall_ms":..,
  //    "uptime_us":..,"counters":{..},"gauges":{..},"rates":{..},
  //    "histograms":{name:{count,mean,p50,p90,p99,max}}}, ...}}
  // "rates" holds per-second counter deltas; empty until a node has been
  // ingested twice.
  [[nodiscard]] std::string cluster_json() const;

 private:
  struct NodeRow {
    std::uint64_t seq = 0;
    std::int64_t wall_ms = 0;
    std::int64_t uptime_us = 0;
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramRow> histograms;
    std::map<std::string, double> rates;
    // Previous-ingest state for rate conversion.
    std::int64_t prev_wall_ms = 0;
    std::map<std::string, double> prev_counters;
  };

  mutable std::mutex mu_;
  std::map<std::uint64_t, NodeRow> rows_;
  std::int64_t collected_wall_ms_ = 0;
};

}  // namespace doct::obs
