// Causal tracing — a TraceContext (trace-id, span-id) minted where an event
// enters the system (raise / raise_and_wait / RPC call) and propagated
// through net::Message headers, RPC requests, kernel delivery, handler
// execution, and resume, so one event's life is reconstructible across
// nodes.  Spans land in a process-wide bounded buffer and export as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing): one track per
// node, spans named raise/route/wire/deliver/handle/resume.
//
// Same cost contract as metrics: tracing_enabled() is a relaxed atomic load,
// and a disabled SpanGuard does no clock read, no allocation, no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace doct::obs {

[[nodiscard]] bool tracing_enabled();
void set_tracing_enabled(bool enabled);

// Identity of one causal chain (trace_id) and the currently-open span within
// it.  trace_id == 0 means "no trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

// The ambient context for this OS thread; spans opened here become children
// of it, and outgoing messages stamp it into their headers.
[[nodiscard]] TraceContext current_context();
void set_current_context(TraceContext ctx);

// One finished span.  `name` is a static string (span vocabulary is fixed);
// `detail` carries the variable part (event name, RPC method).
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t node = 0;   // exported as the Chrome pid → one track per node
  std::uint64_t track = 0;  // tid within the node track
  const char* name = "";
  std::string detail;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
  // Per-process record order (1-based, assigned by Tracer::record); lets a
  // collector pull only the spans it has not seen yet (snapshot_since).
  std::uint64_t seq = 0;
};

// Process-wide bounded span buffer.
class Tracer {
 public:
  static Tracer& global();

  [[nodiscard]] std::uint64_t new_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Multi-process runs: every process mints ids from the same counter start,
  // so two OS processes would reuse the same trace ids and stitching their
  // exported traces would conflate unrelated chains.  A node process seeds
  // its id space with the node id in the top bits (doct-node does this at
  // startup) to make ids globally disjoint.  Monotonic: never moves the
  // counter backwards.
  void seed_ids(std::uint64_t first) {
    std::uint64_t current = next_id_.load(std::memory_order_relaxed);
    while (current < first &&
           !next_id_.compare_exchange_weak(current, first,
                                           std::memory_order_relaxed)) {
    }
  }

  void record(Span span);

  [[nodiscard]] std::vector<Span> snapshot() const;

  // Spans recorded after the given sequence number (exclusive), oldest
  // first.  The caller remembers the max seq it saw and passes it back —
  // incremental pulls instead of re-shipping the whole ring.  Spans evicted
  // before the cursor caught up are simply gone (count them via
  // dropped_total()).
  [[nodiscard]] std::vector<Span> snapshot_since(std::uint64_t after_seq) const;
  [[nodiscard]] std::uint64_t last_seq() const;

  void clear();

  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  // Spans evicted from the bounded buffer since process start; exported as
  // "obs.trace_dropped_total" so soaks can see when the window overflowed.
  [[nodiscard]] std::uint64_t dropped_total() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Chrome trace-event JSON: {"traceEvents":[...]} with one "M"
  // process_name metadata record per node and one "X" complete event per
  // span (ts/dur in µs, pid = node, args = trace/span/parent ids).
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  Tracer();

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::deque<Span> spans_;
  std::size_t capacity_ = 1 << 16;
  std::uint64_t record_seq_ = 0;  // under mu_; monotonic with deque order
};

[[nodiscard]] inline Tracer& tracer() { return Tracer::global(); }

// Tag selecting the SpanGuard constructor that starts a new trace when no
// ambient context exists (used at raise/RPC entry points).
struct MintTraceTag {};
inline constexpr MintTraceTag kMintTrace{};

// Scoped span.  While alive it installs itself as the thread's current
// context (restoring the previous one on destruction), so nested guards and
// outgoing messages pick it up; on destruction it records the span.
//
// Three linkage modes:
//   SpanGuard(name, node, detail)              child of current; inactive if
//                                              no current trace
//   SpanGuard(name, node, kMintTrace, detail)  child of current, or root of
//                                              a fresh trace if none
//   SpanGuard(name, node, parent, detail)      child of an explicit parent
//                                              context (from a message);
//                                              inactive if parent invalid
class SpanGuard {
 public:
  SpanGuard(const char* name, std::uint64_t node,
            std::string_view detail = {});
  SpanGuard(const char* name, std::uint64_t node, MintTraceTag,
            std::string_view detail = {});
  SpanGuard(const char* name, std::uint64_t node, TraceContext parent,
            std::string_view detail = {});
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard();

  [[nodiscard]] bool active() const { return active_; }

  // The context this span represents — copy into outgoing notices/messages.
  [[nodiscard]] TraceContext context() const {
    return TraceContext{span_.trace_id, span_.span_id};
  }

 private:
  void open(const char* name, std::uint64_t node, TraceContext parent,
            bool mint_if_absent, std::string_view detail);

  bool active_ = false;
  Span span_;
  TraceContext saved_;
};

}  // namespace doct::obs
