// Unified metrics layer — process-wide named counters, gauges, and
// log-bucketed latency histograms, plus pull-sources that fold the existing
// per-subsystem *Stats structs into one cluster snapshot.
//
// The paper's monitoring application (§6.2) needs a system-wide answer to
// "what is the cluster doing"; before this layer every subsystem kept its own
// disconnected stats struct with no latency distributions.  Here:
//
//   * ShardedCounter — lock-free (per-shard relaxed atomics, cache-line
//     padded) so concurrent hot paths never serialize on one counter.
//   * Histogram — log-bucketed (8 sub-buckets per power of two), fixed
//     memory, relaxed-atomic buckets; snapshots interpolate p50/p90/p99/max.
//   * MetricsRegistry — name → instrument, created on demand with stable
//     addresses, plus register_source(): a subsystem hands over a closure
//     that reports its *Stats fields, and snapshot_json() folds every
//     source into one document.
//
// Cost contract: everything is OFF by default.  Disabled cost at an
// instrumented site is one relaxed atomic load (same class as DOCT_LOG);
// no clock reads, no allocation, no locks.  Benches must not regress with
// observability off (bench_e9_spine guards this).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace doct::obs {

// Global metrics switch.  Instrumented sites check this before touching the
// clock or an instrument.
[[nodiscard]] bool metrics_enabled();
void set_metrics_enabled(bool enabled);

// Steady-clock microseconds (shared by metrics and tracing timestamps).
[[nodiscard]] std::int64_t now_us();

// Wall-clock milliseconds since the Unix epoch (snapshot timestamps only —
// never used for latency math, which stays on the steady clock).
[[nodiscard]] std::int64_t wall_ms();

// Microseconds this process has been alive (steady clock, anchored at the
// first obs use).  Appears in snapshot metadata so consumers can
// rate-convert without guessing the observation window.
[[nodiscard]] std::int64_t uptime_us();

// Node identity stamped into snapshot metadata.  0 = unset (single-process
// runs where per-node attribution comes from source prefixes instead);
// multi-process shards set their own node id at startup so a remote
// collector can label the whole document.
void set_self_node(std::uint64_t node);
[[nodiscard]] std::uint64_t self_node();

// Monotonic counter sharded across cache-line-padded atomic cells: writers
// pick a cell by OS-thread hash and never contend on a single line.
class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) {
    cells_[shard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  static std::size_t shard();

  Cell cells_[kShards];
};

// Point-in-time signed value (queue depths, in-flight counts).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t max = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

// Fixed-memory log-bucketed histogram.  Values below 2^kSubBits get exact
// buckets; above that, each power-of-two range splits into 2^kSubBits
// sub-buckets, so relative bucket error is bounded by 1/2^kSubBits (12.5%)
// and percentile reads interpolate within the bucket.  record() is two
// relaxed atomic adds plus a CAS-free max update — safe from any thread.
class Histogram {
 public:
  static constexpr std::uint32_t kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr std::size_t kBuckets =
      (64 - kSubBits + 1) * (std::size_t{1} << kSubBits);

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Convenience for latency sites measuring in microseconds.
  void record_us(std::int64_t us) {
    record(us > 0 ? static_cast<std::uint64_t>(us) : 0);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;

  // Adds `other`'s buckets into this histogram (cross-node aggregation).
  void merge(const Histogram& other);

  void reset();

  // Bucket geometry, exposed so tests can pin the scheme down.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);
  [[nodiscard]] static std::uint64_t bucket_lower_bound(std::size_t index);

 private:
  [[nodiscard]] double percentile_locked(
      const std::uint64_t* counts, std::uint64_t total, double q) const;

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// One process-wide registry.  Instruments are created on demand and have
// stable addresses for the process lifetime — hot paths resolve a name once
// (at construction) and keep the pointer.
class MetricsRegistry {
 public:
  // A pull-source reports a subsystem's counters as (name, value) pairs;
  // the registered prefix ("node1.kernel") namespaces them in the snapshot.
  using Source =
      std::function<std::vector<std::pair<std::string, std::uint64_t>>()>;

  // RAII registration: the subsystem keeps the handle as its LAST member so
  // the source unregisters before the stats it reads are destroyed.
  class SourceHandle {
   public:
    SourceHandle() = default;
    SourceHandle(SourceHandle&& other) noexcept { *this = std::move(other); }
    SourceHandle& operator=(SourceHandle&& other) noexcept;
    SourceHandle(const SourceHandle&) = delete;
    SourceHandle& operator=(const SourceHandle&) = delete;
    ~SourceHandle() { release(); }
    void release();

   private:
    friend class MetricsRegistry;
    SourceHandle(MetricsRegistry* owner, std::uint64_t id)
        : owner_(owner), id_(id) {}
    MetricsRegistry* owner_ = nullptr;
    std::uint64_t id_ = 0;
  };

  static MetricsRegistry& global();

  [[nodiscard]] ShardedCounter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] SourceHandle register_source(std::string prefix, Source source);

  // One JSON document covering every registered instrument and source:
  //   {"meta":{"seq":N,"wall_ms":...,"uptime_us":...,"node":K},
  //    "counters":{...},"gauges":{...},"histograms":{name:{count,p50,...}}}
  // Sources with identical keys (two live networks) sum into one entry.
  // `seq` increments per snapshot, so a consumer holding two documents can
  // order them and divide counter deltas by the wall_ms delta for rates.
  [[nodiscard]] std::string snapshot_json() const;

  // Zeroes every owned instrument (sources read live stats and are not
  // resettable from here).  Tests use this between scenarios.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ShardedCounter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::uint64_t next_source_ = 1;
  std::map<std::uint64_t, std::pair<std::string, Source>> sources_;
  mutable std::atomic<std::uint64_t> snapshot_seq_{0};
};

[[nodiscard]] inline MetricsRegistry& metrics() {
  return MetricsRegistry::global();
}

}  // namespace doct::obs
