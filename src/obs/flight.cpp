#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace doct::obs {
namespace {

constexpr std::size_t kDefaultRing = 4096;

// Bounded copy into a fixed char field; always NUL-terminated, and any byte
// that would break the (hand-rolled, signal-safe) JSON emitter is replaced.
template <std::size_t N>
void copy_field(char (&dst)[N], std::string_view src) {
  const std::size_t n = std::min(src.size(), N - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const char c = src[i];
    dst[i] = (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
                 ? '.'
                 : c;
  }
  dst[n] = '\0';
}

// write(2) a NUL-terminated string, retrying on short writes; signal-safe.
void write_str(int fd, const char* s) {
  std::size_t len = std::strlen(s);
  const char* p = s;
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) return;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Minimal unsigned/signed decimal rendering into a caller buffer
// (snprintf is not on the async-signal-safe list; this is).
const char* format_u64(std::uint64_t v, char* buf, std::size_t cap) {
  char tmp[24];
  std::size_t i = 0;
  do {
    tmp[i++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0 && i < sizeof(tmp));
  std::size_t o = 0;
  while (i > 0 && o + 1 < cap) buf[o++] = tmp[--i];
  buf[o] = '\0';
  return buf;
}

const char* format_i64(std::int64_t v, char* buf, std::size_t cap) {
  if (v < 0 && cap > 1) {
    buf[0] = '-';
    format_u64(static_cast<std::uint64_t>(-v), buf + 1, cap - 1);
    return buf;
  }
  return format_u64(static_cast<std::uint64_t>(v), buf, cap);
}

struct sigaction g_prev_actions[NSIG];
std::atomic<bool> g_handlers_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

void crash_handler(int sig) {
  char reason[32] = "sig-";
  format_i64(sig, reason + 4, sizeof(reason) - 4);
  FlightRecorder::global().dump_signal(reason);
  // Restore the previous disposition and re-raise so the default action
  // (core dump, nonzero exit) still happens.
  if (sig > 0 && sig < NSIG) {
    ::sigaction(sig, &g_prev_actions[sig], nullptr);
  }
  ::raise(sig);
}

[[noreturn]] void terminate_handler() {
  FlightRecorder::global().dump_signal("terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = new FlightRecorder();  // never destroyed
  return *instance;
}

void FlightRecorder::configure(std::uint64_t node, std::string dir,
                               std::size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    dir_ = std::move(dir);
  }
  node_.store(node, std::memory_order_relaxed);
  if (!ring_) {
    if (capacity == 0) {
      if (const char* env = std::getenv("DOCT_FLIGHT_RING")) {
        capacity = std::strtoull(env, nullptr, 10);
      }
      if (capacity == 0) capacity = kDefaultRing;
    }
    capacity_ = capacity;
    ring_ = std::make_unique<FlightEntry[]>(capacity_);
  }
  enabled_.store(true, std::memory_order_release);
}

bool FlightRecorder::configure_from_env(std::uint64_t node) {
  const char* dir = std::getenv("DOCT_FLIGHT_DIR");
  if (dir == nullptr || *dir == '\0') return enabled();
  configure(node, dir);
  return true;
}

void FlightRecorder::note(const char* kind, std::string_view detail,
                          std::uint64_t a, std::uint64_t b) {
  if (!enabled()) return;
  const std::uint64_t i = head_.fetch_add(1, std::memory_order_relaxed);
  FlightEntry& slot = ring_[i % capacity_];
  // Unpublish, write the body, republish.  A dump racing this write sees
  // seq == 0 and skips the slot instead of reading a torn entry.
  slot.seq = 0;
  std::atomic_thread_fence(std::memory_order_release);
  slot.ts_us = now_us();
  slot.a = a;
  slot.b = b;
  copy_field(slot.kind, kind);
  copy_field(slot.detail, detail);
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq = i + 1;
}

std::vector<FlightEntry> FlightRecorder::entries() const {
  std::vector<FlightEntry> out;
  if (!ring_) return out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (ring_[i].seq != 0) out.push_back(ring_[i]);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEntry& x, const FlightEntry& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::string FlightRecorder::dir() const {
  std::lock_guard<std::mutex> lock(dir_mu_);
  return dir_;
}

Status FlightRecorder::dump(const std::string& reason) {
  const std::string base = dir();
  if (base.empty()) {
    return Status(StatusCode::kInvalidArgument, "flight: no dump dir");
  }
  return dump_to(base + "/flight-node" + std::to_string(node()) + "-" +
                     reason + ".json",
                 reason);
}

Status FlightRecorder::dump_to(const std::string& path,
                               const std::string& reason) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status(StatusCode::kInternal, "flight: cannot open " + path);
  }
  out << "{\"node\":" << node() << ",\"reason\":\"" << reason
      << "\",\"signal\":false,\"noted_total\":" << noted_total()
      << ",\"entries\":[";
  bool first = true;
  for (const FlightEntry& e : entries()) {
    if (!first) out << ",";
    first = false;
    out << "{\"seq\":" << e.seq << ",\"ts_us\":" << e.ts_us << ",\"kind\":\""
        << e.kind << "\",\"detail\":\"" << e.detail << "\",\"a\":" << e.a
        << ",\"b\":" << e.b << "}";
  }
  // Full-fidelity context: the whole metrics document and Chrome trace ride
  // along (cheap here — this path only runs on rare, interesting events).
  out << "],\"metrics\":" << metrics().snapshot_json()
      << ",\"trace\":" << tracer().to_chrome_json() << "}";
  return out ? Status::ok()
             : Status(StatusCode::kInternal, "flight: write failed");
}

void FlightRecorder::dump_signal(const char* reason) {
  if (!ring_) return;
  // Compose the path with signal-safe primitives only.
  static char path[512];
  {
    std::size_t o = 0;
    // dir_ without the mutex: configure() happens before handlers can fire
    // in practice, and a torn read here at worst garbles the filename.
    const std::string& base = dir_;
    if (base.empty()) return;
    const std::size_t n = std::min(base.size(), sizeof(path) - 96);
    std::memcpy(path, base.data(), n);
    o = n;
    const char* mid = "/flight-node";
    std::memcpy(path + o, mid, std::strlen(mid));
    o += std::strlen(mid);
    char num[24];
    format_u64(node(), num, sizeof(num));
    std::memcpy(path + o, num, std::strlen(num));
    o += std::strlen(num);
    path[o++] = '-';
    const std::size_t rn = std::min(std::strlen(reason), std::size_t{32});
    std::memcpy(path + o, reason, rn);
    o += rn;
    const char* ext = ".json";
    std::memcpy(path + o, ext, std::strlen(ext));
    o += std::strlen(ext);
    path[o] = '\0';
  }
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  char num[24];
  write_str(fd, "{\"node\":");
  write_str(fd, format_u64(node(), num, sizeof(num)));
  write_str(fd, ",\"reason\":\"");
  write_str(fd, reason);
  write_str(fd, "\",\"signal\":true,\"entries\":[");
  // Oldest-first scan without sorting: walk the ring from the current head.
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  bool first = true;
  for (std::size_t k = 0; k < capacity_; ++k) {
    const FlightEntry& e = ring_[(head + k) % capacity_];
    if (e.seq == 0) continue;
    if (!first) write_str(fd, ",");
    first = false;
    write_str(fd, "{\"seq\":");
    write_str(fd, format_u64(e.seq, num, sizeof(num)));
    write_str(fd, ",\"ts_us\":");
    write_str(fd, format_i64(e.ts_us, num, sizeof(num)));
    write_str(fd, ",\"kind\":\"");
    write_str(fd, e.kind);  // copy_field already stripped JSON-unsafe bytes
    write_str(fd, "\",\"detail\":\"");
    write_str(fd, e.detail);
    write_str(fd, "\",\"a\":");
    write_str(fd, format_u64(e.a, num, sizeof(num)));
    write_str(fd, ",\"b\":");
    write_str(fd, format_u64(e.b, num, sizeof(num)));
    write_str(fd, "}");
  }
  write_str(fd, "]}");
  ::close(fd);
}

void install_crash_handlers() {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &sa, &g_prev_actions[sig]);
  }
  g_prev_terminate = std::set_terminate(terminate_handler);
}

}  // namespace doct::obs
