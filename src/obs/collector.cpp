#include "obs/collector.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace doct::obs {
namespace {

// ---------------------------------------------------------------------------
// Mini JSON reader.

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    JsonValue value;
    const Status parsed = parse_value(value);
    if (!parsed.is_ok()) return parsed;
    skip_ws();
    if (pos_ != text_.size()) {
      return error("trailing bytes after document");
    }
    return value;
  }

 private:
  Status error(const std::string& what) const {
    return Status(StatusCode::kInvalidArgument,
                  "json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status parse_value(JsonValue& out) {
    if (++depth_ > 64) return error("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return error("unexpected end");
    const char c = text_[pos_];
    Status status;
    if (c == '{') {
      status = parse_object(out);
    } else if (c == '[') {
      status = parse_array(out);
    } else if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      status = parse_string(out.string);
    } else if (c == 't' || c == 'f') {
      status = parse_literal(c == 't' ? "true" : "false");
      out.kind = JsonValue::Kind::kBool;
      out.boolean = c == 't';
    } else if (c == 'n') {
      status = parse_literal("null");
      out.kind = JsonValue::Kind::kNull;
    } else {
      status = parse_number(out);
    }
    --depth_;
    return status;
  }

  Status parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return error("bad literal");
    pos_ += word.size();
    return Status::ok();
  }

  Status parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return error("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return error("bad number");
    out.kind = JsonValue::Kind::kNumber;
    return Status::ok();
  }

  Status parse_string(std::string& out) {
    if (!consume('"')) return error("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return error("bad \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long cp = std::strtol(hex.c_str(), nullptr, 16);
          // Our own writer only escapes control characters; anything in the
          // BMP round-trips as UTF-8 well enough for display purposes.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else {
            out.push_back('?');
          }
          break;
        }
        default:
          return error("bad escape");
      }
    }
    return error("unterminated string");
  }

  Status parse_object(JsonValue& out) {
    if (!consume('{')) return error("expected object");
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return Status::ok();
    while (true) {
      std::string key;
      const Status key_status = parse_string(key);
      if (!key_status.is_ok()) return key_status;
      if (!consume(':')) return error("expected ':'");
      JsonValue value;
      const Status value_status = parse_value(value);
      if (!value_status.is_ok()) return value_status;
      out.object.emplace(std::move(key), std::move(value));
      if (consume(',')) continue;
      if (consume('}')) return Status::ok();
      return error("expected ',' or '}'");
    }
  }

  Status parse_array(JsonValue& out) {
    if (!consume('[')) return error("expected array");
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return Status::ok();
    while (true) {
      JsonValue value;
      const Status value_status = parse_value(value);
      if (!value_status.is_ok()) return value_status;
      out.array.push_back(std::move(value));
      if (consume(',')) continue;
      if (consume(']')) return Status::ok();
      return error("expected ',' or ']'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

// Splits "node<N>.rest" into (N, "rest"); returns false for un-prefixed
// names (they belong to the document's source node).
bool split_node_prefix(const std::string& name, std::uint64_t& node,
                       std::string& rest) {
  if (name.rfind("node", 0) != 0) return false;
  std::size_t i = 4;
  std::uint64_t parsed = 0;
  bool any = false;
  while (i < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[i])) != 0) {
    parsed = parsed * 10 + static_cast<std::uint64_t>(name[i] - '0');
    any = true;
    ++i;
  }
  if (!any || i >= name.size() || name[i] != '.') return false;
  node = parsed;
  rest = name.substr(i + 1);
  return true;
}

void append_number(std::ostringstream& out, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    out << static_cast<std::int64_t>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    out << buf;
  }
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::num_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

Result<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

Status Collector::ingest(std::uint64_t source_node,
                         std::string_view metrics_json) {
  auto parsed = parse_json(metrics_json);
  if (!parsed.is_ok()) return parsed.status();
  const JsonValue doc = std::move(parsed).value();
  if (doc.kind != JsonValue::Kind::kObject) {
    return Status(StatusCode::kInvalidArgument, "collector: not an object");
  }

  const JsonValue* meta = doc.find("meta");
  std::int64_t doc_wall_ms = 0;
  std::uint64_t doc_seq = 0;
  std::int64_t doc_uptime_us = 0;
  if (meta != nullptr) {
    doc_wall_ms = static_cast<std::int64_t>(meta->num_or("wall_ms", 0));
    doc_seq = static_cast<std::uint64_t>(meta->num_or("seq", 0));
    doc_uptime_us = static_cast<std::int64_t>(meta->num_or("uptime_us", 0));
    const auto meta_node = static_cast<std::uint64_t>(meta->num_or("node", 0));
    if (meta_node != 0) source_node = meta_node;
  }

  std::lock_guard<std::mutex> lock(mu_);
  collected_wall_ms_ = doc_wall_ms;

  // Stash the counters each row carried BEFORE this ingest so rates can be
  // computed per touched row afterwards.
  std::map<std::uint64_t, std::map<std::string, double>> previous;
  std::map<std::uint64_t, std::int64_t> previous_wall;
  auto touch = [&](std::uint64_t node) -> NodeRow& {
    if (previous.find(node) == previous.end()) {
      NodeRow& row = rows_[node];
      previous[node] = row.counters;
      previous_wall[node] = row.wall_ms;
      row.seq = doc_seq;
      row.wall_ms = doc_wall_ms;
      if (node == source_node) row.uptime_us = doc_uptime_us;
    }
    return rows_[node];
  };

  if (const JsonValue* counters = doc.find("counters")) {
    for (const auto& [name, value] : counters->object) {
      std::uint64_t node = source_node;
      std::string rest;
      const bool prefixed = split_node_prefix(name, node, rest);
      touch(node).counters[prefixed ? rest : name] = value.number;
    }
  }
  if (const JsonValue* gauges = doc.find("gauges")) {
    for (const auto& [name, value] : gauges->object) {
      std::uint64_t node = source_node;
      std::string rest;
      const bool prefixed = split_node_prefix(name, node, rest);
      touch(node).gauges[prefixed ? rest : name] = value.number;
    }
  }
  if (const JsonValue* hists = doc.find("histograms")) {
    for (const auto& [name, value] : hists->object) {
      std::uint64_t node = source_node;
      std::string rest;
      const bool prefixed = split_node_prefix(name, node, rest);
      HistogramRow row;
      row.count = static_cast<std::uint64_t>(value.num_or("count", 0));
      row.mean = value.num_or("mean", 0);
      row.p50 = value.num_or("p50", 0);
      row.p90 = value.num_or("p90", 0);
      row.p99 = value.num_or("p99", 0);
      row.max = static_cast<std::uint64_t>(value.num_or("max", 0));
      touch(node).histograms[prefixed ? rest : name] = row;
    }
  }

  // Rate conversion for every row this document touched.
  for (auto& [node, prev_counters] : previous) {
    NodeRow& row = rows_[node];
    const std::int64_t prev_wall = previous_wall[node];
    const std::int64_t dt_ms = doc_wall_ms - prev_wall;
    if (prev_wall == 0 || dt_ms <= 0) {
      // First sighting (or clock went nowhere): keep any prior rates.
      row.prev_wall_ms = doc_wall_ms;
      row.prev_counters = row.counters;
      continue;
    }
    row.rates.clear();
    for (const auto& [name, value] : row.counters) {
      const auto it = prev_counters.find(name);
      if (it == prev_counters.end()) continue;
      const double delta = value - it->second;
      if (delta < 0) continue;  // process restarted; skip this interval
      row.rates[name] = delta * 1000.0 / static_cast<double>(dt_ms);
    }
    row.prev_wall_ms = doc_wall_ms;
    row.prev_counters = row.counters;
  }
  return Status::ok();
}

std::vector<std::uint64_t> Collector::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  out.reserve(rows_.size());
  for (const auto& [node, row] : rows_) out.push_back(node);
  return out;
}

std::string Collector::cluster_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"collected_wall_ms\":" << collected_wall_ms_ << ",\"nodes\":{";
  bool first_node = true;
  for (const auto& [node, row] : rows_) {
    if (!first_node) out << ",";
    first_node = false;
    out << "\"" << node << "\":{\"seq\":" << row.seq
        << ",\"wall_ms\":" << row.wall_ms
        << ",\"uptime_us\":" << row.uptime_us << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : row.counters) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":";
      append_number(out, value);
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : row.gauges) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":";
      append_number(out, value);
    }
    out << "},\"rates\":{";
    first = true;
    for (const auto& [name, value] : row.rates) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":";
      append_number(out, value);
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, hist] : row.histograms) {
      if (!first) out << ",";
      first = false;
      out << "\"" << name << "\":{\"count\":" << hist.count << ",\"mean\":";
      append_number(out, hist.mean);
      out << ",\"p50\":";
      append_number(out, hist.p50);
      out << ",\"p90\":";
      append_number(out, hist.p90);
      out << ",\"p99\":";
      append_number(out, hist.p99);
      out << ",\"max\":" << hist.max << "}";
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

}  // namespace doct::obs
