#include "services/monitor/monitor.hpp"

#include "common/log.hpp"
#include "events/block.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace doct::services {

namespace {

constexpr const char* kSampleProc = "doct.monitor.sample";
constexpr const char* kSampleEvent = "MONITOR_SAMPLE";

struct ServerState {
  std::mutex mu;
  std::map<ThreadId, std::vector<ThreadSample>> samples;
  std::uint64_t sequence = 0;
  // Rendered documents the chunked fetch entries serve from, so every chunk
  // of one fetch comes from the same snapshot (regenerated at offset 0).
  std::string metrics_cache;
  std::string trace_cache;
};

}  // namespace

void set_pc_marker(const std::string& marker) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) return;
  ctx->with_attributes(
      [&](kernel::ThreadAttributes& a) { a.user["pc"] = marker; });
}

std::shared_ptr<objects::PassiveObject> MonitorServer::make() {
  auto object = std::make_shared<objects::PassiveObject>("monitor_server");
  auto state = std::make_shared<ServerState>();

  // Receives MONITOR_SAMPLE events raised at the object by monitored threads.
  object->define_entry(
      "on_sample",
      [state](objects::CallCtx& ctx) -> Result<objects::Payload> {
        events::EventBlock block = events::EventBlock::from_ctx(ctx);
        auto r = block.user_reader();
        ThreadSample sample;
        sample.thread = r.get_id<ThreadTag>();
        sample.node = r.get<std::uint64_t>();
        sample.object = r.get<std::uint64_t>();
        sample.pc = r.get_string();
        std::lock_guard<std::mutex> lock(state->mu);
        sample.sequence = ++state->sequence;
        state->samples[sample.thread].push_back(std::move(sample));
        return objects::Payload{};
      },
      objects::Visibility::kPrivate);
  object->define_handler(kSampleEvent, "on_sample");

  object->define_entry("report", [state](objects::CallCtx&)
                                     -> Result<objects::Payload> {
    Writer w;
    std::lock_guard<std::mutex> lock(state->mu);
    std::uint32_t total = 0;
    for (const auto& [tid, list] : state->samples) {
      total += static_cast<std::uint32_t>(list.size());
    }
    w.put(total);
    for (const auto& [tid, list] : state->samples) {
      for (const auto& s : list) {
        w.put(s.thread);
        w.put(s.node);
        w.put(s.object);
        w.put(s.pc);
        w.put(s.sequence);
      }
    }
    return std::move(w).take();
  });

  // Observability endpoints (§6.2 monitoring as a service application): the
  // cluster-wide metrics snapshot and the Chrome/Perfetto trace export served
  // as invocation payloads, so a monitoring client anywhere in the cluster
  // can pull them through the ordinary object-invocation path.
  object->define_entry("metrics", [](objects::CallCtx&)
                                      -> Result<objects::Payload> {
    const std::string json = obs::metrics().snapshot_json();
    return objects::Payload(json.begin(), json.end());
  });
  object->define_entry("trace", [](objects::CallCtx&)
                                    -> Result<objects::Payload> {
    const std::string json = obs::tracer().to_chrome_json();
    return objects::Payload(json.begin(), json.end());
  });

  // Chunked variants: the single-payload entries above silently assume one
  // event payload can hold the whole document, which stops being true as
  // metric cardinality (or the span buffer) grows.  "metrics_at"/"trace_at"
  // take a u64 offset; offset 0 renders and caches the document so later
  // chunks come from the SAME snapshot, and each reply carries
  // {u64 total, string chunk} until the client has total bytes.
  auto serve_chunk = [](std::string& cache, std::string (*render)(),
                        objects::CallCtx& ctx) -> Result<objects::Payload> {
    Reader r(ctx.args);
    const auto offset = r.get<std::uint64_t>();
    if (offset == 0) cache = render();
    Writer w;
    w.put(static_cast<std::uint64_t>(cache.size()));
    w.put(offset >= cache.size()
              ? std::string{}
              : cache.substr(offset, kSnapshotChunkBytes));
    return std::move(w).take();
  };
  object->define_entry(
      "metrics_at",
      [state, serve_chunk](objects::CallCtx& ctx) -> Result<objects::Payload> {
        std::lock_guard<std::mutex> lock(state->mu);
        return serve_chunk(
            state->metrics_cache,
            +[] { return obs::metrics().snapshot_json(); }, ctx);
      });
  object->define_entry(
      "trace_at",
      [state, serve_chunk](objects::CallCtx& ctx) -> Result<objects::Payload> {
        std::lock_guard<std::mutex> lock(state->mu);
        return serve_chunk(
            state->trace_cache, +[] { return obs::tracer().to_chrome_json(); },
            ctx);
      });

  return object;
}

std::vector<ThreadSample> MonitorServer::decode_report(
    const objects::Payload& p) {
  Reader r(p);
  const auto total = r.get<std::uint32_t>();
  std::vector<ThreadSample> out;
  out.reserve(total);
  for (std::uint32_t i = 0; i < total; ++i) {
    ThreadSample s;
    s.thread = r.get_id<ThreadTag>();
    s.node = r.get<std::uint64_t>();
    s.object = r.get<std::uint64_t>();
    s.pc = r.get_string();
    s.sequence = r.get<std::uint64_t>();
    out.push_back(std::move(s));
  }
  return out;
}

Status MonitorClient::arm(Duration period) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return {StatusCode::kInvalidArgument, "arm requires a logical thread"};
  }
  const EventId sample_event = events_.registry().register_event(kSampleEvent);
  // Sample ingestion is throughput work, not latency-critical: route it to
  // the executor's bulk lane so a monitoring storm can never crowd ordinary
  // event dispatch (or control traffic) off their lanes.
  events_.registry().mark_bulk(sample_event);

  // The sampling procedure: runs in the context of whatever object the
  // thread occupies when the TIMER event is delivered (§6.2: "executing
  // within the context of the current object enables the handler to examine
  // ... the state of the object/thread").
  events_.procedures().register_procedure(
      kSampleProc,
      [this, sample_event](events::PerThreadCallCtx& pctx) {
        Writer w;
        w.put(pctx.thread.tid());
        w.put(pctx.thread.node().value());
        w.put(pctx.current_object.value());
        w.put(pctx.thread.with_attributes([](kernel::ThreadAttributes& a) {
          auto it = a.user.find("pc");
          return it == a.user.end() ? std::string{} : it->second;
        }));
        const Status sent =
            events_.raise(sample_event, server_, std::move(w).take());
        if (!sent.is_ok()) {
          DOCT_LOG(kWarn) << "monitor sample dropped: " << sent.to_string();
        }
        return kernel::Verdict::kResume;
      });

  auto handler =
      events_.attach_handler(events::sys::kTimer, kSampleProc,
                             events::OWN_CONTEXT);
  if (!handler.is_ok()) return handler.status();
  handler_ = handler.value();

  return events_.kernel().add_timer(
      *ctx, kernel::TimerRecord{
                events::sys::kTimer,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        period)
                        .count()),
                false});
}

Status MonitorClient::disarm() {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return {StatusCode::kInvalidArgument, "disarm requires a logical thread"};
  }
  events_.kernel().remove_timer(*ctx, events::sys::kTimer);
  if (handler_.valid()) return events_.detach_handler(handler_);
  return Status::ok();
}

Result<std::vector<ThreadSample>> MonitorClient::report() {
  auto reply = objects_.invoke(server_, "report", {});
  if (!reply.is_ok()) return reply.status();
  return MonitorServer::decode_report(reply.value());
}

Result<std::string> MonitorClient::fetch_chunked(const char* entry) {
  std::string assembled;
  while (true) {
    Writer w;
    w.put(static_cast<std::uint64_t>(assembled.size()));
    auto reply = objects_.invoke(server_, entry, std::move(w).take());
    if (!reply.is_ok()) return reply.status();
    Reader r(reply.value());
    const auto total = r.get<std::uint64_t>();
    const std::string chunk = r.get_string();
    assembled += chunk;
    if (assembled.size() >= total) return assembled;
    if (chunk.empty()) {
      // total says more bytes exist but the server sent none — the cache
      // shrank between chunks (a concurrent offset-0 fetch).  Bail rather
      // than loop forever.
      return Status(StatusCode::kInternal,
                    std::string(entry) + ": truncated chunked fetch");
    }
  }
}

Result<std::string> MonitorClient::metrics_json() {
  return fetch_chunked("metrics_at");
}

Result<std::string> MonitorClient::trace_json() {
  return fetch_chunked("trace_at");
}

}  // namespace doct::services
