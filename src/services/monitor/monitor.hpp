// Distributed monitoring for liveliness (§6.2).
//
// "To monitor the thread, two facilities are required: a periodic timer
//  delivered to the thread and a handler to execute when the timer event is
//  received."  The TIMER registration rides in the thread's attribute list,
//  so it is recreated at every node the thread visits; the handler is a
//  per-thread procedure (OWN_CONTEXT) that samples the suspended thread's
//  state — current node, current object, a simulated program-counter string —
//  and posts it to a central monitor server object.
//
// The central server keeps per-thread sample histories and can report
// liveliness (threads that have stopped sampling).
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "events/event_system.hpp"
#include "objects/manager.hpp"

namespace doct::services {

// Chunk size for the monitor's "metrics_at"/"trace_at" entries.  Well under
// any event-payload comfort zone; a snapshot larger than this ships in
// multiple invocations off one server-side cached rendering.
inline constexpr std::size_t kSnapshotChunkBytes = 48 * 1024;

struct ThreadSample {
  ThreadId thread;
  std::uint64_t node = 0;    // node the thread was on when sampled
  std::uint64_t object = 0;  // object it was executing in (0 = none)
  std::string pc;            // simulated program-counter / phase marker
  std::uint64_t sequence = 0;
};

class MonitorServer {
 public:
  // Builds the central monitor object; register it on the monitoring node.
  static std::shared_ptr<objects::PassiveObject> make();

  // Decodes the "report" entry's reply payload.
  static std::vector<ThreadSample> decode_report(const objects::Payload& p);
};

// Client-side: arms monitoring on the CURRENT logical thread.
class MonitorClient {
 public:
  MonitorClient(events::EventSystem& events, objects::ObjectManager& objects,
                ObjectId server)
      : events_(events), objects_(objects), server_(server) {}

  // Adds the TIMER attribute + OWN_CONTEXT handler to the current thread.
  // `period` is the sampling period.
  Status arm(Duration period);
  Status disarm();

  // Fetches all samples recorded by the server (invocable from any thread
  // local to the server's node, or any logical thread).
  Result<std::vector<ThreadSample>> report();

  // Pulls the observability snapshots the server exposes: the cluster-wide
  // metrics document and the Chrome/Perfetto trace export.  Fetched through
  // the chunked entries, so documents of any size arrive intact.
  Result<std::string> metrics_json();
  Result<std::string> trace_json();

 private:
  Result<std::string> fetch_chunked(const char* entry);

  events::EventSystem& events_;
  objects::ObjectManager& objects_;
  ObjectId server_;
  HandlerId handler_;
};

// Sets the simulated program-counter marker the monitor samples for the
// current thread (applications call this at phase boundaries).
void set_pc_marker(const std::string& marker);

}  // namespace doct::services
