#include "services/exceptions/exceptions.hpp"

namespace doct::services {

Result<kernel::Verdict> ExceptionFacility::raise(EventId event,
                                                 ObjectId current_object,
                                                 const std::string& system_info,
                                                 rpc::Payload user_data) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return Status{StatusCode::kInvalidArgument,
                  "exceptions arise from logical threads"};
  }

  // First chance: the object's own handler (if it registered one for this
  // event name), run synchronously while this thread waits — the paper's
  // "surrogate thread" examination point (§6.1).
  if (current_object.valid()) {
    auto verdict = events_.raise_and_wait(event, current_object, user_data);
    if (verdict.is_ok()) {
      switch (verdict.value()) {
        case kernel::Verdict::kResume:
          return kernel::Verdict::kResume;  // repaired by the object
        case kernel::Verdict::kTerminate:
          ctx->mark_terminated();
          return kernel::Verdict::kTerminate;
        case kernel::Verdict::kPropagate:
          break;  // "a further exception may be raised by the object
                  //  handler, to be handled by the thread handler"
      }
    }
    // Delivery failure (e.g. object gone) also propagates to the thread.
  }

  // Second chance: the thread's own handler chain, on a surrogate.
  return events_.raise_exception(event, system_info, std::move(user_data));
}

}  // namespace doct::services
