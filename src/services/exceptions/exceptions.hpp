// Exception handling on top of the event facility (§6.1).
//
// "Exceptions are system events that arise due to the execution of code in
//  an object, by a thread.  In most cases, exceptions arising while a thread
//  is active inside an object can be handled by a handler in the object
//  itself.  An object may wish to take some generic corrective action on an
//  exception before it is propagated to the user (invoker) of the object."
//
// Two-level dispatch, exactly as the paper sketches:
//   1. the OBJECT's own handler (registered via define_handler) gets the
//      exception first, run on a surrogate so the faulting thread's state
//      can be examined (raise_and_wait at the object);
//   2. if the object handler PROPAGATES (or none exists), the THREAD's
//      handler chain runs — where the invoker's handler, attached at the
//      point of invocation, repairs or terminates (§5.2's restricted-scope
//      pattern is provided by ScopedHandler, an RAII attach/detach).
#pragma once

#include "events/event_system.hpp"
#include "objects/manager.hpp"

namespace doct::services {

class ExceptionFacility {
 public:
  explicit ExceptionFacility(events::EventSystem& events) : events_(events) {}

  // Raises `event` as an exception of the CURRENT thread executing in
  // `current_object`.  Object handler first, then the thread chain.
  // Returns the final verdict (kTerminate has already been applied to the
  // thread when it returns).
  Result<kernel::Verdict> raise(EventId event, ObjectId current_object,
                                const std::string& system_info,
                                rpc::Payload user_data = {});

 private:
  events::EventSystem& events_;
};

// RAII handler attachment: "scope of the handler is restricted to its
// immediate caller" (§5.2).  Attach before an invocation, auto-detach after.
class ScopedHandler {
 public:
  ScopedHandler(events::EventSystem& events, EventId event, ObjectId object,
                const std::string& entry)
      : events_(events) {
    auto attached = events_.attach_handler(event, object, entry);
    if (attached.is_ok()) handler_ = attached.value();
  }
  ScopedHandler(events::EventSystem& events, EventId event,
                const std::string& procedure, events::OwnContextTag tag)
      : events_(events) {
    auto attached = events_.attach_handler(event, procedure, tag);
    if (attached.is_ok()) handler_ = attached.value();
  }

  ~ScopedHandler() {
    if (handler_.valid()) events_.detach_handler(handler_);
  }

  ScopedHandler(const ScopedHandler&) = delete;
  ScopedHandler& operator=(const ScopedHandler&) = delete;

  [[nodiscard]] bool attached() const { return handler_.valid(); }
  [[nodiscard]] HandlerId id() const { return handler_; }

 private:
  events::EventSystem& events_;
  HandlerId handler_;
};

}  // namespace doct::services
