// User-level virtual memory managers — external pagers (§6.4).
//
// "The basic strategy is that the applications will tag regions of memory as
//  pageable, request VM_FAULT events and designate a server as the handler
//  for VM_FAULT events (buddy handler).  When any thread faults at an
//  address, the thread is suspended and the handler attached to the server
//  is notified.  The handler code then supplies a page to satisfy the fault.
//  If another thread faults on the same memory, the server can supply a copy
//  of the page, and later merge the pages."
//
// PagerServer is a passive object holding the backing store for user-paged
// segments.  PagerClient tags a local DSM segment as user-paged and wires
// its fault hook to raise VM_FAULT synchronously at the faulting thread; the
// buddy handler (the server's `on_fault` entry) supplies the page by calling
// the faulting node's `pager.install` RPC, then resumes the thread.  Writes
// are pushed back with `writeback`, and `merge` reconciles divergent copies
// (last-writer-wins per page, byte-wise merge helper provided for tests).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "dsm/dsm.hpp"
#include "events/event_system.hpp"
#include "objects/manager.hpp"
#include "obs/metrics.hpp"
#include "rpc/rpc.hpp"

namespace doct::services {

class PagerServer {
 public:
  // Builds the pager server object with its own backing store.
  // `rpc` is the endpoint of the node HOSTING the server (used to push pages
  // to faulting nodes).
  static std::shared_ptr<objects::PassiveObject> make(rpc::RpcEndpoint& rpc);
};

struct PagerStats {
  std::uint64_t faults_served = 0;
  std::uint64_t pages_installed = 0;
  std::uint64_t writebacks = 0;
};

// Per-node client: registers the `pager.install` RPC method and arms
// user-paged segments.
class PagerClient {
 public:
  PagerClient(events::EventSystem& events, objects::ObjectManager& objects,
              dsm::DsmEngine& dsm, rpc::RpcEndpoint& rpc);
  ~PagerClient();

  // Creates a user-paged segment backed by the pager server and wires the
  // fault path.  Must be called from outside any logical thread (setup).
  Status create_paged_segment(SegmentId segment, std::size_t num_pages,
                              ObjectId server);

  // Arms the CURRENT logical thread with the VM_FAULT buddy handler pointing
  // at the server.  Threads that will touch the segment call this once.
  Status arm_current_thread(ObjectId server);

  // Pushes a locally modified page back to the server's backing store.
  Status writeback(SegmentId segment, std::size_t page, ObjectId server);

  [[nodiscard]] PagerStats stats() const;

 private:
  events::EventSystem& events_;
  objects::ObjectManager& objects_;
  dsm::DsmEngine& dsm_;
  rpc::RpcEndpoint& rpc_;

  mutable std::mutex mu_;
  PagerStats stats_;

  // Last member: unregisters before the stats it reads are destroyed.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace doct::services
