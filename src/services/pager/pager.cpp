#include "services/pager/pager.hpp"

#include "common/log.hpp"
#include "events/block.hpp"

namespace doct::services {

namespace {

constexpr const char* kInstallMethod = "pager.install";

struct BackingStore {
  std::mutex mu;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::uint8_t>>
      pages;  // (segment, page) -> data
  std::uint64_t faults_served = 0;
  std::uint64_t writebacks = 0;

  std::vector<std::uint8_t>& page_for(SegmentId segment, std::size_t page,
                                      std::size_t page_size) {
    auto& data = pages[{segment.value(), page}];
    if (data.size() != page_size) data.resize(page_size, 0);
    return data;
  }
};

}  // namespace

std::shared_ptr<objects::PassiveObject> PagerServer::make(
    rpc::RpcEndpoint& rpc) {
  auto object = std::make_shared<objects::PassiveObject>("pager_server");
  auto store = std::make_shared<BackingStore>();

  // The buddy handler for VM_FAULT (§6.4): supplies a page to the faulting
  // node, then resumes the suspended thread (kResume verdict).
  object->define_entry(
      "on_fault",
      [store, &rpc](objects::CallCtx& ctx) -> Result<objects::Payload> {
        events::EventBlock block = events::EventBlock::from_ctx(ctx);
        auto r = block.user_reader();
        const auto segment = r.get_id<SegmentTag>();
        const auto page = static_cast<std::size_t>(r.get<std::uint64_t>());
        const auto access = r.get<dsm::Access>();
        const auto fault_node = r.get_id<NodeTag>();
        const auto page_size = static_cast<std::size_t>(r.get<std::uint32_t>());

        std::vector<std::uint8_t> data;
        {
          std::lock_guard<std::mutex> lock(store->mu);
          data = store->page_for(segment, page, page_size);
          store->faults_served++;
        }
        // Push the page into the faulting node's DSM engine.
        Writer w;
        w.put(segment);
        w.put(static_cast<std::uint64_t>(page));
        w.put(data);
        w.put(access == dsm::Access::kWrite ? dsm::PageState::kOwned
                                            : dsm::PageState::kShared);
        auto installed =
            rpc.call(fault_node, kInstallMethod, std::move(w).take());
        if (!installed.is_ok()) return installed.status();
        return objects::Payload{
            static_cast<std::uint8_t>(kernel::Verdict::kResume)};
      },
      objects::Visibility::kPrivate);

  // Direct fetch for faults taken outside any logical thread (no buddy
  // handler chain available to route through).
  object->define_entry("fetch_page", [store](objects::CallCtx& ctx)
                                         -> Result<objects::Payload> {
    const auto segment = ctx.args.get_id<SegmentTag>();
    const auto page = static_cast<std::size_t>(ctx.args.get<std::uint64_t>());
    const auto page_size = static_cast<std::size_t>(ctx.args.get<std::uint32_t>());
    Writer w;
    std::lock_guard<std::mutex> lock(store->mu);
    store->faults_served++;
    w.put(store->page_for(segment, page, page_size));
    return std::move(w).take();
  });

  object->define_entry("writeback", [store](objects::CallCtx& ctx)
                                        -> Result<objects::Payload> {
    const auto segment = ctx.args.get_id<SegmentTag>();
    const auto page = static_cast<std::size_t>(ctx.args.get<std::uint64_t>());
    auto data = ctx.args.get_bytes();
    std::lock_guard<std::mutex> lock(store->mu);
    store->pages[{segment.value(), page}] = std::move(data);
    store->writebacks++;
    return objects::Payload{};
  });

  object->define_entry("read_page", [store](objects::CallCtx& ctx)
                                        -> Result<objects::Payload> {
    const auto segment = ctx.args.get_id<SegmentTag>();
    const auto page = static_cast<std::size_t>(ctx.args.get<std::uint64_t>());
    const auto page_size = static_cast<std::size_t>(ctx.args.get<std::uint32_t>());
    Writer w;
    std::lock_guard<std::mutex> lock(store->mu);
    w.put(store->page_for(segment, page, page_size));
    return std::move(w).take();
  });

  return object;
}

PagerClient::PagerClient(events::EventSystem& events,
                         objects::ObjectManager& objects, dsm::DsmEngine& dsm,
                         rpc::RpcEndpoint& rpc)
    : events_(events), objects_(objects), dsm_(dsm), rpc_(rpc) {
  rpc_.register_method(
      kInstallMethod,
      [this](NodeId, Reader& args) -> Result<rpc::Payload> {
        const auto segment = args.get_id<SegmentTag>();
        const auto page = static_cast<std::size_t>(args.get<std::uint64_t>());
        auto data = args.get_bytes();
        const auto state = args.get<dsm::PageState>();
        const Status installed =
            dsm_.install_page(segment, page, std::move(data), state);
        if (!installed.is_ok()) return installed;
        {
          std::lock_guard<std::mutex> lock(mu_);
          stats_.pages_installed++;
        }
        return rpc::Payload{};
      },
      rpc::MethodClass::kFast);

  metrics_source_ = obs::metrics().register_source(
      "node" + std::to_string(objects_.self().value()) + ".pager", [this] {
        const PagerStats s = stats();
        return std::vector<std::pair<std::string, std::uint64_t>>{
            {"faults_served", s.faults_served},
            {"pages_installed", s.pages_installed},
            {"writebacks", s.writebacks},
        };
      });
}

PagerClient::~PagerClient() { rpc_.unregister_method(kInstallMethod); }

Status PagerClient::create_paged_segment(SegmentId segment,
                                         std::size_t num_pages,
                                         ObjectId server) {
  const Status created =
      dsm_.create_segment(segment, num_pages, dsm::SegmentMode::kUserPaged);
  if (!created.is_ok()) return created;

  const std::size_t page_size = dsm_.page_size();
  return dsm_.set_fault_hook(
      segment,
      [this, server, page_size](const dsm::FaultInfo& info)
          -> Result<std::optional<std::vector<std::uint8_t>>> {
        {
          std::lock_guard<std::mutex> lock(mu_);
          stats_.faults_served++;
        }
        Writer w;
        w.put(info.segment);
        w.put(static_cast<std::uint64_t>(info.page));
        w.put(info.access);
        w.put(info.node);
        w.put(static_cast<std::uint32_t>(page_size));

        if (kernel::Kernel::current() != nullptr) {
          // The paper's path: suspend the thread via a synchronous VM_FAULT;
          // the buddy handler (the server) installs the page, then resumes.
          auto verdict = events_.raise_exception(events::sys::kVmFault,
                                                 "vm fault", std::move(w).take());
          if (!verdict.is_ok()) return verdict.status();
          if (verdict.value() == kernel::Verdict::kTerminate) {
            return Status{StatusCode::kTerminated, "terminated during fault"};
          }
          // Page was installed out-of-band; the DSM engine re-checks.
          return std::optional<std::vector<std::uint8_t>>{};
        }

        // No logical thread: fetch directly from the server object.
        Writer fw;
        fw.put(info.segment);
        fw.put(static_cast<std::uint64_t>(info.page));
        fw.put(static_cast<std::uint32_t>(page_size));
        auto fetched = objects_.invoke(server, "fetch_page",
                                       std::move(fw).take());
        if (!fetched.is_ok()) return fetched.status();
        Reader r(std::move(fetched).value());
        return std::optional{r.get_bytes()};
      });
}

Status PagerClient::arm_current_thread(ObjectId server) {
  auto handler =
      events_.attach_handler(events::sys::kVmFault, server, "on_fault");
  return handler.status();
}

Status PagerClient::writeback(SegmentId segment, std::size_t page,
                              ObjectId server) {
  const std::size_t page_size = dsm_.page_size();
  auto data = dsm_.read(segment, page * page_size, page_size);
  if (!data.is_ok()) return data.status();
  Writer w;
  w.put(segment);
  w.put(static_cast<std::uint64_t>(page));
  w.put(data.value());
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.writebacks++;
  }
  auto reply = objects_.invoke(server, "writeback", std::move(w).take());
  return reply.status();
}

PagerStats PagerClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace doct::services
