// Heartbeat-based failure detector.
//
// The paper's machinery — TERMINATE chains (§4.2), dead-target tombstones and
// the thread locators (§7.1) — exists because distributed nodes fail
// mid-protocol, but nothing in the facility *notices* a failure; every layer
// discovers it one timeout at a time.  This service closes that gap: each
// participating node broadcasts a small heartbeat on an interval and watches
// for silence from its peers.  A peer silent for longer than
// `suspect_after` is suspected down; hearing from it again clears the
// suspicion.
//
// Both transitions are raised through the event system as the predefined
// system events NODE_DOWN / NODE_UP (object-based handling, §4.3): any
// passive object subscribed via subscribe() gets its registered handler
// entry run with the dead/recovered NodeId in the event block's user data.
// The lock manager uses this for orphaned-lock cleanup (release every lock
// whose holder lived on the crashed node); plain C++ callbacks are also
// offered for kernel-level reactions (census fast-path).
//
// Detection is edge-triggered: one NODE_DOWN per crash, one NODE_UP per
// recovery.  The beat thread detects the edge; the raises and callbacks run
// on the node executor's CONTROL lane (inline on the beat thread only if the
// lane refuses), so failure reactions overtake any event/bulk backlog and a
// slow subscriber can never delay the next heartbeat broadcast.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/mpsc_queue.hpp"
#include "common/timer_wheel.hpp"
#include "events/event_system.hpp"
#include "net/demux.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace doct::services {

struct FailureDetectorConfig {
  bool enabled = false;  // NodeRuntime constructs+starts the detector if set
  Duration heartbeat_interval{std::chrono::milliseconds(20)};
  // Silence threshold before a peer is suspected.  Keep this several
  // multiples of heartbeat_interval: the simulated wire adds latency and the
  // fault injector adds spikes.
  Duration suspect_after{std::chrono::milliseconds(120)};
};

struct FailureDetectorStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t node_down_raised = 0;
  std::uint64_t node_up_raised = 0;
};

class FailureDetector {
 public:
  FailureDetector(net::Transport& network, net::Demux& demux,
                  events::EventSystem& events, NodeId self,
                  FailureDetectorConfig config = {});
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  void start();  // idempotent
  void stop();   // idempotent; joins the beat thread

  // Registers a passive object for NODE_DOWN / NODE_UP delivery.  The object
  // must have define_handler("NODE_DOWN", ...) / ("NODE_UP", ...) entries;
  // the affected NodeId is serialized in the block's user data.
  void subscribe(ObjectId object);

  // C++-level hooks, run on the executor control lane after the events are
  // raised for that transition.
  void on_node_down(std::function<void(NodeId)> callback);
  void on_node_up(std::function<void(NodeId)> callback);

  [[nodiscard]] bool is_suspected(NodeId peer) const;
  [[nodiscard]] std::vector<NodeId> suspected() const;
  [[nodiscard]] FailureDetectorStats stats() const;

 private:
  void beat_loop();
  // One heartbeat broadcast + edge detection pass.  The locked ablation's
  // beat thread runs this on an interval; lockfree mode runs it as a
  // periodic timer-wheel callback (no dedicated thread wakeup loop).
  void beat_once();
  void on_heartbeat(const net::Message& message);
  void raise_transition(EventId event, NodeId peer);

  net::Transport& network_;
  events::EventSystem& events_;
  const NodeId self_;
  const FailureDetectorConfig config_;
  SteadyClock clock_;

  mutable std::mutex mu_;
  std::map<NodeId, Duration> last_heard_;  // peers that ever heartbeated
  std::set<NodeId> suspected_;
  std::vector<ObjectId> subscribers_;
  std::vector<std::function<void(NodeId)>> down_callbacks_;
  std::vector<std::function<void(NodeId)>> up_callbacks_;
  FailureDetectorStats stats_;
  bool running_ = false;
  bool shutdown_ = false;
  std::condition_variable beat_cv_;
  std::thread beat_thread_;  // locked ablation only
  // Lockfree mode: the heartbeat rides a periodic wheel timer.  Stopped
  // (joined) in stop() before the callback's state can go away.
  std::unique_ptr<common::TimerWheel> wheel_;

  // Last member: unregisters before the stats it reads are destroyed.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace doct::services
