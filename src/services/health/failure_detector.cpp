#include "services/health/failure_detector.hpp"

#include "common/serialize.hpp"
#include "events/registry.hpp"

namespace doct::services {

FailureDetector::FailureDetector(net::Transport& network, net::Demux& demux,
                                 events::EventSystem& events, NodeId self,
                                 FailureDetectorConfig config)
    : network_(network), events_(events), self_(self), config_(config) {
  demux.route(net::kHeartbeat,
              [this](const net::Message& m) { on_heartbeat(m); });

  metrics_source_ = obs::metrics().register_source(
      "node" + std::to_string(self_.value()) + ".health", [this] {
        const FailureDetectorStats s = stats();
        return std::vector<std::pair<std::string, std::uint64_t>>{
            {"heartbeats_sent", s.heartbeats_sent},
            {"heartbeats_received", s.heartbeats_received},
            {"node_down_raised", s.node_down_raised},
            {"node_up_raised", s.node_up_raised},
        };
      });
}

FailureDetector::~FailureDetector() { stop(); }

void FailureDetector::start() {
  bool beat_now = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_ || shutdown_) return;
    running_ = true;
    if (common::queue_backend() == common::QueueBackend::kLockfree) {
      wheel_ = std::make_unique<common::TimerWheel>();
      wheel_->schedule_periodic(config_.heartbeat_interval,
                                [this] { beat_once(); });
      beat_now = true;  // the periodic's first fire is one interval out
    } else {
      beat_thread_ = std::thread([this] { beat_loop(); });
    }
  }
  // Match the beat thread's beat-on-start (outside mu_: beat_once locks it).
  if (beat_now) beat_once();
}

void FailureDetector::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      shutdown_ = true;  // a later start() stays a no-op
      return;
    }
    shutdown_ = true;
  }
  if (wheel_) wheel_->stop();  // joins the tick thread; no fires after this
  beat_cv_.notify_all();
  if (beat_thread_.joinable()) beat_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void FailureDetector::subscribe(ObjectId object) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.push_back(object);
}

void FailureDetector::on_node_down(std::function<void(NodeId)> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  down_callbacks_.push_back(std::move(callback));
}

void FailureDetector::on_node_up(std::function<void(NodeId)> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  up_callbacks_.push_back(std::move(callback));
}

bool FailureDetector::is_suspected(NodeId peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  return suspected_.contains(peer);
}

std::vector<NodeId> FailureDetector::suspected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {suspected_.begin(), suspected_.end()};
}

FailureDetectorStats FailureDetector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FailureDetector::on_heartbeat(const net::Message& message) {
  // Network delivery thread: record only; transitions are detected (and
  // events raised) on the beat thread so this path never blocks.
  std::lock_guard<std::mutex> lock(mu_);
  last_heard_[message.from] = clock_.now();
  stats_.heartbeats_received++;
}

void FailureDetector::raise_transition(EventId event, NodeId peer) {
  std::vector<ObjectId> subscribers;
  std::vector<std::function<void(NodeId)>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    subscribers = subscribers_;
    callbacks = event == events::sys::kNodeDown ? down_callbacks_
                                                : up_callbacks_;
    if (event == events::sys::kNodeDown) {
      stats_.node_down_raised++;
    } else {
      stats_.node_up_raised++;
    }
  }
  // NODE_DOWN/NODE_UP reactions are control-plane work: run them on the
  // node executor's control lane so a peer death is acted on ahead of any
  // event/bulk backlog, and so a slow subscriber handler can never delay
  // the next heartbeat broadcast.  The task captures `events_` (outlives
  // the executor drain — NodeRuntime tears the executor down while every
  // subsystem is still alive) plus value copies of everything else.
  events::EventSystem& events = events_;
  auto deliver = [&events, event, peer, subscribers = std::move(subscribers),
                  callbacks = std::move(callbacks)] {
    Writer w;
    w.put(peer);
    const rpc::Payload user_data = std::move(w).take();
    for (ObjectId object : subscribers) {
      events.raise(event, object, user_data);
    }
    for (const auto& callback : callbacks) callback(peer);
  };
  // try_submit: the beat thread must never park on a full lane.  Inline
  // fallback keeps the edge-triggered delivery guarantee when the lane is
  // saturated or already shut down.
  if (!events_.executor().try_submit(exec::Lane::kControl, deliver).is_ok()) {
    deliver();
  }
}

void FailureDetector::beat_once() {
  network_.broadcast(net::Message{
      .from = self_,
      .to = NodeId{},
      .kind = net::kHeartbeat,
      .call = CallId{},
      .payload = {},
  });

  // Edge-detect both transitions under the lock, raise outside it.
  std::vector<NodeId> went_down;
  std::vector<NodeId> came_back;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.heartbeats_sent++;
    const Duration now = clock_.now();
    for (const auto& [peer, heard] : last_heard_) {
      const bool silent = now - heard > config_.suspect_after;
      if (silent && !suspected_.contains(peer)) {
        suspected_.insert(peer);
        went_down.push_back(peer);
      } else if (!silent && suspected_.contains(peer)) {
        suspected_.erase(peer);
        came_back.push_back(peer);
      }
    }
  }
  for (NodeId peer : went_down) {
    raise_transition(events::sys::kNodeDown, peer);
  }
  for (NodeId peer : came_back) {
    raise_transition(events::sys::kNodeUp, peer);
  }
}

void FailureDetector::beat_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutdown_) {
    lock.unlock();
    beat_once();
    lock.lock();
    if (shutdown_) break;
    beat_cv_.wait_for(lock, config_.heartbeat_interval,
                      [&] { return shutdown_; });
  }
}

}  // namespace doct::services
