// The "distributed ^C problem" (§6.3): cleanly terminating a distributed
// application whose threads and invocation chains span nodes, where the
// objects involved may be shared with unrelated applications.
//
// Following the paper's recipe exactly:
//   * every participating object registers an object-based handler for the
//     predefined event ABORT; when triggered, it performs cleanup for the
//     invocation in progress for the thread named in the event block
//     (arm_object(); the default handler provided here runs a user cleanup
//     callback, e.g. closing I/O channels and releasing resources).
//   * the root thread attaches handlers for TERMINATE and QUIT
//     (arm_current_thread()); every thread subsequently spawned from it
//     INHERITS these handlers through the thread attributes.
//   * when TERMINATE is raised anywhere at the root thread, its handler
//     aborts the top-level invocation — raising ABORT at every object on the
//     thread's invocation chain — and raises QUIT at the thread group.
//   * the QUIT handler on each member raises ABORT along that member's own
//     invocation chain, then terminates the thread.
//
// Threads running in shared objects are unaffected unless they belong to the
// application's group — exactly the sharability requirement of §3.1.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "events/event_system.hpp"
#include "objects/manager.hpp"

namespace doct::services {

class TerminationService {
 public:
  explicit TerminationService(events::EventSystem& events);

  // Registers the ABORT object-based handler on `object`.  `cleanup` runs
  // with the aborting thread's id whenever an ABORT for this object arrives.
  void arm_object(objects::PassiveObject& object,
                  std::function<void(ThreadId aborting_thread)> cleanup);

  // Attaches the TERMINATE and QUIT handlers to the CURRENT logical thread
  // (the application root).  Children spawned afterwards inherit them.
  Status arm_current_thread();

  // The ^C: raise TERMINATE at the application's root thread.
  Status request_termination(ThreadId root_thread);

 private:
  void register_procedures();

  events::EventSystem& events_;
};

}  // namespace doct::services
