#include "services/termination/termination.hpp"

#include "common/log.hpp"
#include "events/block.hpp"

namespace doct::services {

namespace {

constexpr const char* kRootHandlerProc = "doct.termination.on_terminate";
constexpr const char* kQuitHandlerProc = "doct.termination.on_quit";
constexpr const char* kAbortEntry = "doct_on_abort";

// Raises ABORT at every object on the thread's current invocation chain —
// "all objects that lie in the path between the root object and the objects
// where the threads are currently active" get a chance to clean up.
void abort_invocation_chain(events::EventSystem& events,
                            kernel::ThreadContext& thread) {
  const auto chain = thread.with_attributes(
      [](kernel::ThreadAttributes& a) { return a.call_chain; });
  for (const auto& frame : chain) {
    Writer w;
    w.put(thread.tid());
    const Status raised =
        events.raise(events::sys::kAbort, frame.object, std::move(w).take());
    if (!raised.is_ok()) {
      DOCT_LOG(kWarn) << "ABORT to " << frame.object.to_string()
                      << " failed: " << raised.to_string();
    }
  }
}

}  // namespace

TerminationService::TerminationService(events::EventSystem& events)
    : events_(events) {
  register_procedures();
}

void TerminationService::register_procedures() {
  // Idempotent: register_procedure replaces, and the bodies are stateless.
  events_.procedures().register_procedure(
      kRootHandlerProc, [this](events::PerThreadCallCtx& ctx) {
        // §6.3: "This handler aborts the top level invocation (causing all
        // objects to be notified) and raises the event QUIT to the thread
        // group."
        abort_invocation_chain(events_, ctx.thread);
        const GroupId group = ctx.thread.with_attributes(
            [](kernel::ThreadAttributes& a) { return a.group; });
        const Status raised = events_.raise(events::sys::kQuit, group);
        if (!raised.is_ok()) {
          DOCT_LOG(kWarn) << "QUIT to group failed: " << raised.to_string();
        }
        return kernel::Verdict::kTerminate;
      });

  events_.procedures().register_procedure(
      kQuitHandlerProc, [this](events::PerThreadCallCtx& ctx) {
        // Each member aborts its own invocation chain, then dies ("the
        // handler for the event QUIT simply terminates the thread").
        abort_invocation_chain(events_, ctx.thread);
        return kernel::Verdict::kTerminate;
      });
}

void TerminationService::arm_object(
    objects::PassiveObject& object,
    std::function<void(ThreadId)> cleanup) {
  object.define_entry(
      kAbortEntry,
      [cleanup = std::move(cleanup)](
          objects::CallCtx& ctx) -> Result<objects::Payload> {
        events::EventBlock block = events::EventBlock::from_ctx(ctx);
        ThreadId aborting;
        // The aborting thread's id travels in the block's user data (set by
        // abort_invocation_chain); fall back to the block's raiser.
        try {
          auto r = block.user_reader();
          aborting = r.get_id<ThreadTag>();
        } catch (const DeserializeError&) {
          aborting = block.raiser();
        }
        if (cleanup) cleanup(aborting);
        return objects::Payload{};
      },
      objects::Visibility::kPrivate);
  object.define_handler("ABORT", kAbortEntry);
}

Status TerminationService::arm_current_thread() {
  auto terminate_handler = events_.attach_handler(
      events::sys::kTerminate, kRootHandlerProc, events::OWN_CONTEXT);
  if (!terminate_handler.is_ok()) return terminate_handler.status();
  auto quit_handler = events_.attach_handler(
      events::sys::kQuit, kQuitHandlerProc, events::OWN_CONTEXT);
  if (!quit_handler.is_ok()) return quit_handler.status();
  return Status::ok();
}

Status TerminationService::request_termination(ThreadId root_thread) {
  return events_.raise(events::sys::kTerminate, root_thread);
}

}  // namespace doct::services
