// NameService — a well-known directory object mapping string names to
// ObjectIds.
//
// Every application in §6 designates "a central server" — a monitor, a
// debugger, a pager, a lock manager — and the paper assumes threads can find
// it.  In Clouds that is the system name service; here it is itself a
// passive object (dogfooding the object model) placed on a well-known node.
// bind/lookup/unbind run as ordinary invocations from any node; lookup
// results may be cached by the client (names are expected to be stable).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "objects/manager.hpp"

namespace doct::services {

class NameService {
 public:
  // Builds the directory object; register it on the well-known node.
  static std::shared_ptr<objects::PassiveObject> make();
};

// Client facade; cache_lookups keeps resolved names in-process.
class NameClient {
 public:
  NameClient(objects::ObjectManager& objects, ObjectId directory,
             bool cache_lookups = true)
      : objects_(objects), directory_(directory), cache_(cache_lookups) {}

  Status bind(const std::string& name, ObjectId object);
  // kAlreadyExists unless rebinding to the same object.
  Status bind_unique(const std::string& name, ObjectId object);
  [[nodiscard]] Result<ObjectId> lookup(const std::string& name);
  Status unbind(const std::string& name);
  [[nodiscard]] Result<std::vector<std::string>> list(const std::string& prefix);

  void drop_cache();

 private:
  objects::ObjectManager& objects_;
  ObjectId directory_;
  bool cache_;
  std::mutex mu_;
  std::map<std::string, ObjectId> cached_;
};

}  // namespace doct::services
