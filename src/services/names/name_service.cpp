#include "services/names/name_service.hpp"

namespace doct::services {

namespace {

struct Directory {
  std::mutex mu;
  std::map<std::string, ObjectId> bindings;
};

}  // namespace

std::shared_ptr<objects::PassiveObject> NameService::make() {
  auto object = std::make_shared<objects::PassiveObject>("name_service");
  auto dir = std::make_shared<Directory>();

  object->define_entry("bind", [dir](objects::CallCtx& ctx)
                                   -> Result<objects::Payload> {
    const auto name = ctx.args.get_string();
    const auto target = ctx.args.get_id<ObjectTag>();
    const bool unique = ctx.args.get_bool();
    if (name.empty() || !target.valid()) {
      return Status{StatusCode::kInvalidArgument, "name and object required"};
    }
    std::lock_guard<std::mutex> lock(dir->mu);
    auto it = dir->bindings.find(name);
    if (unique && it != dir->bindings.end() && it->second != target) {
      return Status{StatusCode::kAlreadyExists, name};
    }
    dir->bindings[name] = target;
    return objects::Payload{};
  });

  object->define_entry("lookup", [dir](objects::CallCtx& ctx)
                                     -> Result<objects::Payload> {
    const auto name = ctx.args.get_string();
    std::lock_guard<std::mutex> lock(dir->mu);
    auto it = dir->bindings.find(name);
    if (it == dir->bindings.end()) {
      return Status{StatusCode::kNoSuchObject, "unbound name: " + name};
    }
    Writer w;
    w.put(it->second);
    return std::move(w).take();
  });

  object->define_entry("unbind", [dir](objects::CallCtx& ctx)
                                     -> Result<objects::Payload> {
    const auto name = ctx.args.get_string();
    std::lock_guard<std::mutex> lock(dir->mu);
    if (dir->bindings.erase(name) == 0) {
      return Status{StatusCode::kNoSuchObject, "unbound name: " + name};
    }
    return objects::Payload{};
  });

  object->define_entry("list", [dir](objects::CallCtx& ctx)
                                    -> Result<objects::Payload> {
    const auto prefix = ctx.args.get_string();
    Writer w;
    std::lock_guard<std::mutex> lock(dir->mu);
    std::uint32_t count = 0;
    for (const auto& [name, target] : dir->bindings) {
      if (name.rfind(prefix, 0) == 0) count++;
    }
    w.put(count);
    for (const auto& [name, target] : dir->bindings) {
      if (name.rfind(prefix, 0) == 0) w.put(name);
    }
    return std::move(w).take();
  });

  return object;
}

Status NameClient::bind(const std::string& name, ObjectId object) {
  Writer w;
  w.put(name);
  w.put(object);
  w.put(false);
  auto reply = objects_.invoke(directory_, "bind", std::move(w).take());
  if (reply.is_ok() && cache_) {
    std::lock_guard<std::mutex> lock(mu_);
    cached_[name] = object;
  }
  return reply.status();
}

Status NameClient::bind_unique(const std::string& name, ObjectId object) {
  Writer w;
  w.put(name);
  w.put(object);
  w.put(true);
  auto reply = objects_.invoke(directory_, "bind", std::move(w).take());
  if (reply.is_ok() && cache_) {
    std::lock_guard<std::mutex> lock(mu_);
    cached_[name] = object;
  }
  return reply.status();
}

Result<ObjectId> NameClient::lookup(const std::string& name) {
  if (cache_) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cached_.find(name);
    if (it != cached_.end()) return it->second;
  }
  Writer w;
  w.put(name);
  auto reply = objects_.invoke(directory_, "lookup", std::move(w).take());
  if (!reply.is_ok()) return reply.status();
  Reader r(std::move(reply).value());
  const ObjectId found = r.get_id<ObjectTag>();
  if (cache_) {
    std::lock_guard<std::mutex> lock(mu_);
    cached_[name] = found;
  }
  return found;
}

Status NameClient::unbind(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cached_.erase(name);
  }
  Writer w;
  w.put(name);
  return objects_.invoke(directory_, "unbind", std::move(w).take()).status();
}

Result<std::vector<std::string>> NameClient::list(const std::string& prefix) {
  Writer w;
  w.put(prefix);
  auto reply = objects_.invoke(directory_, "list", std::move(w).take());
  if (!reply.is_ok()) return reply.status();
  Reader r(std::move(reply).value());
  const auto count = r.get<std::uint32_t>();
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) names.push_back(r.get_string());
  return names;
}

void NameClient::drop_cache() {
  std::lock_guard<std::mutex> lock(mu_);
  cached_.clear();
}

}  // namespace doct::services
