// Distributed debugger built on buddy handlers (§4.1, §9).
//
// "Buddy handlers are quite useful in implementing monitors, debuggers, etc.
//  where an application can specify a central server as the event handler
//  for events posted to its threads."  And, following Mach's split (§9),
// the debugger "operates outside of this context, as a separate task":
// here it is a central passive object on any node.
//
// Debuggee side: a thread attaches the BREAKPOINT buddy handler once
// (attach_debugger) and then calls breakpoint("label") at interesting
// points.  The breakpoint raises a synchronous event at the thread itself;
// the buddy handler — the debugger server — records the stop and BLOCKS the
// thread until the controlling side resolves it with a verdict (resume or
// terminate).  While stopped, the controller can inspect the stop's captured
// state (thread, node, object, label, attribute snapshot).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "events/event_system.hpp"
#include "objects/manager.hpp"

namespace doct::services {

struct StopInfo {
  std::uint64_t id = 0;
  ThreadId thread;
  std::uint64_t node = 0;
  std::uint64_t object = 0;  // object the thread occupied, 0 if none
  std::string label;
  std::string io_channel;  // sampled from the thread's attributes
};

class DebuggerServer {
 public:
  static std::shared_ptr<objects::PassiveObject> make();
  static std::vector<StopInfo> decode_stops(const objects::Payload& payload);
};

// Controller side: inspect and resolve stops.
class DebuggerController {
 public:
  DebuggerController(objects::ObjectManager& objects, ObjectId server)
      : objects_(objects), server_(server) {}

  [[nodiscard]] Result<std::vector<StopInfo>> pending_stops();
  Status resolve(std::uint64_t stop_id, kernel::Verdict verdict);

 private:
  objects::ObjectManager& objects_;
  ObjectId server_;
};

// Debuggee side.
// Attaches the BREAKPOINT buddy handler to the CURRENT thread.
Status attach_debugger(events::EventSystem& events, ObjectId server);
// Hits a breakpoint: blocks until the controller resolves, then returns the
// verdict (kTerminate has already been applied to the thread).
Result<kernel::Verdict> breakpoint(events::EventSystem& events,
                                   const std::string& label);

}  // namespace doct::services
