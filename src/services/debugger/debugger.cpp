#include "services/debugger/debugger.hpp"

#include <condition_variable>
#include <map>
#include <mutex>

#include "events/block.hpp"

namespace doct::services {

namespace {

constexpr const char* kBreakpointEvent = "BREAKPOINT";

struct ServerState {
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t next_id = 1;
  struct Stop {
    StopInfo info;
    std::optional<kernel::Verdict> verdict;
  };
  std::map<std::uint64_t, Stop> stops;
};

}  // namespace

std::shared_ptr<objects::PassiveObject> DebuggerServer::make() {
  auto object = std::make_shared<objects::PassiveObject>("debugger_server");
  auto state = std::make_shared<ServerState>();

  // The buddy handler: records the stop and blocks the debuggee (this runs
  // on the server node's RPC worker while the debuggee thread waits in its
  // synchronous raise) until the controller resolves it.
  object->define_entry(
      "on_breakpoint",
      [state](objects::CallCtx& ctx) -> Result<objects::Payload> {
        events::EventBlock block = events::EventBlock::from_ctx(ctx);
        auto r = block.user_reader();
        StopInfo info;
        info.label = r.get_string();
        info.node = r.get<std::uint64_t>();
        info.object = r.get<std::uint64_t>();
        info.io_channel = r.get_string();
        info.thread = block.target_thread();

        std::unique_lock<std::mutex> lock(state->mu);
        const std::uint64_t id = state->next_id++;
        info.id = id;
        state->stops[id] = ServerState::Stop{info, std::nullopt};
        state->cv.notify_all();
        // Block until resolved (bounded so an abandoned debuggee cannot hold
        // the worker forever).
        const bool resolved = state->cv.wait_for(
            lock, std::chrono::seconds(30),
            [&] { return state->stops[id].verdict.has_value(); });
        const kernel::Verdict verdict =
            resolved ? *state->stops[id].verdict : kernel::Verdict::kResume;
        state->stops.erase(id);
        return objects::Payload{static_cast<std::uint8_t>(verdict)};
      },
      objects::Visibility::kPrivate);

  object->define_entry("stops", [state](objects::CallCtx&)
                                    -> Result<objects::Payload> {
    Writer w;
    std::lock_guard<std::mutex> lock(state->mu);
    std::uint32_t pending = 0;
    for (const auto& [id, stop] : state->stops) {
      if (!stop.verdict.has_value()) pending++;
    }
    w.put(pending);
    for (const auto& [id, stop] : state->stops) {
      if (stop.verdict.has_value()) continue;
      w.put(stop.info.id);
      w.put(stop.info.thread);
      w.put(stop.info.node);
      w.put(stop.info.object);
      w.put(stop.info.label);
      w.put(stop.info.io_channel);
    }
    return std::move(w).take();
  });

  object->define_entry("resolve", [state](objects::CallCtx& ctx)
                                      -> Result<objects::Payload> {
    const auto id = ctx.args.get<std::uint64_t>();
    const auto verdict = ctx.args.get<kernel::Verdict>();
    std::lock_guard<std::mutex> lock(state->mu);
    auto it = state->stops.find(id);
    if (it == state->stops.end()) {
      return Status{StatusCode::kInvalidArgument,
                    "no pending stop " + std::to_string(id)};
    }
    it->second.verdict = verdict;
    state->cv.notify_all();
    return objects::Payload{};
  });

  return object;
}

std::vector<StopInfo> DebuggerServer::decode_stops(
    const objects::Payload& payload) {
  Reader r(payload);
  const auto count = r.get<std::uint32_t>();
  std::vector<StopInfo> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    StopInfo info;
    info.id = r.get<std::uint64_t>();
    info.thread = r.get_id<ThreadTag>();
    info.node = r.get<std::uint64_t>();
    info.object = r.get<std::uint64_t>();
    info.label = r.get_string();
    info.io_channel = r.get_string();
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::vector<StopInfo>> DebuggerController::pending_stops() {
  auto reply = objects_.invoke(server_, "stops", {});
  if (!reply.is_ok()) return reply.status();
  return DebuggerServer::decode_stops(reply.value());
}

Status DebuggerController::resolve(std::uint64_t stop_id,
                                   kernel::Verdict verdict) {
  Writer w;
  w.put(stop_id);
  w.put(verdict);
  return objects_.invoke(server_, "resolve", std::move(w).take()).status();
}

Status attach_debugger(events::EventSystem& events, ObjectId server) {
  const EventId event = events.registry().register_event(kBreakpointEvent);
  return events.attach_handler(event, server, "on_breakpoint").status();
}

Result<kernel::Verdict> breakpoint(events::EventSystem& events,
                                   const std::string& label) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return Status{StatusCode::kInvalidArgument,
                  "breakpoint requires a logical thread"};
  }
  const EventId event = events.registry().register_event(kBreakpointEvent);
  Writer w;
  w.put(label);
  w.put(ctx->node().value());
  w.put(ctx->current_object().value());
  w.put(ctx->with_attributes(
      [](kernel::ThreadAttributes& a) { return a.io_channel; }));
  return events.raise_exception(event, "breakpoint " + label,
                                std::move(w).take());
}

}  // namespace doct::services
