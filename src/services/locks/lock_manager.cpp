#include "services/locks/lock_manager.hpp"

#include "common/log.hpp"
#include "events/block.hpp"

namespace doct::services {

namespace {

kernel::Verdict parse_tid_and_unlock(LockServer::State& state,
                                     const std::string& name, ThreadId tid) {
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.holders.find(name);
  if (it != state.holders.end() && it->second == tid) {
    state.holders.erase(it);
    state.holder_nodes.erase(name);
  }
  // Unlock handlers always propagate: the TERMINATE must continue through
  // the rest of the chain (more unlocks, then the application's handler or
  // the default terminate action).
  return kernel::Verdict::kPropagate;
}

}  // namespace

std::shared_ptr<objects::PassiveObject> LockServer::make() {
  auto object = std::make_shared<objects::PassiveObject>("lock_server");
  auto state = std::make_shared<State>();

  // acquire(name, tid, node) -> bool granted.  Non-blocking try: clients
  // poll via their kernel's interruptible wait so TERMINATE can reach them
  // mid-wait.  `node` is where the holder lives, kept for NODE_DOWN cleanup.
  object->define_entry("acquire", [state](objects::CallCtx& ctx)
                                      -> Result<objects::Payload> {
    const auto name = ctx.args.get_string();
    const auto tid = ctx.args.get_id<ThreadTag>();
    const auto node = ctx.args.get_id<NodeTag>();
    std::lock_guard<std::mutex> lock(state->mu);
    auto it = state->holders.find(name);
    const bool granted = it == state->holders.end() || it->second == tid;
    if (granted) {
      state->holders[name] = tid;
      state->holder_nodes[name] = node;
    }
    Writer w;
    w.put(granted);
    return std::move(w).take();
  });

  object->define_entry("release", [state](objects::CallCtx& ctx)
                                      -> Result<objects::Payload> {
    const auto name = ctx.args.get_string();
    const auto tid = ctx.args.get_id<ThreadTag>();
    std::lock_guard<std::mutex> lock(state->mu);
    auto it = state->holders.find(name);
    if (it == state->holders.end() || it->second != tid) {
      return Status{StatusCode::kPermissionDenied,
                    "lock " + name + " not held by " + tid.to_string()};
    }
    state->holders.erase(it);
    state->holder_nodes.erase(name);
    return objects::Payload{};
  });

  object->define_entry("holder", [state](objects::CallCtx& ctx)
                                     -> Result<objects::Payload> {
    const auto name = ctx.args.get_string();
    std::lock_guard<std::mutex> lock(state->mu);
    auto it = state->holders.find(name);
    Writer w;
    w.put(it == state->holders.end() ? ThreadId{} : it->second);
    return std::move(w).take();
  });

  // The per-lock unlock routine chained to TERMINATE (§4.2).  Private: only
  // event delivery may call it.  The event block names the terminating
  // thread; the lock name travels in the handler's entry suffix... the entry
  // is shared, the lock name is read from the handler attachment's user data
  // carried in the notice.  Since TERMINATE notices carry no per-handler
  // payload, the unlock entry releases EVERY lock held by the thread named
  // in the block — each chained handler is idempotent, so N chained handlers
  // release N locks correctly regardless of order.
  object->define_entry(
      "unlock_on_terminate",
      [state](objects::CallCtx& ctx) -> Result<objects::Payload> {
        events::EventBlock block = events::EventBlock::from_ctx(ctx);
        const ThreadId victim = block.target_thread();
        std::vector<std::string> held;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          for (const auto& [name, holder] : state->holders) {
            if (holder == victim) held.push_back(name);
          }
        }
        for (const auto& name : held) {
          parse_tid_and_unlock(*state, name, victim);
        }
        return objects::Payload{
            static_cast<std::uint8_t>(kernel::Verdict::kPropagate)};
      },
      objects::Visibility::kPrivate);

  // Orphaned-lock cleanup (NODE_DOWN from the failure detector): a crashed
  // node's threads can never run their TERMINATE chains, so every lock held
  // from that node is released here instead.  Idempotent — a duplicate
  // NODE_DOWN or a racing explicit release finds nothing left to free.
  object->define_entry(
      "on_node_down",
      [state](objects::CallCtx& ctx) -> Result<objects::Payload> {
        events::EventBlock block = events::EventBlock::from_ctx(ctx);
        Reader user = block.user_reader();
        const NodeId down = user.get_id<NodeTag>();
        std::lock_guard<std::mutex> lock(state->mu);
        for (auto it = state->holder_nodes.begin();
             it != state->holder_nodes.end();) {
          if (it->second == down) {
            state->holders.erase(it->first);
            it = state->holder_nodes.erase(it);
          } else {
            ++it;
          }
        }
        return objects::Payload{
            static_cast<std::uint8_t>(kernel::Verdict::kResume)};
      },
      objects::Visibility::kPrivate);
  object->define_handler("NODE_DOWN", "on_node_down");

  return object;
}

Status LockClient::acquire(const std::string& name, Duration timeout) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return {StatusCode::kInvalidArgument, "acquire requires a logical thread"};
  }
  auto& kernel = events_.kernel();
  const Duration deadline =
      std::chrono::duration_cast<Duration>(
          std::chrono::steady_clock::now().time_since_epoch()) +
      timeout;

  while (true) {
    Writer w;
    w.put(name);
    w.put(ctx->tid());
    w.put(kernel.self());  // holder's node, for NODE_DOWN orphan cleanup
    auto reply = objects_.invoke(server_, "acquire", std::move(w).take());
    if (!reply.is_ok()) return reply.status();
    Reader r(std::move(reply).value());
    if (r.get_bool()) break;  // granted
    const auto now = std::chrono::duration_cast<Duration>(
        std::chrono::steady_clock::now().time_since_epoch());
    if (now >= deadline) {
      return {StatusCode::kTimeout, "lock " + name};
    }
    const Status slept = kernel.sleep_for(std::chrono::milliseconds(2));
    if (!slept.is_ok()) return slept;  // terminated while waiting
  }

  // Chain the unlock to TERMINATE (buddy handler on the lock server).
  auto chained =
      events_.attach_handler(events::sys::kTerminate, server_,
                             "unlock_on_terminate");
  if (!chained.is_ok()) {
    // Roll the acquisition back rather than leaking an unchained lock.
    release(name);
    return chained.status();
  }
  std::lock_guard<std::mutex> lock(mu_);
  chained_[name] = chained.value();
  return Status::ok();
}

Status LockClient::release(const std::string& name) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return {StatusCode::kInvalidArgument, "release requires a logical thread"};
  }
  HandlerId chained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = chained_.find(name);
    if (it != chained_.end()) {
      chained = it->second;
      chained_.erase(it);
    }
  }
  if (chained.valid()) events_.detach_handler(chained);

  Writer w;
  w.put(name);
  w.put(ctx->tid());
  auto reply = objects_.invoke(server_, "release", std::move(w).take());
  return reply.status();
}

Result<ThreadId> LockClient::holder(const std::string& name) {
  Writer w;
  w.put(name);
  auto reply = objects_.invoke(server_, "holder", std::move(w).take());
  if (!reply.is_ok()) return reply.status();
  Reader r(std::move(reply).value());
  return r.get_id<ThreadTag>();
}

}  // namespace doct::services
