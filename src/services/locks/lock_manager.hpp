// Distributed lock management via handler chaining (§4.2).
//
// "Chaining of handlers is very useful in distributed lock management.
//  Every time a thread locks data in an object, the unlock routine for that
//  data is chained to the thread's TERMINATE handler.  If the threads
//  receive a TERMINATE signal, all locked data are unlocked, regardless of
//  their location and scope."
//
// LockServer is a passive object (place it on any node) holding named locks.
// LockClient::acquire() invokes the server and chains a buddy TERMINATE
// handler pointing at the per-lock unlock entry of the server; the handler
// renders kPropagate so the TERMINATE continues outward through the rest of
// the chain (ultimately reaching the default terminate action or the
// application's own TERMINATE handler).  release() detaches the handler and
// releases the lock.
//
// Crash recovery: the server records the node each holder lives on and
// registers an object-based NODE_DOWN handler (subscribe the server object
// to a services::FailureDetector).  When a holder's node crashes, its
// TERMINATE chain can never run — the chain lives on the dead node — so the
// NODE_DOWN handler releases every lock held from that node instead.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "events/event_system.hpp"
#include "objects/manager.hpp"

namespace doct::services {

class LockServer {
 public:
  // Builds the server object; register it with an ObjectManager to place it.
  static std::shared_ptr<objects::PassiveObject> make();

  // Introspection helpers used by tests (operate on the object's shared
  // state; valid on the node hosting the server).
  struct State {
    std::mutex mu;
    std::map<std::string, ThreadId> holders;          // lock -> holder
    std::map<std::string, NodeId> holder_nodes;       // lock -> holder's node
    std::map<std::string, std::set<ThreadId>> queue;  // waiters (FIFO-ish)
  };
};

// Client-side facade; usable from inside any logical thread on any node.
class LockClient {
 public:
  LockClient(events::EventSystem& events, objects::ObjectManager& objects,
             ObjectId server)
      : events_(events), objects_(objects), server_(server) {}

  // Blocks (bounded by timeout) until the named lock is granted to the
  // current logical thread, then chains the unlock to TERMINATE.
  Status acquire(const std::string& name,
                 Duration timeout = std::chrono::seconds(10));

  // Releases the lock and detaches its TERMINATE unlock handler.
  Status release(const std::string& name);

  // Current holder of a lock (invalid ThreadId if free).
  Result<ThreadId> holder(const std::string& name);

 private:
  events::EventSystem& events_;
  objects::ObjectManager& objects_;
  ObjectId server_;
  std::mutex mu_;
  std::map<std::string, HandlerId> chained_;  // lock name -> TERMINATE handler
};

}  // namespace doct::services
