#include "rpc/rpc.hpp"

#include "common/log.hpp"

namespace doct::rpc {

namespace {

// Wire format of a request payload: method name, args bytes, oneway flag.
Payload encode_request(const std::string& method, const Payload& args,
                       bool oneway) {
  Writer w;
  w.put(method);
  w.put(args);
  w.put(oneway);
  return std::move(w).take();
}

// Wire format of a response payload: status code, status message, result.
Payload encode_response(StatusCode code, const std::string& message,
                        const Payload& result) {
  Writer w;
  w.put(code);
  w.put(message);
  w.put(result);
  return std::move(w).take();
}

}  // namespace

Result<Payload> PendingCall::claim(Duration timeout) {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->cv.wait_for(lock, timeout,
                           [&] { return state_->result.has_value(); })) {
    return Status{StatusCode::kTimeout, "rpc claim timed out"};
  }
  return *state_->result;
}

bool PendingCall::ready() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->result.has_value();
}

RpcEndpoint::RpcEndpoint(net::Network& network, net::Demux& demux, NodeId self,
                         IdGenerator& ids, RpcConfig config)
    : network_(network),
      self_(self),
      ids_(ids),
      config_(config),
      workers_(config.worker_threads) {
  demux.route(net::kRpcRequest,
              [this](const net::Message& m) { on_request(m); });
  demux.route(net::kRpcResponse,
              [this](const net::Message& m) { on_response(m); });
}

void RpcEndpoint::drain_workers() { workers_.shutdown(); }

RpcEndpoint::~RpcEndpoint() {
  workers_.shutdown();
  // Fail any still-pending calls so blocked callers wake up.
  std::unordered_map<CallId, std::shared_ptr<PendingCall::State>> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending.swap(pending_);
  }
  for (auto& [id, state] : pending) {
    fulfill(*state, Status{StatusCode::kAborted, "endpoint shut down"});
  }
}

void RpcEndpoint::register_method(std::string name, Method method,
                                  MethodClass method_class) {
  std::lock_guard<std::mutex> lock(methods_mu_);
  methods_[std::move(name)] = RegisteredMethod{std::move(method), method_class};
}

void RpcEndpoint::unregister_method(const std::string& name) {
  std::lock_guard<std::mutex> lock(methods_mu_);
  methods_.erase(name);
}

void RpcEndpoint::fulfill(PendingCall::State& state, Result<Payload> result) {
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.result.has_value()) return;  // first writer wins
    state.result = std::move(result);
  }
  state.cv.notify_all();
}

CallId RpcEndpoint::send_request(NodeId target, const std::string& method,
                                 Payload args,
                                 std::shared_ptr<PendingCall::State> state) {
  const CallId call = ids_.next<CallTag>();
  const bool oneway = (state == nullptr);
  if (state) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.emplace(call, std::move(state));
  }
  const Status sent = network_.send(net::Message{
      .from = self_,
      .to = target,
      .kind = net::kRpcRequest,
      .call = call,
      .payload = encode_request(method, args, oneway),
  });
  if (!sent.is_ok()) {
    // Transport rejected the send outright (unknown node): fail fast rather
    // than waiting for a timeout.
    std::shared_ptr<PendingCall::State> failed;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      auto it = pending_.find(call);
      if (it != pending_.end()) {
        failed = it->second;
        pending_.erase(it);
      }
    }
    if (failed) fulfill(*failed, sent);
  }
  return call;
}

Result<Payload> RpcEndpoint::call(NodeId target, const std::string& method,
                                  Payload args) {
  return call(target, method, std::move(args), config_.default_timeout);
}

Result<Payload> RpcEndpoint::call(NodeId target, const std::string& method,
                                  Payload args, Duration timeout) {
  PendingCall pending;
  const CallId id = send_request(target, method, std::move(args), pending.state_);
  auto result = pending.claim(timeout);
  if (!result.is_ok() && result.status().code() == StatusCode::kTimeout) {
    // Forget the correlation entry; a late response is dropped harmlessly.
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(id);
  }
  return result;
}

PendingCall RpcEndpoint::call_async(NodeId target, const std::string& method,
                                    Payload args) {
  PendingCall pending;
  send_request(target, method, std::move(args), pending.state_);
  return pending;
}

Status RpcEndpoint::call_oneway(NodeId target, const std::string& method,
                                Payload args) {
  send_request(target, method, std::move(args), nullptr);
  return Status::ok();
}

void RpcEndpoint::on_request(const net::Message& message) {
  // Runs on the network delivery thread.  kFast methods execute inline here
  // (they are required not to block); kBlocking methods go to the pool.
  MethodClass method_class = MethodClass::kBlocking;
  try {
    Reader peek(message.payload);
    const std::string method_name = peek.get_string();
    std::lock_guard<std::mutex> lock(methods_mu_);
    auto it = methods_.find(method_name);
    if (it != methods_.end()) method_class = it->second.method_class;
  } catch (const DeserializeError&) {
    // execute_request reports the malformed payload.
  }

  if (method_class == MethodClass::kFast) {
    execute_request(message);
    return;
  }
  const bool accepted =
      workers_.submit([this, message] { execute_request(message); });
  if (!accepted) {
    DOCT_LOG(kWarn) << "rpc request dropped during shutdown";
  }
}

void RpcEndpoint::execute_request(const net::Message& message) {
  Reader r(message.payload);
  std::string method_name;
  Payload args;
  bool oneway = false;
  try {
    method_name = r.get_string();
    args = r.get_bytes();
    oneway = r.get_bool();
  } catch (const DeserializeError& e) {
    DOCT_LOG(kError) << "malformed rpc request: " << e.what();
    return;
  }

  Method method;
  {
    std::lock_guard<std::mutex> lock(methods_mu_);
    auto it = methods_.find(method_name);
    if (it != methods_.end()) method = it->second.method;
  }

  Result<Payload> result =
      method ? [&]() -> Result<Payload> {
        Reader args_reader(std::move(args));
        return method(message.from, args_reader);
      }()
             : Result<Payload>(Status{StatusCode::kInvalidArgument,
                                      "no such method: " + method_name});
  if (oneway) return;

  const Status& status = result.status();
  network_.send(net::Message{
      .from = self_,
      .to = message.from,
      .kind = net::kRpcResponse,
      .call = message.call,
      .payload = encode_response(status.code(), status.message(),
                                 result.is_ok() ? result.value() : Payload{}),
  });
}

void RpcEndpoint::on_response(const net::Message& message) {
  std::shared_ptr<PendingCall::State> state;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(message.call);
    if (it == pending_.end()) return;  // late response after timeout: drop
    state = it->second;
    pending_.erase(it);
  }
  try {
    Reader r(message.payload);
    const auto code = r.get<StatusCode>();
    auto status_message = r.get_string();
    auto result = r.get_bytes();
    if (code == StatusCode::kOk) {
      fulfill(*state, std::move(result));
    } else {
      fulfill(*state, Status{code, std::move(status_message)});
    }
  } catch (const DeserializeError& e) {
    fulfill(*state, Status{StatusCode::kInternal,
                           std::string("malformed rpc response: ") + e.what()});
  }
}

}  // namespace doct::rpc
