#include "rpc/rpc.hpp"

#include "common/log.hpp"

namespace doct::rpc {

namespace {

// Wire format of a request payload: method name, args bytes, oneway flag.
Payload encode_request(const std::string& method, const Payload& args,
                       bool oneway) {
  Writer w;
  w.put(method);
  w.put(args);
  w.put(oneway);
  return std::move(w).take();
}

// Wire format of a response payload: status code, status message, result.
Payload encode_response(StatusCode code, const std::string& message,
                        const Payload& result) {
  Writer w;
  w.put(code);
  w.put(message);
  w.put(result);
  return std::move(w).take();
}

}  // namespace

Result<Payload> PendingCall::claim(Duration timeout) {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->cv.wait_for(lock, timeout,
                           [&] { return state_->result.has_value(); })) {
    return Status{StatusCode::kTimeout, "rpc claim timed out"};
  }
  return *state_->result;
}

bool PendingCall::ready() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->result.has_value();
}

RpcEndpoint::RpcEndpoint(net::Transport& network, net::Demux& demux, NodeId self,
                         IdGenerator& ids, RpcConfig config,
                         exec::Executor* executor)
    : network_(network),
      self_(self),
      ids_(ids),
      config_(config),
      owned_executor_(executor
                          ? nullptr
                          : std::make_unique<exec::Executor>(
                                exec::ExecutorConfig{},
                                "node" + std::to_string(self.value()) +
                                    ".exec")),
      executor_(executor ? executor : owned_executor_.get()),
      retry_rng_(config.retry_seed ^ self.value()) {
  demux.route(net::kRpcRequest,
              [this](const net::Message& m) { on_request(m); });
  demux.route(net::kRpcResponse,
              [this](const net::Message& m) { on_response(m); });
  if (common::queue_backend() == common::QueueBackend::kLockfree) {
    // Per-call wheel timers: schedule/cancel are O(1) and a response never
    // wakes (or rescans) anything.
    wheel_ = std::make_unique<common::TimerWheel>();
  } else {
    retry_thread_ = std::thread([this] { retry_loop(); });
  }
  call_us_ = &obs::metrics().histogram("rpc.call_us");
  metrics_source_ = obs::metrics().register_source(
      "node" + std::to_string(self.value()) + ".rpc", [this] {
        const RpcStats s = stats();
        return std::vector<std::pair<std::string, std::uint64_t>>{
            {"requests_executed", s.requests_executed},
            {"retries_sent", s.retries_sent},
            {"deadline_timeouts", s.deadline_timeouts},
            {"dedup_replays", s.dedup_replays},
            {"duplicate_drops", s.duplicate_drops},
            {"requests_shed", s.requests_shed},
        };
      });
}

void RpcEndpoint::drain_workers() { executor_->shutdown(); }

RpcEndpoint::~RpcEndpoint() {
  // Join the wheel's tick thread first: after stop() no retry callback can
  // be touching pending_ / network_ while they are torn down below.
  if (wheel_) wheel_->stop();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    retry_shutdown_ = true;
  }
  retry_cv_.notify_all();
  if (retry_thread_.joinable()) retry_thread_.join();
  // An owned executor is drained here, while the endpoint is still intact;
  // a shared one must already have been shut down by its owner (NodeRuntime
  // does so in its destructor body).
  if (owned_executor_) owned_executor_->shutdown();
  // Fail any still-pending calls so blocked callers wake up.
  std::unordered_map<CallId, PendingRecord> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending.swap(pending_);
  }
  for (auto& [id, record] : pending) {
    fulfill(*record.state, Status{StatusCode::kAborted, "endpoint shut down"});
  }
}

RpcStats RpcEndpoint::stats() const {
  RpcStats out;
  out.requests_executed =
      stats_.requests_executed.load(std::memory_order_relaxed);
  out.retries_sent = stats_.retries_sent.load(std::memory_order_relaxed);
  out.deadline_timeouts =
      stats_.deadline_timeouts.load(std::memory_order_relaxed);
  out.dedup_replays = stats_.dedup_replays.load(std::memory_order_relaxed);
  out.duplicate_drops = stats_.duplicate_drops.load(std::memory_order_relaxed);
  out.requests_shed = stats_.requests_shed.load(std::memory_order_relaxed);
  return out;
}

void RpcEndpoint::reset_stats() {
  stats_.requests_executed.store(0, std::memory_order_relaxed);
  stats_.retries_sent.store(0, std::memory_order_relaxed);
  stats_.deadline_timeouts.store(0, std::memory_order_relaxed);
  stats_.dedup_replays.store(0, std::memory_order_relaxed);
  stats_.duplicate_drops.store(0, std::memory_order_relaxed);
  stats_.requests_shed.store(0, std::memory_order_relaxed);
}

void RpcEndpoint::bump(common::PaddedCounter AtomicStats::* counter) {
  (stats_.*counter).fetch_add(1, std::memory_order_relaxed);
}

void RpcEndpoint::register_method(std::string name, Method method,
                                  MethodClass method_class, exec::Lane lane) {
  std::lock_guard<std::mutex> lock(methods_mu_);
  methods_[std::move(name)] =
      RegisteredMethod{std::move(method), method_class, lane};
}

void RpcEndpoint::unregister_method(const std::string& name) {
  std::lock_guard<std::mutex> lock(methods_mu_);
  methods_.erase(name);
}

void RpcEndpoint::fulfill(PendingCall::State& state, Result<Payload> result) {
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.result.has_value()) return;  // first writer wins
    state.result = std::move(result);
  }
  state.cv.notify_all();
}

Duration RpcEndpoint::jittered(Duration backoff) {
  // Uniform in [1-jitter, 1+jitter] times the backoff; caller holds
  // pending_mu_ (retry_rng_ is guarded by it).
  const double factor =
      1.0 + config_.retry_jitter * (2.0 * retry_rng_.uniform() - 1.0);
  return std::chrono::duration_cast<Duration>(backoff * factor);
}

CallId RpcEndpoint::send_request(NodeId target, const std::string& method,
                                 Payload args,
                                 std::shared_ptr<PendingCall::State> state,
                                 Duration timeout) {
  const CallId call = ids_.next<CallTag>();
  const bool oneway = (state == nullptr);
  // The caller's ambient trace (if any) rides the request headers, and is
  // remembered in the pending record so retransmissions carry it too.
  const obs::TraceContext trace = obs::current_context();
  // Marshal exactly once; the pending record and every (re)transmission
  // share this one buffer.
  net::SharedPayload encoded(encode_request(method, args, oneway));
  if (state) {
    const Duration now = clock_.now();
    PendingRecord record;
    record.state = std::move(state);
    record.target = target;
    record.deadline = now + timeout;
    record.backoff = config_.retry_base_delay;
    record.trace = trace;
    bool wake_retry = false;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      if (config_.max_retries > 0) {
        record.request = encoded;  // kept for retransmission
        record.next_resend = now + jittered(record.backoff);
      } else {
        record.next_resend = Duration::max();
      }
      const Duration wake = std::min(record.deadline, record.next_resend);
      if (wheel_) {
        record.timer = wheel_->schedule(
            wake - now, [this, call] { on_retry_timer(call); });
      } else if (wake < retry_next_wake_) {
        // Only a registration due EARLIER than the retry thread's current
        // wakeup needs a notify; everything else is covered by the rescan
        // that wakeup performs anyway.
        retry_next_wake_ = wake;
        wake_retry = true;
      }
      pending_.emplace(call, std::move(record));
    }
    if (wake_retry) retry_cv_.notify_one();  // one retry thread, one waiter
  }
  const Status sent = network_.send(net::Message{
      .from = self_,
      .to = target,
      .kind = net::kRpcRequest,
      .call = call,
      .payload = std::move(encoded),
      .trace_id = trace.trace_id,
      .span_id = trace.span_id,
  });
  if (!sent.is_ok()) {
    // Transport rejected the send outright (unknown node): fail fast rather
    // than waiting for a timeout.
    std::shared_ptr<PendingCall::State> failed;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      auto it = pending_.find(call);
      if (it != pending_.end()) {
        failed = it->second.state;
        if (wheel_ && it->second.timer != 0) wheel_->cancel(it->second.timer);
        pending_.erase(it);
      }
    }
    if (failed) fulfill(*failed, sent);
  }
  return call;
}

void RpcEndpoint::retry_loop() {
  std::unique_lock<std::mutex> lock(pending_mu_);
  while (!retry_shutdown_) {
    const Duration now = clock_.now();
    Duration next = Duration::max();
    std::vector<std::shared_ptr<PendingCall::State>> expired;
    std::vector<net::Message> resend;
    for (auto it = pending_.begin(); it != pending_.end();) {
      PendingRecord& record = it->second;
      if (now >= record.deadline) {
        expired.push_back(record.state);
        it = pending_.erase(it);
        continue;
      }
      if (record.next_resend != Duration::max() && now >= record.next_resend) {
        if (record.attempts < 1 + config_.max_retries) {
          resend.push_back(net::Message{
              .from = self_,
              .to = record.target,
              .kind = net::kRpcRequest,
              .call = it->first,
              .payload = record.request,
              .trace_id = record.trace.trace_id,
              .span_id = record.trace.span_id,
          });
          record.attempts++;
          record.backoff = std::min(record.backoff * 2, config_.retry_max_delay);
          record.next_resend = now + jittered(record.backoff);
        } else {
          record.next_resend = Duration::max();  // out of retries: wait it out
        }
      }
      next = std::min(next, std::min(record.deadline, record.next_resend));
      ++it;
    }
    if (!expired.empty() || !resend.empty()) {
      lock.unlock();
      for (auto& state : expired) {
        fulfill(*state, Status{StatusCode::kTimeout, "rpc deadline exceeded"});
        bump(&AtomicStats::deadline_timeouts);
      }
      for (auto& message : resend) {
        // Failures here (node unregistered mid-flight) are deliberately
        // ignored: the deadline converts them into a definite timeout.
        network_.send(std::move(message));
        bump(&AtomicStats::retries_sent);
      }
      lock.lock();
      continue;  // re-derive `next` after the unlocked window
    }
    if (retry_shutdown_) break;
    // Publish the wake target so registrations due later skip the notify.
    retry_next_wake_ = next;
    if (next == Duration::max()) {
      retry_cv_.wait(lock);
    } else {
      retry_cv_.wait_until(lock, TimePoint{} + next);
    }
  }
}

void RpcEndpoint::on_retry_timer(CallId call) {
  // Wheel tick thread.  One call per callback: no scan over pending_, and a
  // burst of other calls' responses never wakes this path at all.
  std::shared_ptr<PendingCall::State> expired;
  std::optional<net::Message> resend;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(call);
    if (it == pending_.end()) return;  // answered or erased: nothing to do
    PendingRecord& record = it->second;
    const Duration now = clock_.now();
    if (now >= record.deadline) {
      expired = record.state;
      pending_.erase(it);
    } else {
      if (record.next_resend != Duration::max() && now >= record.next_resend) {
        if (record.attempts < 1 + config_.max_retries) {
          resend = net::Message{
              .from = self_,
              .to = record.target,
              .kind = net::kRpcRequest,
              .call = call,
              .payload = record.request,
              .trace_id = record.trace.trace_id,
              .span_id = record.trace.span_id,
          };
          record.attempts++;
          record.backoff =
              std::min(record.backoff * 2, config_.retry_max_delay);
          record.next_resend = now + jittered(record.backoff);
        } else {
          record.next_resend = Duration::max();  // out of retries: wait it out
        }
      }
      const Duration wake = std::min(record.deadline, record.next_resend);
      record.timer =
          wheel_->schedule(wake - now, [this, call] { on_retry_timer(call); });
    }
  }
  if (expired) {
    fulfill(*expired, Status{StatusCode::kTimeout, "rpc deadline exceeded"});
    bump(&AtomicStats::deadline_timeouts);
  }
  if (resend) {
    // Failures here (node unregistered mid-flight) are deliberately ignored:
    // the deadline converts them into a definite timeout.
    network_.send(std::move(*resend));
    bump(&AtomicStats::retries_sent);
  }
}

Result<Payload> RpcEndpoint::call(NodeId target, const std::string& method,
                                  Payload args) {
  return call(target, method, std::move(args), config_.default_timeout);
}

Result<Payload> RpcEndpoint::call(NodeId target, const std::string& method,
                                  Payload args, Duration timeout) {
  // Trace roots can start here (an RPC issued outside any event) or join the
  // ambient context (an RPC inside a raise/handler chain).
  obs::SpanGuard span("rpc.call", self_.value(), obs::kMintTrace, method);
  const std::int64_t t0 = obs::metrics_enabled() ? obs::now_us() : 0;
  PendingCall pending;
  const CallId id =
      send_request(target, method, std::move(args), pending.state_, timeout);
  auto result = pending.claim(timeout);
  if (t0 != 0) call_us_->record_us(obs::now_us() - t0);
  if (!result.is_ok() && result.status().code() == StatusCode::kTimeout) {
    // Forget the correlation entry; a late response is dropped harmlessly.
    // If the record is still pending, the claimer's clock beat the retry
    // thread to the shared deadline — account the timeout here so the
    // counter does not depend on which side wakes first.
    bool was_pending = false;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        was_pending = true;
        if (wheel_ && it->second.timer != 0) wheel_->cancel(it->second.timer);
        pending_.erase(it);
      }
    }
    if (was_pending) bump(&AtomicStats::deadline_timeouts);
  }
  return result;
}

PendingCall RpcEndpoint::call_async(NodeId target, const std::string& method,
                                    Payload args) {
  PendingCall pending;
  send_request(target, method, std::move(args), pending.state_,
               config_.default_timeout);
  return pending;
}

Status RpcEndpoint::call_oneway(NodeId target, const std::string& method,
                                Payload args) {
  send_request(target, method, std::move(args), nullptr,
               config_.default_timeout);
  return Status::ok();
}

void RpcEndpoint::on_request(const net::Message& message) {
  // Duplicate suppression first: a retransmitted or network-duplicated
  // request must not run the method twice.
  if (config_.dedup_window.count() > 0 && message.call.valid()) {
    Payload replay;
    bool duplicate = false;
    {
      std::lock_guard<std::mutex> lock(dedup_mu_);
      const DedupKey key{message.from.value(), message.call.value()};
      auto it = dedup_.find(key);
      if (it != dedup_.end()) {
        duplicate = true;
        if (it->second.done && !it->second.oneway) {
          replay = it->second.response;  // answer again without re-executing
        }
      } else {
        dedup_.emplace(key, DedupEntry{});  // in-progress marker
      }
    }
    if (duplicate) {
      if (!replay.empty()) {
        bump(&AtomicStats::dedup_replays);
        network_.send(net::Message{
            .from = self_,
            .to = message.from,
            .kind = net::kRpcResponse,
            .call = message.call,
            .payload = std::move(replay),
            .trace_id = message.trace_id,
            .span_id = message.span_id,
        });
      } else {
        bump(&AtomicStats::duplicate_drops);
      }
      return;
    }
  }

  // Runs on the network delivery thread.  kFast methods execute inline here
  // (they are required not to block); kBlocking methods go to the executor
  // lane they were registered with.
  MethodClass method_class = MethodClass::kBlocking;
  exec::Lane lane = exec::Lane::kBulk;
  try {
    Reader peek(message.payload.share());
    const std::string method_name = peek.get_string();
    std::lock_guard<std::mutex> lock(methods_mu_);
    auto it = methods_.find(method_name);
    if (it != methods_.end()) {
      method_class = it->second.method_class;
      lane = it->second.lane;
    }
  } catch (const DeserializeError&) {
    // execute_request reports the malformed payload.
  }

  if (method_class == MethodClass::kFast) {
    execute_request(message);
    return;
  }
  // try_submit: the delivery thread must never park on a full lane.
  const Status accepted = executor_->try_submit(
      lane, [this, message] { execute_request(message); });
  if (!accepted.is_ok()) {
    shed_request(message, accepted);
  }
}

void RpcEndpoint::shed_request(const net::Message& message, const Status& why) {
  bump(&AtomicStats::requests_shed);
  // Forget the in-progress dedup marker: the method never ran, so a
  // retransmission of this CallId must be allowed to execute once capacity
  // returns (otherwise every retry would be dropped as a duplicate forever).
  if (config_.dedup_window.count() > 0 && message.call.valid()) {
    std::lock_guard<std::mutex> lock(dedup_mu_);
    const DedupKey key{message.from.value(), message.call.value()};
    auto it = dedup_.find(key);
    if (it != dedup_.end() && !it->second.done) dedup_.erase(it);
  }
  bool oneway = true;  // unparseable requests cannot be answered
  try {
    Reader r(message.payload.share());
    (void)r.get_string();
    (void)r.get_bytes();
    oneway = r.get_bool();
  } catch (const DeserializeError&) {
  }
  DOCT_LOG(kWarn) << "rpc request shed: " << why.message();
  if (oneway) return;
  // Fail the caller's pending call NOW rather than leaking the waiter until
  // its deadline: overload should surface as a fast error, not a hang.
  network_.send(net::Message{
      .from = self_,
      .to = message.from,
      .kind = net::kRpcResponse,
      .call = message.call,
      .payload = encode_response(why.code(), why.message(), Payload{}),
      .trace_id = message.trace_id,
      .span_id = message.span_id,
  });
}

void RpcEndpoint::record_dedup(const net::Message& message, bool oneway,
                               const Payload& response) {
  if (config_.dedup_window.count() == 0 || !message.call.valid()) return;
  const Duration now = clock_.now();
  std::lock_guard<std::mutex> lock(dedup_mu_);
  const DedupKey key{message.from.value(), message.call.value()};
  auto it = dedup_.find(key);
  if (it == dedup_.end()) return;  // window disabled mid-flight; nothing held
  it->second.done = true;
  it->second.oneway = oneway;
  it->second.response = response;
  it->second.completed_at = now;
  dedup_order_.emplace_back(now, key);
  // Prune: expired entries and, beyond capacity, the oldest completions.
  while (!dedup_order_.empty() &&
         (dedup_order_.front().first + config_.dedup_window < now ||
          dedup_order_.size() > config_.dedup_capacity)) {
    dedup_.erase(dedup_order_.front().second);
    dedup_order_.pop_front();
  }
}

void RpcEndpoint::execute_request(const net::Message& message) {
  Reader r(message.payload.share());
  std::string method_name;
  Payload args;
  bool oneway = false;
  try {
    method_name = r.get_string();
    args = r.get_bytes();
    oneway = r.get_bool();
  } catch (const DeserializeError& e) {
    DOCT_LOG(kError) << "malformed rpc request: " << e.what();
    // Complete the dedup entry (empty, oneway) so duplicates stay dropped
    // and the in-progress marker does not linger forever.
    record_dedup(message, /*oneway=*/true, Payload{});
    return;
  }

  Method method;
  {
    std::lock_guard<std::mutex> lock(methods_mu_);
    auto it = methods_.find(method_name);
    if (it != methods_.end()) method = it->second.method;
  }

  // Adopt the caller's trace for the whole serve (method body + response
  // send): nested RPCs and kernel work issued by the method stay causally
  // linked across the node boundary.
  obs::SpanGuard span("rpc.serve", self_.value(),
                      obs::TraceContext{message.trace_id, message.span_id},
                      method_name);

  Result<Payload> result =
      method ? [&]() -> Result<Payload> {
        Reader args_reader(std::move(args));
        return method(message.from, args_reader);
      }()
             : Result<Payload>(Status{StatusCode::kInvalidArgument,
                                      "no such method: " + method_name});
  if (method) bump(&AtomicStats::requests_executed);
  if (oneway) {
    record_dedup(message, /*oneway=*/true, Payload{});
    return;
  }

  const Status& status = result.status();
  Payload response =
      encode_response(status.code(), status.message(),
                      result.is_ok() ? result.value() : Payload{});
  record_dedup(message, /*oneway=*/false, response);
  const obs::TraceContext reply_ctx =
      span.active() ? span.context()
                    : obs::TraceContext{message.trace_id, message.span_id};
  network_.send(net::Message{
      .from = self_,
      .to = message.from,
      .kind = net::kRpcResponse,
      .call = message.call,
      .payload = std::move(response),
      .trace_id = reply_ctx.trace_id,
      .span_id = reply_ctx.span_id,
  });
}

void RpcEndpoint::on_response(const net::Message& message) {
  // Reply correlation is control work: it unblocks a parked caller, so it
  // must overtake queued event/bulk backlog.  Fulfillment never blocks, so
  // running inline on the delivery thread is a safe fallback when the
  // control lane refuses (full or shut down).
  const Status queued = executor_->try_submit(
      exec::Lane::kControl, [this, message] { handle_response(message); });
  if (!queued.is_ok()) handle_response(message);
}

void RpcEndpoint::handle_response(const net::Message& message) {
  std::shared_ptr<PendingCall::State> state;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(message.call);
    // Late or duplicate responses (after timeout, or after a dedup replay
    // raced the original response) find no record and are dropped.
    if (it == pending_.end()) return;
    state = it->second.state;
    if (wheel_ && it->second.timer != 0) wheel_->cancel(it->second.timer);
    pending_.erase(it);
  }
  try {
    Reader r(message.payload.share());
    const auto code = r.get<StatusCode>();
    auto status_message = r.get_string();
    auto result = r.get_bytes();
    if (code == StatusCode::kOk) {
      fulfill(*state, std::move(result));
    } else {
      fulfill(*state, Status{code, std::move(status_message)});
    }
  } catch (const DeserializeError& e) {
    fulfill(*state, Status{StatusCode::kInternal,
                           std::string("malformed rpc response: ") + e.what()});
  }
}

}  // namespace doct::rpc
