// RPC layer over the simulated network.
//
// Object invocation in the DO/CT model (§2) can ride either RPC or DSM; this
// is the RPC vehicle.  Three call shapes:
//
//   call()          — synchronous: caller blocks for the result (or timeout).
//   call_async()    — claimable asynchronous invocation: returns a ticket the
//                     caller may later claim() for the result.
//   call_oneway()   — NON-CLAIMABLE asynchronous invocation: fire-and-forget.
//                     §7.1 calls these out explicitly: the system "may not
//                     keep track" of them, which is why the path-following
//                     thread locator can miss threads they spawn.  We
//                     reproduce that behaviour faithfully in kernel/locators.
//
// Server methods run on a worker pool, never on the network delivery thread,
// so nested and re-entrant calls (A→B→A) cannot deadlock the transport.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/id_gen.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/serialize.hpp"
#include "common/thread_pool.hpp"
#include "net/demux.hpp"
#include "net/network.hpp"

namespace doct::rpc {

using Payload = std::vector<std::uint8_t>;

// A server-side method: receives the caller's node and the marshalled
// arguments, returns marshalled results or an error status.
using Method = std::function<Result<Payload>(NodeId caller, Reader& args)>;

// kBlocking methods may issue nested RPCs or wait on conditions; they run on
// the endpoint's worker pool.  kFast methods must not block; they run inline
// on the network delivery thread, which guarantees they make progress even
// when every pool worker is parked inside a blocking method (this breaks the
// classic fetch-behind-get_page deadlock in the DSM protocol).
enum class MethodClass : std::uint8_t { kBlocking = 0, kFast = 1 };

struct RpcConfig {
  Duration default_timeout = std::chrono::seconds(5);
  std::size_t worker_threads = 4;
};

// Ticket for a claimable async call.
class PendingCall {
 public:
  // Blocks until the response arrives or `timeout` elapses.
  [[nodiscard]] Result<Payload> claim(Duration timeout);
  [[nodiscard]] bool ready() const;

 private:
  friend class RpcEndpoint;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Result<Payload>> result;
  };
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

class RpcEndpoint {
 public:
  RpcEndpoint(net::Network& network, net::Demux& demux, NodeId self,
              IdGenerator& ids, RpcConfig config = {});
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  // Registers a named method.  Re-registering a name replaces the method.
  void register_method(std::string name, Method method,
                       MethodClass method_class = MethodClass::kBlocking);
  void unregister_method(const std::string& name);

  [[nodiscard]] Result<Payload> call(NodeId target, const std::string& method,
                                     Payload args);
  [[nodiscard]] Result<Payload> call(NodeId target, const std::string& method,
                                     Payload args, Duration timeout);

  [[nodiscard]] PendingCall call_async(NodeId target, const std::string& method,
                                       Payload args);

  // Non-claimable: no correlation state is kept (see header comment).
  Status call_oneway(NodeId target, const std::string& method, Payload args);

  // Drains and joins the worker pool ahead of destruction.  A node runtime
  // tearing down calls this FIRST so no worker is still executing a method
  // that touches subsystems (kernel, objects) destroyed before the endpoint.
  // Idempotent; requests arriving afterwards are dropped.
  void drain_workers();

  [[nodiscard]] NodeId self() const { return self_; }

 private:
  void on_request(const net::Message& message);
  void on_response(const net::Message& message);
  CallId send_request(NodeId target, const std::string& method, Payload args,
                      std::shared_ptr<PendingCall::State> state);
  static void fulfill(PendingCall::State& state, Result<Payload> result);

  net::Network& network_;
  NodeId self_;
  IdGenerator& ids_;
  RpcConfig config_;
  ThreadPool workers_;

  struct RegisteredMethod {
    Method method;
    MethodClass method_class = MethodClass::kBlocking;
  };

  void execute_request(const net::Message& message);

  std::mutex methods_mu_;
  std::unordered_map<std::string, RegisteredMethod> methods_;

  std::mutex pending_mu_;
  std::unordered_map<CallId, std::shared_ptr<PendingCall::State>> pending_;
};

}  // namespace doct::rpc
