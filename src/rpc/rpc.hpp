// RPC layer over the simulated network.
//
// Object invocation in the DO/CT model (§2) can ride either RPC or DSM; this
// is the RPC vehicle.  Three call shapes:
//
//   call()          — synchronous: caller blocks for the result (or timeout).
//   call_async()    — claimable asynchronous invocation: returns a ticket the
//                     caller may later claim() for the result.
//   call_oneway()   — NON-CLAIMABLE asynchronous invocation: fire-and-forget.
//                     §7.1 calls these out explicitly: the system "may not
//                     keep track" of them, which is why the path-following
//                     thread locator can miss threads they spawn.  We
//                     reproduce that behaviour faithfully in kernel/locators.
//
// Server methods run on the node executor (exec::Executor), never on the
// network delivery thread, so nested and re-entrant calls (A→B→A) cannot
// deadlock the transport.  Each registered method names the lane it runs on
// (blocking bodies default to kBulk); responses are correlated on kControl so
// replies overtake queued bulk work.  When the executor refuses admission
// (lane full), the request is SHED: the in-progress dedup marker is forgotten
// so a retransmission can re-execute later, and a non-oneway caller gets an
// error response immediately instead of waiting out its deadline.
//
// Resilience (fault-injection PR): claimable calls are retried with
// exponential backoff + seeded jitter until the overall deadline.  The
// CallId doubles as the idempotency token — every retransmission reuses it,
// and the server keeps a dedup window of recently executed (caller, call)
// pairs: a duplicate of an in-progress request is dropped, a duplicate of a
// completed request gets the cached response replayed without re-executing
// the method.  Claimable calls therefore execute at-most-once even under
// message duplication and retransmission.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/id_gen.hpp"
#include "common/ids.hpp"
#include "common/inline.hpp"
#include "common/mpsc_queue.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/timer_wheel.hpp"
#include "exec/executor.hpp"
#include "net/demux.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace doct::rpc {

using Payload = std::vector<std::uint8_t>;

// A server-side method: receives the caller's node and the marshalled
// arguments, returns marshalled results or an error status.
using Method = std::function<Result<Payload>(NodeId caller, Reader& args)>;

// kBlocking methods may issue nested RPCs or wait on conditions; they run on
// the node executor (on the lane named at registration).  kFast methods must
// not block; they run inline on the network delivery thread, which guarantees
// they make progress even when every executor worker is parked inside a
// blocking method (this breaks the classic fetch-behind-get_page deadlock in
// the DSM protocol).
enum class MethodClass : std::uint8_t { kBlocking = 0, kFast = 1 };

struct RpcConfig {
  Duration default_timeout = std::chrono::seconds(5);

  // --- retry / recovery ----------------------------------------------------
  // Extra transmissions of a claimable request after the first (0 = off,
  // the historical single-attempt behaviour).  Retries reuse the CallId, so
  // the server's dedup window keeps execution at-most-once.  One-way calls
  // are never retried: with no response there is no signal to stop on.
  int max_retries = 0;
  Duration retry_base_delay = std::chrono::milliseconds(25);
  Duration retry_max_delay = std::chrono::milliseconds(400);
  double retry_jitter = 0.2;         // +/- fraction applied to each backoff
  std::uint64_t retry_seed = 0xB0FF; // jitter determinism (xored with node id)

  // Server-side dedup window: how long, and how many entries at most, a
  // completed (caller, call) execution is remembered for duplicate replay.
  // Zero window disables dedup.
  Duration dedup_window = std::chrono::seconds(5);
  std::size_t dedup_capacity = 4096;
};

struct RpcStats {
  std::uint64_t requests_executed = 0;  // method bodies actually run
  std::uint64_t retries_sent = 0;       // retransmissions of pending calls
  std::uint64_t deadline_timeouts = 0;  // pending calls failed at deadline
  std::uint64_t dedup_replays = 0;      // duplicates answered from cache
  std::uint64_t duplicate_drops = 0;    // duplicates dropped (in-progress)
  std::uint64_t requests_shed = 0;      // admissions refused by the executor
};

// Ticket for a claimable async call.
class PendingCall {
 public:
  // Blocks until the response arrives or `timeout` elapses.
  [[nodiscard]] Result<Payload> claim(Duration timeout);
  [[nodiscard]] bool ready() const;

 private:
  friend class RpcEndpoint;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Result<Payload>> result;
  };
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

class RpcEndpoint {
 public:
  // `executor` is the node's shared executor; when null the endpoint owns a
  // private one (standalone endpoints in tests).  A shared executor must be
  // shut down (drained) before the endpoint is destroyed — NodeRuntime does
  // this in its destructor body, while every subsystem is still alive.
  RpcEndpoint(net::Transport& network, net::Demux& demux, NodeId self,
              IdGenerator& ids, RpcConfig config = {},
              exec::Executor* executor = nullptr);
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  // Registers a named method.  Re-registering a name replaces the method.
  // `lane` picks the executor lane kBlocking bodies run on; kFast methods
  // ignore it (they execute inline on the delivery thread).
  void register_method(std::string name, Method method,
                       MethodClass method_class = MethodClass::kBlocking,
                       exec::Lane lane = exec::Lane::kBulk);
  void unregister_method(const std::string& name);

  [[nodiscard]] Result<Payload> call(NodeId target, const std::string& method,
                                     Payload args);
  [[nodiscard]] Result<Payload> call(NodeId target, const std::string& method,
                                     Payload args, Duration timeout);

  [[nodiscard]] PendingCall call_async(NodeId target, const std::string& method,
                                       Payload args);

  // Non-claimable: no correlation state is kept (see header comment).
  Status call_oneway(NodeId target, const std::string& method, Payload args);

  // Drains and joins the executor ahead of destruction.  A node runtime
  // tearing down calls this FIRST so no worker is still executing a method
  // that touches subsystems (kernel, objects) destroyed before the endpoint.
  // Idempotent; requests arriving afterwards are shed.  Note: this shuts
  // down the executor passed at construction, shared or owned.
  void drain_workers();

  // The executor serving this endpoint (shared node executor, or the owned
  // fallback).  Other layers on the same node dispatch through this.
  [[nodiscard]] exec::Executor& executor() { return *executor_; }

  [[nodiscard]] NodeId self() const { return self_; }

  [[nodiscard]] RpcStats stats() const;
  void reset_stats();

 private:
  // Correlation + retry state for one claimable call in flight.
  struct PendingRecord {
    std::shared_ptr<PendingCall::State> state;
    NodeId target;
    // Encoded request, kept only when retries are on.  Shares the original
    // transmission's buffer: a retransmission costs no re-marshal and no
    // copy, just another reference.
    net::SharedPayload request;
    Duration deadline;      // absolute steady-clock time the call fails at
    Duration next_resend;   // absolute; max() = no further retransmissions
    Duration backoff;       // current backoff step
    int attempts = 1;       // transmissions performed so far
    // Trace context of the originating call, kept so retransmissions (sent
    // from the retry thread, which has no ambient context) carry the same
    // causal identity as the first transmission.
    obs::TraceContext trace;
    // Timer-wheel id for this call's next deadline/resend (lockfree mode
    // only; 0 in the locked ablation, which scans from the retry thread).
    common::TimerId timer = 0;
  };

  // Server-side dedup entry for one (caller, call) pair.
  struct DedupEntry {
    Payload response;       // cached encoded response once done
    bool done = false;      // false while the method is still executing
    bool oneway = false;
    Duration completed_at{0};
  };
  using DedupKey = std::pair<std::uint64_t, std::uint64_t>;  // (caller, call)

  void on_request(const net::Message& message);
  void on_response(const net::Message& message);
  // Correlates + fulfills a response; runs on the control lane (fallback:
  // inline on the delivery thread when the lane refuses).
  void handle_response(const net::Message& message);
  // Executor refused the request: forget the in-progress dedup marker so a
  // retransmission can re-execute, and answer non-oneway callers with `why`
  // so their pending call fails fast instead of timing out.
  void shed_request(const net::Message& message, const Status& why);
  CallId send_request(NodeId target, const std::string& method, Payload args,
                      std::shared_ptr<PendingCall::State> state,
                      Duration timeout);
  static void fulfill(PendingCall::State& state, Result<Payload> result);
  void retry_loop();
  // Timer-wheel callback for one pending call: fires at min(next_resend,
  // deadline), retransmits or times the call out, and re-arms itself.
  void on_retry_timer(CallId call);
  [[nodiscard]] Duration jittered(Duration backoff);  // holds pending_mu_
  void record_dedup(const net::Message& message, bool oneway,
                    const Payload& response);

  // RpcStats with relaxed atomic counters, one per cache line: the
  // request/response hot paths bump without a lock OR false sharing;
  // stats() snapshots.
  struct AtomicStats {
    common::PaddedCounter requests_executed;
    common::PaddedCounter retries_sent;
    common::PaddedCounter deadline_timeouts;
    common::PaddedCounter dedup_replays;
    common::PaddedCounter duplicate_drops;
    common::PaddedCounter requests_shed;
  };
  void bump(common::PaddedCounter AtomicStats::* counter);

  net::Transport& network_;
  NodeId self_;
  IdGenerator& ids_;
  RpcConfig config_;
  // Owned fallback for standalone endpoints; null when sharing the node's.
  std::unique_ptr<exec::Executor> owned_executor_;
  exec::Executor* executor_;  // never null
  SteadyClock clock_;

  struct RegisteredMethod {
    Method method;
    MethodClass method_class = MethodClass::kBlocking;
    exec::Lane lane = exec::Lane::kBulk;
  };

  void execute_request(const net::Message& message);

  std::mutex methods_mu_;
  std::unordered_map<std::string, RegisteredMethod> methods_;

  std::mutex pending_mu_;
  std::unordered_map<CallId, PendingRecord> pending_;
  std::condition_variable retry_cv_;
  bool retry_shutdown_ = false;
  // The absolute time the retry thread is currently sleeping toward (locked
  // mode; guarded by pending_mu_).  A registration notifies only when its
  // deadline is EARLIER — registrations due later than the current wakeup
  // would be picked up by that wakeup's rescan anyway, so notifying them all
  // was pure thundering-herd overhead.
  Duration retry_next_wake_ = Duration::max();
  SplitMix64 retry_rng_;  // guarded by pending_mu_

  // Lockfree mode: per-call one-shot wheel timers replace the retry thread's
  // scan-all-deadlines loop — O(1) per schedule/cancel, no scan, no notify.
  // Stopped (joined) first in the destructor, before pending_ is torn down.
  std::unique_ptr<common::TimerWheel> wheel_;

  std::mutex dedup_mu_;
  std::map<DedupKey, DedupEntry> dedup_;
  std::deque<std::pair<Duration, DedupKey>> dedup_order_;  // completion order

  AtomicStats stats_;

  std::thread retry_thread_;

  // Resolved once at construction; call() records client-observed latency.
  obs::Histogram* call_us_ = nullptr;
  // Last member: unregisters before the stats it reads are destroyed.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace doct::rpc
