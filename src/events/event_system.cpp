#include "events/event_system.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/log.hpp"

namespace doct::events {

namespace {

constexpr const char* kObjectNotifyMethod = "events.object_notify";
constexpr const char* kRunHandlerMethod = "events.run_handler";
constexpr const char* kKernelResumeMethod = "kernel.resume";

[[maybe_unused]] rpc::Payload verdict_payload(kernel::Verdict verdict) {
  return rpc::Payload{static_cast<std::uint8_t>(verdict)};
}

kernel::Verdict parse_verdict(const rpc::Payload& payload) {
  if (payload.empty()) return kernel::Verdict::kResume;
  switch (payload.front()) {
    case static_cast<std::uint8_t>(kernel::Verdict::kTerminate):
      return kernel::Verdict::kTerminate;
    case static_cast<std::uint8_t>(kernel::Verdict::kPropagate):
      return kernel::Verdict::kPropagate;
    default:
      return kernel::Verdict::kResume;
  }
}

}  // namespace

EventSystem::EventSystem(kernel::Kernel& kernel,
                         objects::ObjectManager& manager,
                         rpc::RpcEndpoint& rpc, EventRegistry& registry,
                         ProcedureRegistry& procedures, EventConfig config)
    : kernel_(kernel),
      manager_(manager),
      rpc_(rpc),
      registry_(registry),
      procedures_(procedures),
      config_(config),
      trace_(config.trace_capacity) {
  // CI ablation hook: rerun the same binaries under the other dispatch mode.
  if (const char* env = std::getenv("DOCT_DISPATCH")) {
    if (std::strcmp(env, "per_event") == 0 ||
        std::strcmp(env, "thread_per_event") == 0) {
      config_.dispatch_mode = ObjectDispatchMode::kThreadPerEvent;
    } else if (std::strcmp(env, "master") == 0) {
      config_.dispatch_mode = ObjectDispatchMode::kMasterThread;
    }
  }
  kernel_.set_delivery_callback(
      [this](kernel::ThreadContext& ctx, const kernel::EventNotice& notice) {
        return on_deliver(ctx, notice);
      });
  // object_notify only enqueues work; run_handler executes a handler entry
  // and may block, so it runs on the executor's bulk lane.
  rpc_.register_method(
      kObjectNotifyMethod,
      [this](NodeId caller, Reader& args) {
        return rpc_object_notify(caller, args);
      },
      rpc::MethodClass::kFast);
  rpc_.register_method(kRunHandlerMethod, [this](NodeId caller, Reader& args) {
    return rpc_run_handler(caller, args);
  });

  sync_wait_us_ = &obs::metrics().histogram("events.sync_wait_us");
  handle_us_ = &obs::metrics().histogram("events.handle_us");
  metrics_source_ = obs::metrics().register_source(
      "node" + std::to_string(kernel_.self().value()) + ".events", [this] {
        const EventStats s = stats();
        return std::vector<std::pair<std::string, std::uint64_t>>{
            {"raises_async", s.raises_async},
            {"raises_sync", s.raises_sync},
            {"thread_handlers_run", s.thread_handlers_run},
            {"object_handlers_run", s.object_handlers_run},
            {"per_thread_procs_run", s.per_thread_procs_run},
            {"defaults_applied", s.defaults_applied},
            {"propagations", s.propagations},
            {"surrogate_runs", s.surrogate_runs},
            {"dead_target_raises", s.dead_target_raises},
            {"shed_dispatches", s.shed_dispatches},
        };
      });
}

EventSystem::~EventSystem() {
  rpc_.unregister_method(kObjectNotifyMethod);
  rpc_.unregister_method(kRunHandlerMethod);
  kernel_.set_delivery_callback(nullptr);
  // Queued dispatches and surrogate chains live on the node executor, whose
  // owner drains it before this destructor runs (NodeRuntime does so in its
  // destructor body; a standalone RpcEndpoint in its own destructor).
  // Joining must happen outside per_event_mu_: exiting handler threads
  // take it to announce completion.
  std::vector<std::thread> leftovers;
  {
    std::lock_guard<std::mutex> lock(per_event_mu_);
    leftovers.swap(per_event_threads_);
    per_event_finished_.clear();
  }
  for (auto& t : leftovers) {
    if (t.joinable()) t.join();
  }
}

void EventSystem::bump(std::atomic<std::uint64_t> AtomicStats::* counter) {
  (stats_.*counter).fetch_add(1, std::memory_order_relaxed);
}

EventStats EventSystem::stats() const {
  EventStats out;
  out.raises_async = stats_.raises_async.load(std::memory_order_relaxed);
  out.raises_sync = stats_.raises_sync.load(std::memory_order_relaxed);
  out.thread_handlers_run =
      stats_.thread_handlers_run.load(std::memory_order_relaxed);
  out.object_handlers_run =
      stats_.object_handlers_run.load(std::memory_order_relaxed);
  out.per_thread_procs_run =
      stats_.per_thread_procs_run.load(std::memory_order_relaxed);
  out.defaults_applied = stats_.defaults_applied.load(std::memory_order_relaxed);
  out.propagations = stats_.propagations.load(std::memory_order_relaxed);
  out.surrogate_runs = stats_.surrogate_runs.load(std::memory_order_relaxed);
  out.dead_target_raises =
      stats_.dead_target_raises.load(std::memory_order_relaxed);
  out.shed_dispatches = stats_.shed_dispatches.load(std::memory_order_relaxed);
  return out;
}

void EventSystem::reset_stats() {
  stats_.raises_async.store(0, std::memory_order_relaxed);
  stats_.raises_sync.store(0, std::memory_order_relaxed);
  stats_.thread_handlers_run.store(0, std::memory_order_relaxed);
  stats_.object_handlers_run.store(0, std::memory_order_relaxed);
  stats_.per_thread_procs_run.store(0, std::memory_order_relaxed);
  stats_.defaults_applied.store(0, std::memory_order_relaxed);
  stats_.propagations.store(0, std::memory_order_relaxed);
  stats_.surrogate_runs.store(0, std::memory_order_relaxed);
  stats_.dead_target_raises.store(0, std::memory_order_relaxed);
  stats_.shed_dispatches.store(0, std::memory_order_relaxed);
}

void EventSystem::set_activation_hook(std::function<Status(ObjectId)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  activation_hook_ = std::move(hook);
}

// --- attachment (§5.2) ---------------------------------------------------------

Result<HandlerId> EventSystem::attach_handler(EventId event, ObjectId object,
                                              const std::string& entry) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return Status{StatusCode::kInvalidArgument,
                  "attach_handler requires a logical thread"};
  }
  if (!registry_.known(event)) {
    return Status{StatusCode::kUnknownEvent, event.to_string()};
  }
  kernel::HandlerRecord record;
  record.id = kernel_.ids().next<HandlerTag>();
  record.event = event;
  record.object = object;
  record.entry = entry;
  record.attached_in = ctx->current_object();
  record.kind = object == ctx->current_object()
                    ? kernel::HandlerKind::kObjectEntry
                    : kernel::HandlerKind::kBuddy;
  ctx->with_attributes([&](kernel::ThreadAttributes& a) {
    a.handler_chain.push_back(record);
  });
  return record.id;
}

Result<HandlerId> EventSystem::attach_handler(EventId event,
                                              const std::string& procedure,
                                              OwnContextTag) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return Status{StatusCode::kInvalidArgument,
                  "attach_handler requires a logical thread"};
  }
  if (!registry_.known(event)) {
    return Status{StatusCode::kUnknownEvent, event.to_string()};
  }
  if (!procedures_.lookup(procedure).is_ok()) {
    return Status{StatusCode::kNoHandler,
                  "procedure not registered: " + procedure};
  }
  kernel::HandlerRecord record;
  record.id = kernel_.ids().next<HandlerTag>();
  record.event = event;
  record.kind = kernel::HandlerKind::kPerThread;
  record.entry = procedure;
  record.attached_in = ctx->current_object();
  ctx->with_attributes([&](kernel::ThreadAttributes& a) {
    a.handler_chain.push_back(record);
  });
  return record.id;
}

Status EventSystem::detach_handler(HandlerId id) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return {StatusCode::kInvalidArgument,
            "detach_handler requires a logical thread"};
  }
  const bool removed = ctx->with_attributes([&](kernel::ThreadAttributes& a) {
    const auto before = a.handler_chain.size();
    std::erase_if(a.handler_chain, [&](const kernel::HandlerRecord& r) {
      return r.id == id;
    });
    return a.handler_chain.size() != before;
  });
  return removed ? Status::ok()
                 : Status{StatusCode::kNoHandler, id.to_string()};
}

// --- raising (§5.3) -------------------------------------------------------------

kernel::EventNotice EventSystem::make_notice(EventId event,
                                             rpc::Payload user_data,
                                             bool synchronous) {
  kernel::EventNotice notice;
  notice.event = event;
  notice.event_name = registry_.name_of(event);
  notice.synchronous = synchronous;
  notice.raiser_node = kernel_.self();
  notice.user_data = std::move(user_data);
  if (kernel::ThreadContext* ctx = kernel::Kernel::current()) {
    notice.raiser = ctx->tid();
    notice.raised_in = ctx->current_object();
  }
  return notice;
}

Status EventSystem::raise(EventId event, ThreadId target,
                          rpc::Payload user_data) {
  if (!registry_.known(event)) {
    return {StatusCode::kUnknownEvent, event.to_string()};
  }
  bump(&AtomicStats::raises_async);
  kernel::EventNotice notice = make_notice(event, std::move(user_data), false);
  notice.target_thread = target;
  // Root (or join) the causal trace here: everything downstream — route,
  // wire, deliver, handle — hangs off this span.
  obs::SpanGuard span("raise", kernel_.self().value(), obs::kMintTrace,
                      notice.event_name);
  notice.trace_id = span.context().trace_id;
  notice.parent_span = span.context().span_id;
  trace_.record(TraceStage::kRaised, event, notice.event_name, target,
                ObjectId{}, {}, notice.trace_id);
  const Status delivered =
      kernel_.deliver_remote(notice, registry_.is_control(event));
  if (delivered.code() == StatusCode::kDeadTarget) {
    trace_.record(TraceStage::kDeadTarget, event, notice.event_name, target,
                  ObjectId{}, {}, notice.trace_id);
    bump(&AtomicStats::dead_target_raises);
    // §7: "When a notification is posted to a thread and the thread has been
    // destroyed, the sender of the event (if it is an asynchronous event)
    // needs to be notified."  Beyond the status we return, a logical-thread
    // raiser gets a TARGET_DEAD event naming the dead thread.
    if (kernel::ThreadContext* raiser = kernel::Kernel::current()) {
      kernel::EventNotice obituary;
      obituary.event = sys::kTargetDead;
      obituary.event_name = registry_.name_of(sys::kTargetDead);
      obituary.target_thread = raiser->tid();
      obituary.raiser_node = kernel_.self();
      obituary.system_info = "dead target: " + target.to_string();
      Writer w;
      w.put(target);
      w.put(event);
      obituary.user_data = std::move(w).take();
      raiser->enqueue(obituary, /*urgent=*/false);
    }
  }
  return delivered;
}

Status EventSystem::raise(EventId event, GroupId target,
                          rpc::Payload user_data) {
  if (!registry_.known(event)) {
    return {StatusCode::kUnknownEvent, event.to_string()};
  }
  bump(&AtomicStats::raises_async);
  kernel::EventNotice notice = make_notice(event, std::move(user_data), false);
  notice.target_group = target;
  obs::SpanGuard span("raise", kernel_.self().value(), obs::kMintTrace,
                      notice.event_name);
  notice.trace_id = span.context().trace_id;
  notice.parent_span = span.context().span_id;
  trace_.record(TraceStage::kRaised, event, notice.event_name, ThreadId{},
                ObjectId{}, "group " + target.to_string(), notice.trace_id);
  return kernel_.deliver_group(notice, registry_.is_control(event));
}

Status EventSystem::raise(EventId event, ObjectId target,
                          rpc::Payload user_data) {
  if (!registry_.known(event)) {
    return {StatusCode::kUnknownEvent, event.to_string()};
  }
  bump(&AtomicStats::raises_async);
  kernel::EventNotice notice = make_notice(event, std::move(user_data), false);
  notice.target_object = target;
  obs::SpanGuard span("raise", kernel_.self().value(), obs::kMintTrace,
                      notice.event_name);
  notice.trace_id = span.context().trace_id;
  notice.parent_span = span.context().span_id;
  trace_.record(TraceStage::kRaised, event, notice.event_name, ThreadId{},
                target, {}, notice.trace_id);
  return dispatch_to_object(notice);
}

Result<kernel::Verdict> EventSystem::raise_and_wait(EventId event,
                                                    ThreadId target,
                                                    rpc::Payload user_data) {
  if (!registry_.known(event)) {
    return Status{StatusCode::kUnknownEvent, event.to_string()};
  }
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx != nullptr && ctx->tid() == target) {
    // Synchronous raise at oneself: the exception-handling shape (§6.1).
    return raise_exception(event, "raise_and_wait(self)",
                           std::move(user_data));
  }
  bump(&AtomicStats::raises_sync);
  kernel::EventNotice notice = make_notice(event, std::move(user_data), true);
  notice.target_thread = target;
  notice.wait_token = kernel_.new_wait_token();
  obs::SpanGuard span("raise", kernel_.self().value(), obs::kMintTrace,
                      notice.event_name);
  notice.trace_id = span.context().trace_id;
  notice.parent_span = span.context().span_id;
  trace_.record(TraceStage::kRaised, event, notice.event_name, target,
                ObjectId{}, "sync", notice.trace_id);
  const std::int64_t t0 = obs::metrics_enabled() ? obs::now_us() : 0;
  kernel_.prepare_wait(notice.wait_token);
  const Status delivered =
      kernel_.deliver_remote(notice, registry_.is_control(event));
  if (!delivered.is_ok()) {
    if (delivered.code() == StatusCode::kDeadTarget) {
      bump(&AtomicStats::dead_target_raises);
    }
    return delivered;
  }
  auto verdict = kernel_.await_resume(notice.wait_token, config_.sync_timeout);
  if (t0 != 0) sync_wait_us_->record_us(obs::now_us() - t0);
  return verdict;
}

Result<kernel::Verdict> EventSystem::raise_and_wait(EventId event,
                                                    GroupId target,
                                                    rpc::Payload user_data) {
  if (!registry_.known(event)) {
    return Status{StatusCode::kUnknownEvent, event.to_string()};
  }
  bump(&AtomicStats::raises_sync);
  kernel::EventNotice notice = make_notice(event, std::move(user_data), true);
  notice.target_group = target;
  notice.wait_token = kernel_.new_wait_token();
  obs::SpanGuard span("raise", kernel_.self().value(), obs::kMintTrace,
                      notice.event_name);
  notice.trace_id = span.context().trace_id;
  notice.parent_span = span.context().span_id;
  const std::int64_t t0 = obs::metrics_enabled() ? obs::now_us() : 0;
  kernel_.prepare_wait(notice.wait_token);
  const Status delivered =
      kernel_.deliver_group(notice, registry_.is_control(event));
  if (!delivered.is_ok()) return delivered;
  // The raiser is resumed by the FIRST member that completes handling;
  // later resumes for the same token are dropped.
  auto verdict = kernel_.await_resume(notice.wait_token, config_.sync_timeout);
  if (t0 != 0) sync_wait_us_->record_us(obs::now_us() - t0);
  return verdict;
}

Result<kernel::Verdict> EventSystem::raise_and_wait(EventId event,
                                                    ObjectId target,
                                                    rpc::Payload user_data) {
  if (!registry_.known(event)) {
    return Status{StatusCode::kUnknownEvent, event.to_string()};
  }
  bump(&AtomicStats::raises_sync);
  kernel::EventNotice notice = make_notice(event, std::move(user_data), true);
  notice.target_object = target;
  notice.wait_token = kernel_.new_wait_token();
  obs::SpanGuard span("raise", kernel_.self().value(), obs::kMintTrace,
                      notice.event_name);
  notice.trace_id = span.context().trace_id;
  notice.parent_span = span.context().span_id;
  const std::int64_t t0 = obs::metrics_enabled() ? obs::now_us() : 0;
  kernel_.prepare_wait(notice.wait_token);
  const Status delivered = dispatch_to_object(notice);
  if (!delivered.is_ok()) return delivered;
  auto verdict = kernel_.await_resume(notice.wait_token, config_.sync_timeout);
  if (t0 != 0) sync_wait_us_->record_us(obs::now_us() - t0);
  return verdict;
}

Result<kernel::Verdict> EventSystem::raise_exception(
    EventId event, const std::string& system_info, rpc::Payload user_data) {
  kernel::ThreadContext* ctx = kernel::Kernel::current();
  if (ctx == nullptr) {
    return Status{StatusCode::kInvalidArgument,
                  "raise_exception requires a logical thread"};
  }
  bump(&AtomicStats::raises_sync);
  bump(&AtomicStats::surrogate_runs);
  kernel::EventNotice notice = make_notice(event, std::move(user_data), true);
  notice.target_thread = ctx->tid();
  notice.system_info = system_info;
  notice.wait_token = kernel_.new_wait_token();
  obs::SpanGuard span("raise", kernel_.self().value(), obs::kMintTrace,
                      notice.event_name);
  notice.trace_id = span.context().trace_id;
  notice.parent_span = span.context().span_id;
  kernel_.prepare_wait(notice.wait_token);

  // Run the chain on a surrogate thread that adopts the suspended thread's
  // context (§6.1) while the raiser blocks below.  The surrogate holds a
  // shared handle: if the raiser times out and its thread exits, the context
  // must stay alive until the chain finishes.
  std::shared_ptr<kernel::ThreadContext> shared =
      kernel_.share_context(ctx->tid());
  if (shared == nullptr) {
    return Status{StatusCode::kNoSuchThread, ctx->tid().to_string()};
  }
  // Surrogates run on the bulk lane: the chain may issue nested blocking
  // RPCs, which must never occupy the (possibly width-1) event lane.  A
  // refused admission fails the raise NOW — kAborted at shutdown,
  // kResourceExhausted under overload — instead of leaking a waiter that
  // would only time out.
  //
  // Reservation keys: the chain adopts the suspended thread's context, so
  // it holds the thread key — two surrogates for one thread never
  // interleave.  A chain raised from inside a reserved handler also
  // inherits the parent task's keys: the surrogate touches the same state
  // the parent had claimed.
  exec::ReservationSet keys{reservation_key(ctx->tid())};
  if (const exec::ReservationSet* parent =
          exec::Executor::current_reservations()) {
    for (const std::uint64_t key : *parent) {
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
        keys.push_back(key);
      }
    }
  }
  const Status submitted = executor().submit(
      exec::Lane::kBulk, std::move(keys),
      [this, shared = std::move(shared), notice] {
        obs::SpanGuard handle_span(
            "handle", kernel_.self().value(),
            obs::TraceContext{notice.trace_id, notice.parent_span},
            notice.event_name);
        const kernel::Verdict verdict = execute_chain(*shared, notice);
        kernel_.resume_waiter(notice.wait_token, verdict);
      });
  if (!submitted.is_ok()) {
    bump(&AtomicStats::shed_dispatches);
    return submitted;
  }
  auto verdict = kernel_.await_resume(notice.wait_token, config_.sync_timeout);
  if (verdict.is_ok() && verdict.value() == kernel::Verdict::kTerminate) {
    ctx->mark_terminated();  // the raiser IS the target here
  }
  return verdict;
}

// --- thread-based delivery ------------------------------------------------------

kernel::Verdict EventSystem::on_deliver(kernel::ThreadContext& ctx,
                                        const kernel::EventNotice& notice) {
  // Joins the raiser's trace on the handling node; covers the chain run AND
  // the resume send, so the resume RPC stays causally linked.
  obs::SpanGuard span("handle", kernel_.self().value(),
                      obs::TraceContext{notice.trace_id, notice.parent_span},
                      notice.event_name);
  trace_.record(TraceStage::kDelivered, notice.event, notice.event_name,
                ctx.tid(), ObjectId{}, {}, notice.trace_id);
  const std::int64_t t0 = obs::metrics_enabled() ? obs::now_us() : 0;
  const kernel::Verdict verdict = execute_chain(ctx, notice);
  if (t0 != 0) handle_us_->record_us(obs::now_us() - t0);
  if (notice.synchronous) send_resume(notice, verdict);
  return verdict;
}

kernel::Verdict EventSystem::execute_chain(kernel::ThreadContext& ctx,
                                           const kernel::EventNotice& notice) {
  if (ctx.handler_depth() > config_.max_handler_depth) {
    DOCT_LOG(kError) << "handler recursion limit hit for "
                     << notice.event_name << " at " << ctx.tid().to_string();
    return kernel::Verdict::kResume;
  }
  // Snapshot the chain; handlers may attach/detach while running.
  const auto chain = ctx.with_attributes(
      [](kernel::ThreadAttributes& a) { return a.handler_chain; });

  // LIFO (§4.2): most recently attached handler first; kPropagate walks
  // outward toward earlier attachments.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (it->event != notice.event) continue;
    auto [ran, verdict] = run_handler(ctx, *it, notice);
    if (!ran) continue;
    if (verdict == kernel::Verdict::kPropagate) {
      bump(&AtomicStats::propagations);
      continue;
    }
    return verdict;
  }
  return apply_default(notice);
}

std::pair<bool, kernel::Verdict> EventSystem::run_handler(
    kernel::ThreadContext& ctx, const kernel::HandlerRecord& record,
    const kernel::EventNotice& notice) {
  switch (record.kind) {
    case kernel::HandlerKind::kPerThread: {
      auto proc = procedures_.lookup(record.entry);
      if (!proc.is_ok()) {
        DOCT_LOG(kWarn) << "per-thread procedure missing: " << record.entry;
        return {false, kernel::Verdict::kResume};
      }
      bump(&AtomicStats::per_thread_procs_run);
      trace_.record(TraceStage::kHandlerRun, notice.event, notice.event_name,
                    ctx.tid(), ObjectId{}, record.entry, notice.trace_id);
      const EventBlock block{notice};
      PerThreadCallCtx pctx{ctx, block, manager_, ctx.current_object()};
      return {true, proc.value()(pctx)};
    }
    case kernel::HandlerKind::kObjectEntry:
    case kernel::HandlerKind::kBuddy: {
      bump(&AtomicStats::thread_handlers_run);
      trace_.record(TraceStage::kHandlerRun, notice.event, notice.event_name,
                    ctx.tid(), record.object, record.entry, notice.trace_id);
      const NodeId home = objects::ObjectManager::object_node(record.object);
      Result<rpc::Payload> result{rpc::Payload{}};
      if (home == kernel_.self()) {
        // Zero-marshal: the entry borrows the notice via CallCtx.
        result = manager_.invoke_handler_notice(record.object, record.entry,
                                                notice);
      } else {
        // The "unscheduled invocation" (§7.2) to wherever the handler lives.
        const EventBlock block{notice};
        Writer w;
        w.put(record.object);
        w.put(record.entry);
        w.put(block.to_payload());
        result = rpc_.call(home, kRunHandlerMethod, std::move(w).take());
      }
      if (!result.is_ok()) {
        DOCT_LOG(kWarn) << "handler " << record.entry << " on "
                        << record.object.to_string()
                        << " failed: " << result.status().to_string();
        return {false, kernel::Verdict::kResume};
      }
      return {true, parse_verdict(result.value())};
    }
  }
  return {false, kernel::Verdict::kResume};
}

kernel::Verdict EventSystem::apply_default(const kernel::EventNotice& notice) {
  bump(&AtomicStats::defaults_applied);
  trace_.record(TraceStage::kDefaultApplied, notice.event, notice.event_name,
                notice.target_thread, notice.target_object, {},
                notice.trace_id);
  return registry_.default_action(notice.event) == DefaultAction::kTerminate
             ? kernel::Verdict::kTerminate
             : kernel::Verdict::kResume;
}

void EventSystem::send_resume(const kernel::EventNotice& notice,
                              kernel::Verdict verdict) {
  if (notice.wait_token == 0) return;
  trace_.record(TraceStage::kResumeSent, notice.event, notice.event_name,
                notice.raiser, ObjectId{},
                verdict == kernel::Verdict::kTerminate ? "terminate"
                                                       : "resume",
                notice.trace_id);
  if (notice.raiser_node == kernel_.self()) {
    kernel_.resume_waiter(notice.wait_token, verdict);
    return;
  }
  Writer w;
  w.put(notice.wait_token);
  w.put(verdict);
  const auto sent = rpc_.call(notice.raiser_node, kKernelResumeMethod,
                              std::move(w).take());
  if (!sent.is_ok() &&
      sent.status().code() != StatusCode::kAlreadyExists) {
    DOCT_LOG(kWarn) << "resume of raiser at "
                    << notice.raiser_node.to_string()
                    << " failed: " << sent.status().to_string();
  }
}

// --- object-based delivery (§4.3) ------------------------------------------------

Status EventSystem::dispatch_to_object(const kernel::EventNotice& notice) {
  const NodeId home = objects::ObjectManager::object_node(notice.target_object);
  if (home == kernel_.self()) {
    return run_object_handler(notice);
  }
  Writer w;
  notice.serialize(w);
  // A remote shed travels back as the RPC error, so the raiser fails fast
  // either way.
  auto reply = rpc_.call(home, kObjectNotifyMethod, std::move(w).take());
  return reply.status();
}

Result<rpc::Payload> EventSystem::rpc_object_notify(NodeId, Reader& args) {
  kernel::EventNotice notice = kernel::EventNotice::deserialize(args);
  // kFast method: this is the network delivery thread, which must not park
  // on a full lane.
  const Status admitted = run_object_handler(notice, /*may_block=*/false);
  if (!admitted.is_ok()) return admitted;
  return rpc::Payload{};
}

Result<rpc::Payload> EventSystem::rpc_run_handler(NodeId, Reader& args) {
  const auto object = args.get_id<ObjectTag>();
  const auto entry = args.get_string();
  auto payload = args.get_bytes();
  return manager_.invoke_handler_entry(object, entry, std::move(payload),
                                       nullptr);
}

exec::Lane EventSystem::lane_for(EventId event) const {
  if (registry_.is_control(event)) return exec::Lane::kControl;
  if (registry_.is_bulk(event)) return exec::Lane::kBulk;
  return exec::Lane::kEvent;
}

Status EventSystem::run_object_handler(const kernel::EventNotice& notice,
                                       bool may_block) {
  trace_.record(TraceStage::kObjectDispatched, notice.event, notice.event_name,
                ThreadId{}, notice.target_object, {}, notice.trace_id);
  if (config_.dispatch_mode == ObjectDispatchMode::kMasterThread) {
    // §7: the event lane plays the master handler thread — width 1 serves
    // all events on behalf of passive objects with zero thread creation,
    // and width N relies on the reservation keys derived here to keep
    // same-object handlers serial while disjoint targets run in parallel.
    // Control events (TERMINATE, NODE_DOWN) jump to the control lane so a
    // storm of ordinary events cannot starve them; bulk-marked events
    // (monitor snapshots) sink below both.
    const auto task = [this, notice] {
      // Thread hop: rejoin the notice's trace on the handler worker.
      obs::SpanGuard span(
          "handle", kernel_.self().value(),
          obs::TraceContext{notice.trace_id, notice.parent_span},
          notice.event_name);
      const kernel::Verdict verdict = run_object_handler_now(notice);
      if (notice.synchronous) send_resume(notice, verdict);
    };
    // Keyed on the target (plus the event's serial group if it has one):
    // delivery order per object is the width-1 order, whatever the width.
    exec::ReservationSet keys{reservation_key(notice.target_object)};
    if (const std::uint64_t group = registry_.serial_group_key(notice.event)) {
      keys.push_back(group);
    }
    const exec::Lane lane = lane_for(notice.event);
    const Status admitted =
        may_block ? executor().submit(lane, std::move(keys), task)
                  : executor().try_submit(lane, std::move(keys), task);
    if (!admitted.is_ok()) {
      // Fail the raiser instead of leaking its notice (and, for synchronous
      // raises, its blocked waiter) into a backlog that will never drain.
      bump(&AtomicStats::shed_dispatches);
      trace_.record(TraceStage::kObjectDispatched, notice.event,
                    notice.event_name, ThreadId{}, notice.target_object,
                    "shed", notice.trace_id);
      DOCT_LOG(kWarn) << "object event " << notice.event_name
                      << " shed: " << admitted.message();
    }
    return admitted;
  }
  // kThreadPerEvent: the costly alternative, kept for the E2 ablation.
  std::thread backstop;
  {
    std::lock_guard<std::mutex> lock(per_event_mu_);
    // Reap only threads that have announced completion: joining them is
    // near-instant, so the dispatch path never blocks behind running
    // handlers.
    for (auto it = per_event_threads_.begin();
         it != per_event_threads_.end();) {
      const auto done = std::find(per_event_finished_.begin(),
                                  per_event_finished_.end(), it->get_id());
      if (done != per_event_finished_.end()) {
        it->join();
        per_event_finished_.erase(done);
        it = per_event_threads_.erase(it);
      } else {
        ++it;
      }
    }
    // Backstop against runaway growth when handlers outlive the event
    // rate: pull the oldest thread out and join it below, after the lock
    // is released — it still needs per_event_mu_ to announce completion.
    if (per_event_threads_.size() > 512) {
      backstop = std::move(per_event_threads_.front());
      per_event_threads_.erase(per_event_threads_.begin());
    }
    per_event_threads_.emplace_back([this, notice] {
      obs::SpanGuard span(
          "handle", kernel_.self().value(),
          obs::TraceContext{notice.trace_id, notice.parent_span},
          notice.event_name);
      const kernel::Verdict verdict = run_object_handler_now(notice);
      if (notice.synchronous) send_resume(notice, verdict);
      std::lock_guard<std::mutex> done_lock(per_event_mu_);
      per_event_finished_.push_back(std::this_thread::get_id());
    });
  }
  if (backstop.joinable()) backstop.join();
  return Status::ok();
}

kernel::Verdict EventSystem::run_object_handler_now(
    const kernel::EventNotice& notice) {
  auto object = manager_.find(notice.target_object);
  if (object == nullptr) {
    // Passive (deactivated) object: bring it back first (§3.1 Persistence).
    std::function<Status(ObjectId)> hook;
    {
      std::lock_guard<std::mutex> lock(hook_mu_);
      hook = activation_hook_;
    }
    if (hook) {
      const Status activated = hook(notice.target_object);
      if (activated.is_ok()) object = manager_.find(notice.target_object);
    }
  }
  if (object == nullptr) {
    DOCT_LOG(kWarn) << "event " << notice.event_name
                    << " for unknown object "
                    << notice.target_object.to_string();
    return kernel::Verdict::kResume;
  }

  const std::string entry = object->handler_for(notice.event_name);
  if (entry.empty()) {
    // Predefined default handlers available in ALL objects (§4.3).
    if (notice.event == sys::kDelete) {
      manager_.remove_object(notice.target_object);
      return kernel::Verdict::kResume;
    }
    if (notice.event == sys::kPing) return kernel::Verdict::kResume;
    // No handler and no default: report "unhandled" so synchronous raisers
    // (e.g. the exception facility's first-chance pass) can escalate.
    return kernel::Verdict::kPropagate;
  }

  bump(&AtomicStats::object_handlers_run);
  const std::int64_t t0 = obs::metrics_enabled() ? obs::now_us() : 0;
  // Zero-marshal: local delivery hands the entry the notice itself (via
  // CallCtx::notice / EventBlock::from_ctx) — no serialize/deserialize.
  auto result =
      manager_.invoke_handler_notice(notice.target_object, entry, notice);
  if (t0 != 0) handle_us_->record_us(obs::now_us() - t0);
  if (!result.is_ok()) {
    DOCT_LOG(kWarn) << "object handler " << entry << " failed: "
                    << result.status().to_string();
    return kernel::Verdict::kResume;
  }
  return parse_verdict(result.value());
}

}  // namespace doct::events
