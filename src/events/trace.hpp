// EventTrace — per-node ring buffer recording the lifecycle of every notice
// the event system touches.
//
// The paper's monitoring/debugging applications (§6.2, §4.1) presuppose that
// the system can tell an observer what happened to an event: when it was
// raised, where it was routed, which handler ran, what verdict came back.
// This is that facility.  Tracing is off by default (benches must not pay
// for it); enable by setting EventConfig::trace_capacity > 0.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace doct::events {

enum class TraceStage : std::uint8_t {
  kRaised = 0,        // raise()/raise_and_wait() accepted the notice
  kDelivered,         // a thread delivery point picked the notice up
  kHandlerRun,        // one handler executed (detail = entry/procedure)
  kDefaultApplied,    // no handler matched; registry default action used
  kObjectDispatched,  // object event queued to the dispatcher
  kResumeSent,        // synchronous raiser resumed (detail = verdict)
  kDeadTarget,        // delivery failed: target destroyed
};

[[nodiscard]] const char* trace_stage_name(TraceStage stage);

struct TraceRecord {
  std::uint64_t sequence = 0;
  std::int64_t at_us = 0;  // steady-clock microseconds
  TraceStage stage = TraceStage::kRaised;
  EventId event;
  std::string event_name;
  ThreadId thread;   // target thread if any
  ObjectId object;   // target/handler object if any
  std::string detail;
  // Cross-node causal trace id (obs layer); correlates this node-local
  // record with the distributed spans exported by obs::Tracer.  0 when the
  // notice carried no trace.
  std::uint64_t trace_id = 0;

  [[nodiscard]] std::string to_string() const;
};

class EventTrace {
 public:
  explicit EventTrace(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  void record(TraceStage stage, EventId event, const std::string& event_name,
              ThreadId thread, ObjectId object, std::string detail = {},
              std::uint64_t trace_id = 0) {
    if (!enabled()) return;
    // Build the entry — clock read, string copies — before taking the lock,
    // so concurrent recorders only serialize on the deque push itself.
    TraceRecord entry;
    entry.sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
    entry.at_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
    entry.stage = stage;
    entry.event = event;
    entry.event_name = event_name;
    entry.thread = thread;
    entry.object = object;
    entry.detail = std::move(detail);
    entry.trace_id = trace_id;
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(entry));
    while (records_.size() > capacity_) records_.pop_front();
  }

  [[nodiscard]] std::vector<TraceRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {records_.begin(), records_.end()};
  }

  // Records for one event id, in sequence order (the common query).
  [[nodiscard]] std::vector<TraceRecord> for_event(EventId event) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceRecord> out;
    for (const auto& record : records_) {
      if (record.event == event) out.push_back(record);
    }
    return out;
  }

  // Records belonging to one cross-node trace: the node-local view of a
  // causal chain whose other halves live in obs::Tracer (possibly on other
  // nodes).
  [[nodiscard]] std::vector<TraceRecord> for_trace(
      std::uint64_t trace_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceRecord> out;
    for (const auto& record : records_) {
      if (record.trace_id == trace_id && trace_id != 0) out.push_back(record);
    }
    return out;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> sequence_{0};  // allocated outside mu_
  std::deque<TraceRecord> records_;
};

}  // namespace doct::events
