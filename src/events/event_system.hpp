// EventSystem — the paper's contribution: distributed asynchronous event
// raising, routing, and handling for threads, thread groups, and passive
// objects (§3–§5, §7).
//
// The §5.3 addressing/blocking table maps 1:1 onto this API:
//
//   raise(e, tid)            -> raise(event, ThreadId, data)
//   raise(e, gtid)           -> raise(event, GroupId, data)
//   raise(e, oid)            -> raise(event, ObjectId, data)
//   raise_and_wait(e, tid)   -> raise_and_wait(event, ThreadId, data, t/o)
//   raise_and_wait(e, gtid)  -> raise_and_wait(event, GroupId, data, t/o)
//   raise_and_wait(e, oid)   -> raise_and_wait(event, ObjectId, data, t/o)
//
// Thread-based handling (§4.1/4.2): handlers attach to the *current* logical
// thread and travel with it.  The chain is LIFO; a handler may render
// kPropagate to pass the event outward along the chain (Ada-style dynamic
// propagation).  Three handler kinds: an entry of the attaching object, an
// entry of a designated buddy object, or a per-thread procedure run in the
// current object's context (OWN_CONTEXT).
//
// Object-based handling (§4.3): events posted to an object run the entry the
// object registered for that event name (or a system default), executed on
// the node executor's EVENT LANE.  Lane width 1 (the default) IS the paper's
// per-node master handler thread — "to reduce thread-creation costs, it is
// preferable to employ a master handler thread" (§7) — wider lanes trade
// that serialization for parallel handler execution.  A fresh thread per
// event (kThreadPerEvent) is kept for the E2 ablation bench.  The event lane
// is BOUNDED: when it is full the dispatch is shed and the raiser gets
// kResourceExhausted instead of an unbounded backlog.
//
// Synchronous raising: the raiser blocks until a handler explicitly resumes
// it (§3).  A synchronous raise *to the current thread* (the exception-
// handling shape, §6.1) runs the chain on a surrogate thread that adopts the
// suspended thread's context, then applies the verdict to it.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "events/block.hpp"
#include "events/registry.hpp"
#include "events/trace.hpp"
#include "kernel/kernel.hpp"
#include "objects/manager.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/rpc.hpp"

namespace doct::events {

enum class ObjectDispatchMode : std::uint8_t {
  kMasterThread = 0,   // one long-lived handler thread per node (§7)
  kThreadPerEvent = 1, // spawn a fresh OS thread per object event
};

struct EventConfig {
  // The DOCT_DISPATCH environment variable ("master" / "per_event")
  // overrides this at construction — the CI ablation lane uses it to re-run
  // the event suite under kThreadPerEvent without recompiling.
  ObjectDispatchMode dispatch_mode = ObjectDispatchMode::kMasterThread;
  Duration sync_timeout = std::chrono::seconds(10);
  int max_handler_depth = 16;  // re-entrant handler recursion guard
  // Lifecycle tracing ring-buffer size; 0 disables tracing entirely.
  std::size_t trace_capacity = 0;
};

struct EventStats {
  std::uint64_t raises_async = 0;
  std::uint64_t raises_sync = 0;
  std::uint64_t thread_handlers_run = 0;
  std::uint64_t object_handlers_run = 0;
  std::uint64_t per_thread_procs_run = 0;
  std::uint64_t defaults_applied = 0;
  std::uint64_t propagations = 0;      // kPropagate chain steps
  std::uint64_t surrogate_runs = 0;    // self-sync handler executions
  std::uint64_t dead_target_raises = 0;
  std::uint64_t shed_dispatches = 0;   // executor refused; raiser got ERROR
};

// Handler context constant mirroring the paper's OWN_CONTEXT flag (§5.2).
inline constexpr struct OwnContextTag {
} OWN_CONTEXT{};

class EventSystem {
 public:
  EventSystem(kernel::Kernel& kernel, objects::ObjectManager& manager,
              rpc::RpcEndpoint& rpc, EventRegistry& registry,
              ProcedureRegistry& procedures, EventConfig config = {});
  ~EventSystem();

  EventSystem(const EventSystem&) = delete;
  EventSystem& operator=(const EventSystem&) = delete;

  [[nodiscard]] EventRegistry& registry() { return registry_; }
  [[nodiscard]] ProcedureRegistry& procedures() { return procedures_; }
  [[nodiscard]] kernel::Kernel& kernel() { return kernel_; }
  // The node executor event work runs on (shared with the RPC endpoint).
  [[nodiscard]] exec::Executor& executor() { return rpc_.executor(); }

  // --- thread-based handler attachment (§5.2) -----------------------------
  // All attach/detach calls operate on the CURRENT logical thread.

  // attach_handler(INTERRUPT, my_object, "my_interrupt_handler"):
  // handler is an entry of `object`; classified as kObjectEntry when the
  // thread is currently executing in `object`, kBuddy otherwise.
  Result<HandlerId> attach_handler(EventId event, ObjectId object,
                                   const std::string& entry);

  // attach_handler(TIMER, "monitor_thread", OWN_CONTEXT): per-thread
  // procedure executed in whatever object the thread occupies at delivery.
  Result<HandlerId> attach_handler(EventId event, const std::string& procedure,
                                   OwnContextTag);

  Status detach_handler(HandlerId id);

  // --- raising (§5.3) -------------------------------------------------------

  Status raise(EventId event, ThreadId target, rpc::Payload user_data = {});
  Status raise(EventId event, GroupId target, rpc::Payload user_data = {});
  Status raise(EventId event, ObjectId target, rpc::Payload user_data = {});

  Result<kernel::Verdict> raise_and_wait(EventId event, ThreadId target,
                                         rpc::Payload user_data = {});
  Result<kernel::Verdict> raise_and_wait(EventId event, GroupId target,
                                         rpc::Payload user_data = {});
  Result<kernel::Verdict> raise_and_wait(EventId event, ObjectId target,
                                         rpc::Payload user_data = {});

  // Raises a system exception for the current thread, synchronously — the
  // system-event shape (§6.1): the thread suspends, the chain runs on a
  // surrogate, the verdict resumes or terminates the thread.
  Result<kernel::Verdict> raise_exception(EventId event,
                                          const std::string& system_info,
                                          rpc::Payload user_data = {});

  // When event delivery targets a passive object that is not in memory, this
  // hook (typically ObjectStore::activate) is called first.
  void set_activation_hook(std::function<Status(ObjectId)> hook);

  [[nodiscard]] EventStats stats() const;
  void reset_stats();

  // Lifecycle trace (enabled via EventConfig::trace_capacity).
  [[nodiscard]] EventTrace& trace() { return trace_; }

 private:
  // Kernel delivery callback: runs the thread's handler chain for a notice.
  kernel::Verdict on_deliver(kernel::ThreadContext& ctx,
                             const kernel::EventNotice& notice);

  // Executes the LIFO handler chain for `notice` against `ctx`'s attributes.
  // May run on the carrier itself or on a surrogate thread.
  kernel::Verdict execute_chain(kernel::ThreadContext& ctx,
                                const kernel::EventNotice& notice);

  // Runs one handler record; the bool is true if the record matched and ran.
  std::pair<bool, kernel::Verdict> run_handler(
      kernel::ThreadContext& ctx, const kernel::HandlerRecord& record,
      const kernel::EventNotice& notice);

  kernel::Verdict apply_default(const kernel::EventNotice& notice);

  // Object-based dispatch.  run_object_handler admits the handler execution
  // to the executor (lane by event class: control / bulk / event) and
  // reports refusal to the caller so the raiser fails fast.
  Status dispatch_to_object(const kernel::EventNotice& notice);
  // may_block=false on the network delivery thread (rpc_object_notify):
  // admission then sheds instead of parking the simulated NIC.
  Status run_object_handler(const kernel::EventNotice& notice,
                            bool may_block = true);
  [[nodiscard]] exec::Lane lane_for(EventId event) const;
  kernel::Verdict run_object_handler_now(const kernel::EventNotice& notice);
  void send_resume(const kernel::EventNotice& notice, kernel::Verdict verdict);

  kernel::EventNotice make_notice(EventId event, rpc::Payload user_data,
                                  bool synchronous);

  // RPC methods.
  Result<rpc::Payload> rpc_object_notify(NodeId caller, Reader& args);
  Result<rpc::Payload> rpc_run_handler(NodeId caller, Reader& args);

  // EventStats with relaxed atomic counters: the raise path bumps without a
  // lock (the old stats_mu_ serialized every concurrent raiser); stats()
  // snapshots.
  struct AtomicStats {
    std::atomic<std::uint64_t> raises_async{0};
    std::atomic<std::uint64_t> raises_sync{0};
    std::atomic<std::uint64_t> thread_handlers_run{0};
    std::atomic<std::uint64_t> object_handlers_run{0};
    std::atomic<std::uint64_t> per_thread_procs_run{0};
    std::atomic<std::uint64_t> defaults_applied{0};
    std::atomic<std::uint64_t> propagations{0};
    std::atomic<std::uint64_t> surrogate_runs{0};
    std::atomic<std::uint64_t> dead_target_raises{0};
    std::atomic<std::uint64_t> shed_dispatches{0};
  };
  void bump(std::atomic<std::uint64_t> AtomicStats::* counter);

  kernel::Kernel& kernel_;
  objects::ObjectManager& manager_;
  rpc::RpcEndpoint& rpc_;
  EventRegistry& registry_;
  ProcedureRegistry& procedures_;
  EventConfig config_;

  // kThreadPerEvent bookkeeping: spawned threads joined opportunistically
  // and at shutdown (CP.26: never detach).  Threads announce completion in
  // per_event_finished_ so the dispatch path only ever joins threads that
  // have already run to the end — for remote notifies the dispatcher is the
  // RPC delivery thread, and a blocking bulk join there stalls every caller
  // past its deadline.
  std::mutex per_event_mu_;
  std::vector<std::thread> per_event_threads_;
  std::vector<std::thread::id> per_event_finished_;

  std::function<Status(ObjectId)> activation_hook_;
  std::mutex hook_mu_;

  EventTrace trace_;

  AtomicStats stats_;

  // Resolved once at construction; hot paths record without a lookup.
  obs::Histogram* sync_wait_us_ = nullptr;  // raise_and_wait round trips
  obs::Histogram* handle_us_ = nullptr;     // handler chain executions
  // Last member: unregisters before the stats it reads are destroyed.
  obs::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace doct::events
