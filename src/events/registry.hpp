// Event naming (§3): "Naming an event involves registering the name with the
// operating system."
//
// Predefined system events get fixed ids and defined default actions; user
// events (COMMIT, SYNCHRONIZE, ...) are registered at run time.  The registry
// is a system-wide service shared by every node (in Clouds this is kernel
// state agreed across the cluster; a single shared instance models that
// agreement — ids must mean the same thing on every node).
//
// ProcedureRegistry models §7.2's per-thread handler code: "The handler code
// has to be position independent.  The operating system must support the
// mapping of the handler code into a well known address in the per-thread
// area."  Registering the compiled procedure under a name on every node IS
// the well-known address: any node can map name -> code when the thread
// carrying a kPerThread HandlerRecord arrives.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace doct::kernel {
class ThreadContext;
enum class Verdict : std::uint8_t;
}  // namespace doct::kernel

namespace doct::objects {
class ObjectManager;
}

namespace doct::events {

// Default action taken when an event reaches a thread with no handler for it.
enum class DefaultAction : std::uint8_t {
  kIgnore = 0,     // drop the notice
  kTerminate = 1,  // terminate the target thread
};

// Predefined system events (fixed ids so every node agrees without traffic).
namespace sys {
inline constexpr EventId kTerminate{1};     // §6.3 (^C)
inline constexpr EventId kQuit{2};          // §6.3 (group kill)
inline constexpr EventId kAbort{3};         // §6.3 (invocation abort)
inline constexpr EventId kInterrupt{4};     // §5.2 example
inline constexpr EventId kTimer{5};         // §6.2 monitoring
inline constexpr EventId kVmFault{6};       // §6.4 external pagers
inline constexpr EventId kDivideByZero{7};  // §3 hardware exception example
inline constexpr EventId kAlarm{8};
inline constexpr EventId kDelete{9};        // §5.1 object template example
inline constexpr EventId kPing{10};         // liveness probe for objects
inline constexpr EventId kTargetDead{11};   // §7: dead-target notification
inline constexpr EventId kNodeDown{12};     // failure detector: peer suspected
inline constexpr EventId kNodeUp{13};       // failure detector: peer recovered
inline constexpr std::uint64_t kFirstUserEvent = 100;
}  // namespace sys

struct EventInfo {
  EventId id;
  std::string name;
  bool system = false;
  bool control = false;  // delivered ahead of queued ordinary notices
  bool bulk = false;     // background/throughput work (monitor snapshots):
                         // object dispatch runs on the executor's bulk lane
  DefaultAction default_action = DefaultAction::kIgnore;
  // Serial event-group membership: events sharing a non-zero key serialize
  // against each other on the executor even when their targets are
  // disjoint (set_serial_group).  0 = no group.
  std::uint64_t serial_group = 0;
};

// --- reservation-key derivation (DESIGN.md §11) ------------------------------
//
// Maps a dispatch target's identity onto the executor's reservation-key
// space.  Keys are keyed on the TARGET, not the handler (AMECOS's
// event-interface separation): two different events raised at one object
// still serialize, while one event fanned across disjoint objects runs in
// parallel.  Tag-salted mixing keeps obj:5 / thr:5 / grp:5 apart; the
// result is never 0 (the executor's "no key" sentinel).

[[nodiscard]] std::uint64_t reservation_key(ObjectId id);
[[nodiscard]] std::uint64_t reservation_key(ThreadId id);
[[nodiscard]] std::uint64_t reservation_key(GroupId id);
// Key for a named serial event-group (what set_serial_group stores).
[[nodiscard]] std::uint64_t reservation_key(const std::string& group);

class EventRegistry {
 public:
  EventRegistry();  // pre-populates the system events

  // Registers a user event name; idempotent (returns the existing id).
  EventId register_event(const std::string& name);

  // Marks a registered event as bulk work; idempotent, no-op if unknown.
  void mark_bulk(EventId id);

  // Puts an event in a named serial group: all events sharing the group
  // serialize on the executor even across disjoint targets (a COMMIT and a
  // ROLLBACK in group "txn" never interleave, whatever objects they hit).
  // Idempotent, no-op if unknown; the latest group wins.
  void set_serial_group(EventId id, const std::string& group);
  // The group's reservation key, or 0 when the event has none.
  [[nodiscard]] std::uint64_t serial_group_key(EventId id) const;

  [[nodiscard]] Result<EventId> lookup(const std::string& name) const;
  [[nodiscard]] Result<EventInfo> info(EventId id) const;
  // Existence check for the raise hot path: info() copies the EventInfo
  // (and its name string); this answers without constructing anything.
  [[nodiscard]] bool known(EventId id) const;
  [[nodiscard]] std::string name_of(EventId id) const;  // "" if unknown
  [[nodiscard]] bool is_control(EventId id) const;
  [[nodiscard]] bool is_bulk(EventId id) const;
  [[nodiscard]] DefaultAction default_action(EventId id) const;

  [[nodiscard]] std::vector<EventInfo> all() const;

 private:
  void add(EventInfo info);

  mutable std::mutex mu_;
  std::map<EventId, EventInfo> by_id_;
  std::map<std::string, EventId> by_name_;
  std::uint64_t next_user_id_ = sys::kFirstUserEvent;
};

// --- per-thread handler procedures (§7.2) -----------------------------------

class EventBlock;

// Everything a per-thread (OWN_CONTEXT) handler can see: the suspended
// thread's context — "the handler simply gets the suspended thread's state"
// (§6.2) — the event block, and the object the thread currently occupies.
struct PerThreadCallCtx {
  kernel::ThreadContext& thread;
  const EventBlock& block;
  objects::ObjectManager& manager;
  ObjectId current_object;
};

using PerThreadProc = std::function<kernel::Verdict(PerThreadCallCtx&)>;

class ProcedureRegistry {
 public:
  void register_procedure(std::string name, PerThreadProc proc) {
    std::lock_guard<std::mutex> lock(mu_);
    procedures_[std::move(name)] = std::move(proc);
  }

  [[nodiscard]] Result<PerThreadProc> lookup(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = procedures_.find(name);
    if (it == procedures_.end()) {
      return Status{StatusCode::kNoHandler, "no procedure " + name};
    }
    return it->second;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, PerThreadProc> procedures_;
};

}  // namespace doct::events
