#include "events/trace.hpp"

namespace doct::events {

const char* trace_stage_name(TraceStage stage) {
  switch (stage) {
    case TraceStage::kRaised:
      return "RAISED";
    case TraceStage::kDelivered:
      return "DELIVERED";
    case TraceStage::kHandlerRun:
      return "HANDLER_RUN";
    case TraceStage::kDefaultApplied:
      return "DEFAULT_APPLIED";
    case TraceStage::kObjectDispatched:
      return "OBJECT_DISPATCHED";
    case TraceStage::kResumeSent:
      return "RESUME_SENT";
    case TraceStage::kDeadTarget:
      return "DEAD_TARGET";
  }
  return "?";
}

std::string TraceRecord::to_string() const {
  std::string out = "#" + std::to_string(sequence) + " " +
                    trace_stage_name(stage) + " " + event_name;
  if (thread.valid()) out += " " + thread.to_string();
  if (object.valid()) out += " " + object.to_string();
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

}  // namespace doct::events
