#include "events/registry.hpp"

namespace doct::events {

EventRegistry::EventRegistry() {
  add({sys::kTerminate, "TERMINATE", true, true, false,
       DefaultAction::kTerminate});
  add({sys::kQuit, "QUIT", true, true, false, DefaultAction::kTerminate});
  add({sys::kAbort, "ABORT", true, true, false, DefaultAction::kIgnore});
  add({sys::kInterrupt, "INTERRUPT", true, true, false,
       DefaultAction::kIgnore});
  add({sys::kTimer, "TIMER", true, false, false, DefaultAction::kIgnore});
  add({sys::kVmFault, "VM_FAULT", true, false, false,
       DefaultAction::kIgnore});
  add({sys::kDivideByZero, "DIVIDE_BY_ZERO", true, true, false,
       DefaultAction::kTerminate});
  add({sys::kAlarm, "ALARM", true, false, false, DefaultAction::kIgnore});
  add({sys::kDelete, "DELETE", true, false, false, DefaultAction::kIgnore});
  add({sys::kPing, "PING", true, false, false, DefaultAction::kIgnore});
  add({sys::kTargetDead, "TARGET_DEAD", true, false, false,
       DefaultAction::kIgnore});
  add({sys::kNodeDown, "NODE_DOWN", true, false, false,
       DefaultAction::kIgnore});
  add({sys::kNodeUp, "NODE_UP", true, false, false, DefaultAction::kIgnore});
}

void EventRegistry::add(EventInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  by_name_[info.name] = info.id;
  by_id_[info.id] = std::move(info);
}

EventId EventRegistry::register_event(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const EventId id{next_user_id_++};
  by_name_[name] = id;
  by_id_[id] = EventInfo{id, name, false, false, false, DefaultAction::kIgnore};
  return id;
}

Result<EventId> EventRegistry::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status{StatusCode::kUnknownEvent, name};
  }
  return it->second;
}

Result<EventInfo> EventRegistry::info(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status{StatusCode::kUnknownEvent, id.to_string()};
  }
  return it->second;
}

std::string EventRegistry::name_of(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? std::string{} : it->second.name;
}

bool EventRegistry::is_control(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it != by_id_.end() && it->second.control;
}

void EventRegistry::mark_bulk(EventId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it != by_id_.end()) it->second.bulk = true;
}

bool EventRegistry::is_bulk(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it != by_id_.end() && it->second.bulk;
}

DefaultAction EventRegistry::default_action(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? DefaultAction::kIgnore
                            : it->second.default_action;
}

std::vector<EventInfo> EventRegistry::all() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EventInfo> out;
  out.reserve(by_id_.size());
  for (const auto& [id, info] : by_id_) out.push_back(info);
  return out;
}

}  // namespace doct::events
