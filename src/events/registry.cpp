#include "events/registry.hpp"

namespace doct::events {

namespace {

// splitmix64 finalizer: full-avalanche mix so dense id values (obj:1,
// obj:2, ...) spread across the key space.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Domain-separation salts: one per target kind so equal underlying values
// never collide across kinds.
constexpr std::uint64_t kObjectSalt = 0x6F626A6563742D6BULL;  // "object-k"
constexpr std::uint64_t kThreadSalt = 0x7468726561642D6BULL;  // "thread-k"
constexpr std::uint64_t kGroupSalt = 0x67726F75702D6B65ULL;   // "group-ke"
constexpr std::uint64_t kSerialSalt = 0x73657269616C2D6BULL;  // "serial-k"

std::uint64_t nonzero(std::uint64_t key) { return key == 0 ? 1 : key; }

}  // namespace

std::uint64_t reservation_key(ObjectId id) {
  return nonzero(mix64(id.value() ^ kObjectSalt));
}

std::uint64_t reservation_key(ThreadId id) {
  return nonzero(mix64(id.value() ^ kThreadSalt));
}

std::uint64_t reservation_key(GroupId id) {
  return nonzero(mix64(id.value() ^ kGroupSalt));
}

std::uint64_t reservation_key(const std::string& group) {
  std::uint64_t hash = kSerialSalt;
  for (const char c : group) {
    hash = mix64(hash ^ static_cast<std::uint64_t>(
                            static_cast<unsigned char>(c)));
  }
  return nonzero(hash);
}

EventRegistry::EventRegistry() {
  add({sys::kTerminate, "TERMINATE", true, true, false,
       DefaultAction::kTerminate});
  add({sys::kQuit, "QUIT", true, true, false, DefaultAction::kTerminate});
  add({sys::kAbort, "ABORT", true, true, false, DefaultAction::kIgnore});
  add({sys::kInterrupt, "INTERRUPT", true, true, false,
       DefaultAction::kIgnore});
  add({sys::kTimer, "TIMER", true, false, false, DefaultAction::kIgnore});
  add({sys::kVmFault, "VM_FAULT", true, false, false,
       DefaultAction::kIgnore});
  add({sys::kDivideByZero, "DIVIDE_BY_ZERO", true, true, false,
       DefaultAction::kTerminate});
  add({sys::kAlarm, "ALARM", true, false, false, DefaultAction::kIgnore});
  add({sys::kDelete, "DELETE", true, false, false, DefaultAction::kIgnore});
  add({sys::kPing, "PING", true, false, false, DefaultAction::kIgnore});
  add({sys::kTargetDead, "TARGET_DEAD", true, false, false,
       DefaultAction::kIgnore});
  add({sys::kNodeDown, "NODE_DOWN", true, false, false,
       DefaultAction::kIgnore});
  add({sys::kNodeUp, "NODE_UP", true, false, false, DefaultAction::kIgnore});
}

void EventRegistry::add(EventInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  by_name_[info.name] = info.id;
  by_id_[info.id] = std::move(info);
}

EventId EventRegistry::register_event(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const EventId id{next_user_id_++};
  by_name_[name] = id;
  by_id_[id] = EventInfo{id, name, false, false, false, DefaultAction::kIgnore};
  return id;
}

Result<EventId> EventRegistry::lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status{StatusCode::kUnknownEvent, name};
  }
  return it->second;
}

Result<EventInfo> EventRegistry::info(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status{StatusCode::kUnknownEvent, id.to_string()};
  }
  return it->second;
}

bool EventRegistry::known(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_id_.contains(id);
}

std::string EventRegistry::name_of(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? std::string{} : it->second.name;
}

bool EventRegistry::is_control(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it != by_id_.end() && it->second.control;
}

void EventRegistry::mark_bulk(EventId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it != by_id_.end()) it->second.bulk = true;
}

bool EventRegistry::is_bulk(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it != by_id_.end() && it->second.bulk;
}

void EventRegistry::set_serial_group(EventId id, const std::string& group) {
  const std::uint64_t key = reservation_key(group);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it != by_id_.end()) it->second.serial_group = key;
}

std::uint64_t EventRegistry::serial_group_key(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? 0 : it->second.serial_group;
}

DefaultAction EventRegistry::default_action(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? DefaultAction::kIgnore
                            : it->second.default_action;
}

std::vector<EventInfo> EventRegistry::all() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EventInfo> out;
  out.reserve(by_id_.size());
  for (const auto& [id, info] : by_id_) out.push_back(info);
  return out;
}

}  // namespace doct::events
