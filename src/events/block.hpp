// EventBlock (§4.1): "Information necessary to handle the event is
// encapsulated in a structure called an event block and is passed to the
// handler.  The event block contains generic system information such as
// state of the registers, etc., for exception handling and space for user
// defined data structures for user events."
//
// The block is a typed view over the EventNotice that reached the handler,
// plus helpers for unpacking the user-defined structure.
#pragma once

#include "common/serialize.hpp"
#include "kernel/event_notice.hpp"

namespace doct::events {

class EventBlock {
 public:
  explicit EventBlock(kernel::EventNotice notice)
      : notice_(std::move(notice)) {}

  [[nodiscard]] EventId event() const { return notice_.event; }
  [[nodiscard]] const std::string& event_name() const {
    return notice_.event_name;
  }
  [[nodiscard]] ThreadId raiser() const { return notice_.raiser; }
  [[nodiscard]] NodeId raiser_node() const { return notice_.raiser_node; }
  [[nodiscard]] ThreadId target_thread() const {
    return notice_.target_thread;
  }
  [[nodiscard]] GroupId target_group() const { return notice_.target_group; }
  [[nodiscard]] ObjectId target_object() const {
    return notice_.target_object;
  }
  [[nodiscard]] bool synchronous() const { return notice_.synchronous; }
  [[nodiscard]] ObjectId raised_in() const { return notice_.raised_in; }

  // Kernel-defined system information (simulated register/fault state).
  [[nodiscard]] const std::string& system_info() const {
    return notice_.system_info;
  }

  // User-defined structure appended to the block (§5.1).
  [[nodiscard]] const std::vector<std::uint8_t>& user_data() const {
    return notice_.user_data;
  }
  [[nodiscard]] Reader user_reader() const {
    return Reader{notice_.user_data};
  }

  [[nodiscard]] const kernel::EventNotice& notice() const { return notice_; }

  // Wire helpers: object-entry handlers receive the block as their argument
  // payload.
  [[nodiscard]] std::vector<std::uint8_t> to_payload() const {
    Writer w;
    notice_.serialize(w);
    return std::move(w).take();
  }
  static EventBlock from_payload(Reader& r) {
    return EventBlock{kernel::EventNotice::deserialize(r)};
  }

 private:
  kernel::EventNotice notice_;
};

}  // namespace doct::events
