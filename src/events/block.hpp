// EventBlock (§4.1): "Information necessary to handle the event is
// encapsulated in a structure called an event block and is passed to the
// handler.  The event block contains generic system information such as
// state of the registers, etc., for exception handling and space for user
// defined data structures for user events."
//
// The block is a typed view over the EventNotice that reached the handler,
// plus helpers for unpacking the user-defined structure.  Two forms:
//
//   * owned  — constructed from (or deserialized into) a notice the block
//     stores itself.  Remote deliveries arrive this way.
//   * view   — borrows the dispatcher's notice (same-node delivery via
//     ObjectManager::invoke_handler_notice): no serialize/deserialize round
//     trip and no copy.  The notice outlives the handler call — it is held
//     by the dispatch task that invoked the entry.
//
// Handlers should obtain their block with EventBlock::from_ctx(ctx), which
// picks the borrowing form when the dispatcher passed the notice in-memory
// and falls back to deserializing the argument payload otherwise.
#pragma once

#include "common/serialize.hpp"
#include "kernel/event_notice.hpp"
#include "objects/object.hpp"

namespace doct::events {

class EventBlock {
 public:
  explicit EventBlock(kernel::EventNotice notice)
      : owned_(std::move(notice)), notice_(&owned_) {}

  // Borrowing form: the caller guarantees `notice` outlives the block.
  explicit EventBlock(const kernel::EventNotice* notice) : notice_(notice) {}

  // Copies and moves re-point notice_ at the destination's own storage when
  // the source was owning (a blind member copy would alias the source).
  EventBlock(const EventBlock& other)
      : owned_(other.owned_),
        notice_(other.is_view() ? other.notice_ : &owned_) {}
  EventBlock(EventBlock&& other) noexcept
      : owned_(std::move(other.owned_)),
        notice_(other.is_view() ? other.notice_ : &owned_) {}
  EventBlock& operator=(const EventBlock& other) {
    if (this != &other) {
      owned_ = other.owned_;
      notice_ = other.is_view() ? other.notice_ : &owned_;
    }
    return *this;
  }
  EventBlock& operator=(EventBlock&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      notice_ = other.is_view() ? other.notice_ : &owned_;
    }
    return *this;
  }

  [[nodiscard]] EventId event() const { return notice_->event; }
  [[nodiscard]] const std::string& event_name() const {
    return notice_->event_name;
  }
  [[nodiscard]] ThreadId raiser() const { return notice_->raiser; }
  [[nodiscard]] NodeId raiser_node() const { return notice_->raiser_node; }
  [[nodiscard]] ThreadId target_thread() const {
    return notice_->target_thread;
  }
  [[nodiscard]] GroupId target_group() const { return notice_->target_group; }
  [[nodiscard]] ObjectId target_object() const {
    return notice_->target_object;
  }
  [[nodiscard]] bool synchronous() const { return notice_->synchronous; }
  [[nodiscard]] ObjectId raised_in() const { return notice_->raised_in; }

  // Kernel-defined system information (simulated register/fault state).
  [[nodiscard]] const std::string& system_info() const {
    return notice_->system_info;
  }

  // User-defined structure appended to the block (§5.1).
  [[nodiscard]] const std::vector<std::uint8_t>& user_data() const {
    return notice_->user_data;
  }
  [[nodiscard]] Reader user_reader() const {
    return Reader{notice_->user_data};
  }

  [[nodiscard]] const kernel::EventNotice& notice() const { return *notice_; }

  // Wire helpers: object-entry handlers on the REMOTE path receive the block
  // as their argument payload.
  [[nodiscard]] std::vector<std::uint8_t> to_payload() const {
    Writer w;
    notice_->serialize(w);
    return std::move(w).take();
  }
  static EventBlock from_payload(Reader& r) {
    return EventBlock{kernel::EventNotice::deserialize(r)};
  }

  // The handler-side entry point: borrow the dispatcher's notice when the
  // delivery stayed on this node, deserialize the payload otherwise.
  static EventBlock from_ctx(const objects::CallCtx& ctx) {
    if (ctx.notice != nullptr) return EventBlock{ctx.notice};
    return from_payload(ctx.args);
  }

 private:
  [[nodiscard]] bool is_view() const { return notice_ != &owned_; }

  kernel::EventNotice owned_;  // untouched in the borrowing form
  const kernel::EventNotice* notice_;
};

}  // namespace doct::events
