// Cross-cutting statistics-consistency tests: one scripted scenario drives
// the whole stack, then the per-module counters are checked against each
// other (migrations out == in, raises == deliveries, handler runs match,
// etc.).  Catching a counter drift usually means a code path was duplicated
// or skipped somewhere.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using kernel::Verdict;
using runtime::Cluster;

TEST(Stats, MigrationCountersBalanceAcrossNodes) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  auto obj = std::make_shared<objects::PassiveObject>("target");
  obj->define_entry("noop", [](objects::CallCtx&) -> Result<objects::Payload> {
    return objects::Payload{};
  });
  const ObjectId oid = n1.objects.add_object(obj);

  constexpr int kCalls = 10;
  const ThreadId tid = n0.kernel.spawn([&] {
    for (int i = 0; i < kCalls; ++i) {
      ASSERT_TRUE(n0.objects.invoke(oid, "noop", {}).is_ok());
    }
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 30s).is_ok());

  EXPECT_EQ(n0.kernel.stats().migrations_out, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(n1.kernel.stats().migrations_in, static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(n0.objects.stats().invocations_remote,
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(n1.kernel.stats().migrations_out, 0u);
}

TEST(Stats, RaiseAndDeliveryCountersAgree) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  std::atomic<long> handled{0};
  cluster.procedures().register_procedure("h", [&](events::PerThreadCallCtx&) {
    handled++;
    return Verdict::kResume;
  });
  const EventId ev = cluster.registry().register_event("STATS_EV");

  constexpr int kRaises = 20;
  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(n0.events.attach_handler(ev, "h", events::OWN_CONTEXT).is_ok());
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);
  n0.kernel.reset_stats();
  n0.events.reset_stats();

  for (int i = 0; i < kRaises; ++i) {
    ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  }
  for (int i = 0; i < 2000 && handled.load() < kRaises; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());

  const auto estats = n0.events.stats();
  const auto kstats = n0.kernel.stats();
  EXPECT_EQ(estats.raises_async, static_cast<std::uint64_t>(kRaises));
  EXPECT_EQ(kstats.notices_delivered, static_cast<std::uint64_t>(kRaises));
  EXPECT_EQ(estats.per_thread_procs_run, static_cast<std::uint64_t>(kRaises));
  EXPECT_EQ(handled.load(), kRaises);
  EXPECT_EQ(estats.defaults_applied, 0u);  // every notice had a handler
}

TEST(Stats, DefaultsCountedWhenNoHandler) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const EventId ev = cluster.registry().register_event("NO_HANDLER_EV");
  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);
  n0.events.reset_stats();
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  for (int i = 0; i < 1000 && n0.events.stats().defaults_applied == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(n0.events.stats().defaults_applied, 1u);
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
}

TEST(Stats, DsmCountersTrackProtocolActions) {
  Cluster cluster(2);
  auto& home = cluster.node(0);
  auto& remote = cluster.node(1);
  const SegmentId seg{77};
  ASSERT_TRUE(home.dsm.create_segment(seg, 2).is_ok());
  ASSERT_TRUE(remote.dsm.attach_segment(seg, home.id, 2).is_ok());

  // Remote read -> 1 read fault + 1 fetch; remote write -> 1 write fault +
  // ownership transfer; home re-read -> 1 read fault at home.
  ASSERT_TRUE(remote.dsm.read(seg, 0, 1).is_ok());
  ASSERT_TRUE(remote.dsm.write(seg, 0, std::vector<std::uint8_t>{1}).is_ok());
  ASSERT_TRUE(home.dsm.read(seg, 0, 1).is_ok());

  const auto rstats = remote.dsm.stats();
  const auto hstats = home.dsm.stats();
  EXPECT_EQ(rstats.read_faults, 1u);
  EXPECT_EQ(rstats.write_faults, 1u);
  EXPECT_EQ(rstats.pages_fetched, 2u);
  EXPECT_GE(hstats.ownership_transfers, 1u);
  EXPECT_EQ(hstats.read_faults, 1u);
}

TEST(Stats, NetworkCountersDistinguishFanout) {
  Cluster cluster(3);
  cluster.network().reset_stats();
  auto& n0 = cluster.node(0);
  const GroupId group = n0.kernel.create_group();
  const EventId ev = cluster.registry().register_event("FANOUT_EV");
  ASSERT_TRUE(n0.events.raise(ev, group).is_ok());
  cluster.network().quiesce();
  const auto stats = cluster.network().stats();
  EXPECT_EQ(stats.broadcast_sends, 1u);
  EXPECT_EQ(stats.fanout_messages, 2u);  // 3 nodes, sender excluded
}

TEST(Stats, ObjectManagerHandlerInvocations) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  auto obj = std::make_shared<objects::PassiveObject>("counted");
  obj->define_entry(
      "on_ping",
      [](objects::CallCtx&) -> Result<objects::Payload> {
        return objects::Payload{};
      },
      objects::Visibility::kPrivate);
  obj->define_handler("PING", "on_ping");
  const ObjectId oid = n0.objects.add_object(obj);
  n0.objects.reset_stats();

  constexpr int kPings = 5;
  for (int i = 0; i < kPings; ++i) {
    ASSERT_TRUE(n0.events.raise(events::sys::kPing, oid).is_ok());
  }
  for (int i = 0; i < 1000 &&
       n0.objects.stats().handler_invocations < kPings; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(n0.objects.stats().handler_invocations,
            static_cast<std::uint64_t>(kPings));
  EXPECT_EQ(n0.objects.stats().invocations_local, 0u);  // handlers don't count
}

// --- obs instruments: the histogram bucket scheme and sharded counter -------

TEST(Histogram, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    const std::size_t idx = obs::Histogram::bucket_index(v);
    EXPECT_EQ(obs::Histogram::bucket_lower_bound(idx), v) << "value " << v;
  }
}

TEST(Histogram, BucketBoundsBracketEveryValue) {
  // Log buckets with 8 sub-buckets per octave: the lower bound never exceeds
  // the value and the relative width is at most 12.5%.
  for (std::uint64_t v : {8ull, 9ull, 17ull, 100ull, 1000ull, 123456ull,
                          (1ull << 40), (1ull << 63) + 12345ull}) {
    const std::size_t idx = obs::Histogram::bucket_index(v);
    const std::uint64_t lb = obs::Histogram::bucket_lower_bound(idx);
    EXPECT_LE(lb, v);
    EXPECT_GE(static_cast<double>(lb), static_cast<double>(v) / 1.125)
        << "value " << v << " bucket lb " << lb;
    // Same bucket is stable: the lower bound maps back to itself.
    EXPECT_EQ(obs::Histogram::bucket_index(lb), idx);
  }
}

TEST(Histogram, PercentilesOnUniformDistribution) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.max, 1000u);
  // Bucket resolution is 12.5%; allow that plus interpolation slack.
  EXPECT_NEAR(snap.p50, 500.0, 500.0 * 0.15);
  EXPECT_NEAR(snap.p90, 900.0, 900.0 * 0.15);
  EXPECT_NEAR(snap.p99, 990.0, 990.0 * 0.15);
  EXPECT_NEAR(snap.mean, 500.5, 1.0);
  // Percentiles never exceed the observed max.
  EXPECT_LE(snap.p99, static_cast<double>(snap.max));
}

TEST(Histogram, MergeCombinesDistributions) {
  obs::Histogram low, high;
  for (int i = 0; i < 100; ++i) low.record(10);
  for (int i = 0; i < 100; ++i) high.record(10000);
  low.merge(high);
  const obs::HistogramSnapshot snap = low.snapshot();
  EXPECT_EQ(snap.count, 200u);
  EXPECT_EQ(snap.max, 10000u);
  // Half the mass at 10, half at 10000: p50 sits in the low mode, p90 in
  // the high one.
  EXPECT_LT(snap.p50, 100.0);
  EXPECT_GT(snap.p90, 5000.0);
}

TEST(Histogram, RecordUsClampsNegativeDurations) {
  obs::Histogram h;
  h.record_us(-5);  // clock skew between threads must not underflow
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(ShardedCounter, ConcurrentAddsAllLand) {
  obs::ShardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

}  // namespace
}  // namespace doct
