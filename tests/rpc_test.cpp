// Unit tests for the RPC layer: sync calls, claimable async calls, oneway
// (non-claimable) calls, errors, timeouts, nested calls, concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/id_gen.hpp"
#include "net/demux.hpp"
#include "net/network.hpp"
#include "rpc/rpc.hpp"

namespace doct::rpc {
namespace {

using namespace std::chrono_literals;

// Two-node fixture: client on node 1, server on node 2.
class RpcTest : public ::testing::Test {
 protected:
  RpcTest() {
    EXPECT_TRUE(net_.register_node(n1_, demux1_.as_handler()).is_ok());
    EXPECT_TRUE(net_.register_node(n2_, demux2_.as_handler()).is_ok());
    client_ = std::make_unique<RpcEndpoint>(net_, demux1_, n1_, ids_);
    server_ = std::make_unique<RpcEndpoint>(net_, demux2_, n2_, ids_);
  }

  ~RpcTest() override {
    // Same teardown order as NodeRuntime: unregistering joins the delivery
    // threads, so no demux handler can still be running inside an endpoint
    // when the endpoints are destroyed below.
    EXPECT_TRUE(net_.unregister_node(n1_).is_ok());
    EXPECT_TRUE(net_.unregister_node(n2_).is_ok());
  }

  static Payload int_payload(std::int64_t v) {
    Writer w;
    w.put(v);
    return std::move(w).take();
  }

  static std::int64_t int_value(const Payload& p) {
    Reader r(p);
    return r.get<std::int64_t>();
  }

  net::Network net_;
  net::Demux demux1_, demux2_;
  IdGenerator ids_;
  NodeId n1_{1}, n2_{2};
  std::unique_ptr<RpcEndpoint> client_, server_;
};

TEST_F(RpcTest, SyncCallRoundTrip) {
  server_->register_method("double", [](NodeId, Reader& args) -> Result<Payload> {
    return int_payload(args.get<std::int64_t>() * 2);
  });
  auto result = client_->call(n2_, "double", int_payload(21));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(int_value(result.value()), 42);
}

TEST_F(RpcTest, ServerSeesCallerNode) {
  server_->register_method("who", [&](NodeId caller, Reader&) -> Result<Payload> {
    Writer w;
    w.put(caller);
    return std::move(w).take();
  });
  auto result = client_->call(n2_, "who", {});
  ASSERT_TRUE(result.is_ok());
  Reader r(result.value());
  EXPECT_EQ(r.get_id<NodeTag>(), n1_);
}

TEST_F(RpcTest, UnknownMethodFails) {
  auto result = client_->call(n2_, "nope", {});
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RpcTest, MethodErrorPropagates) {
  server_->register_method("fail", [](NodeId, Reader&) -> Result<Payload> {
    return Status{StatusCode::kPermissionDenied, "private entry point"};
  });
  auto result = client_->call(n2_, "fail", {});
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(result.status().message(), "private entry point");
}

TEST_F(RpcTest, CallToUnknownNodeFailsFast) {
  const auto start = std::chrono::steady_clock::now();
  auto result = client_->call(NodeId{99}, "x", {});
  EXPECT_EQ(result.status().code(), StatusCode::kNoSuchNode);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 1s);
}

TEST_F(RpcTest, TimeoutWhenPartitioned) {
  server_->register_method("echo", [](NodeId, Reader&) -> Result<Payload> {
    return Payload{};
  });
  net_.partition(n1_, n2_);
  auto result = client_->call(n2_, "echo", {}, 50ms);
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST_F(RpcTest, AsyncCallClaimable) {
  server_->register_method("triple", [](NodeId, Reader& args) -> Result<Payload> {
    return int_payload(args.get<std::int64_t>() * 3);
  });
  PendingCall pending = client_->call_async(n2_, "triple", int_payload(5));
  auto result = pending.claim(2s);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(int_value(result.value()), 15);
  EXPECT_TRUE(pending.ready());
}

TEST_F(RpcTest, OnewayExecutesWithoutResponse) {
  std::atomic<int> hits{0};
  server_->register_method("notify", [&](NodeId, Reader&) -> Result<Payload> {
    hits++;
    return Payload{};
  });
  EXPECT_TRUE(client_->call_oneway(n2_, "notify", {}).is_ok());
  net_.quiesce();
  // The method runs on the server worker pool; wait for it to land.
  for (int i = 0; i < 100 && hits.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(hits.load(), 1);
  EXPECT_EQ(net_.stats().sent, 1u);  // no response message for oneway
}

TEST_F(RpcTest, NestedCallDoesNotDeadlock) {
  // Server method calls back into the client while handling a request.
  client_->register_method("ping", [](NodeId, Reader&) -> Result<Payload> {
    Writer w;
    w.put(std::int64_t{7});
    return std::move(w).take();
  });
  server_->register_method("relay", [&](NodeId caller, Reader&) -> Result<Payload> {
    auto inner = server_->call(caller, "ping", {});
    if (!inner.is_ok()) return inner.status();
    return int_payload(int_value(inner.value()) + 1);
  });
  auto result = client_->call(n2_, "relay", {});
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(int_value(result.value()), 8);
}

TEST_F(RpcTest, SelfCallWorks) {
  client_->register_method("id", [](NodeId, Reader& args) -> Result<Payload> {
    return int_payload(args.get<std::int64_t>());
  });
  auto result = client_->call(n1_, "id", int_payload(99));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(int_value(result.value()), 99);
}

TEST_F(RpcTest, ConcurrentCallsCorrelateCorrectly) {
  server_->register_method("echo", [](NodeId, Reader& args) -> Result<Payload> {
    return int_payload(args.get<std::int64_t>());
  });
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const std::int64_t v = t * 1000 + i;
        auto result = client_->call(n2_, "echo", int_payload(v));
        if (!result.is_ok() || int_value(result.value()) != v) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(RpcTest, UnregisterMethodMakesItUnknown) {
  server_->register_method("temp", [](NodeId, Reader&) -> Result<Payload> {
    return Payload{};
  });
  ASSERT_TRUE(client_->call(n2_, "temp", {}).is_ok());
  server_->unregister_method("temp");
  EXPECT_EQ(client_->call(n2_, "temp", {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RpcTest, LateResponseAfterTimeoutIsDropped) {
  server_->register_method("slow", [](NodeId, Reader&) -> Result<Payload> {
    std::this_thread::sleep_for(100ms);
    return Payload{};
  });
  auto result = client_->call(n2_, "slow", {}, 10ms);
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  // Wait for the late response to arrive; it must be ignored without crash.
  std::this_thread::sleep_for(150ms);
  net_.quiesce();
}

TEST_F(RpcTest, EndpointShutdownFailsPendingCalls) {
  net_.partition(n1_, n2_);
  auto pending = client_->call_async(n2_, "never", {});
  client_.reset();  // destructor must wake the claimer
  auto result = pending.claim(1s);
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

// --- retry / recovery -------------------------------------------------------------

// Standalone fixture with retries enabled and a lossy wire.
class RpcRetryTest : public ::testing::Test {
 protected:
  void build(RpcConfig config, net::FaultPlan plan = {}) {
    net_.load_fault_plan(plan);
    EXPECT_TRUE(net_.register_node(n1_, demux1_.as_handler()).is_ok());
    EXPECT_TRUE(net_.register_node(n2_, demux2_.as_handler()).is_ok());
    client_ = std::make_unique<RpcEndpoint>(net_, demux1_, n1_, ids_, config);
    server_ = std::make_unique<RpcEndpoint>(net_, demux2_, n2_, ids_, config);
  }

  ~RpcRetryTest() override {
    if (net_.is_crashed(n2_)) EXPECT_TRUE(net_.restart_node(n2_).is_ok());
    EXPECT_TRUE(net_.unregister_node(n1_).is_ok());
    EXPECT_TRUE(net_.unregister_node(n2_).is_ok());
  }

  net::Network net_;
  net::Demux demux1_, demux2_;
  IdGenerator ids_;
  NodeId n1_{1}, n2_{2};
  std::unique_ptr<RpcEndpoint> client_, server_;
};

TEST_F(RpcRetryTest, RetriesSucceedUnderHeavyLoss) {
  RpcConfig config;
  // At 50% loss each way a round trip succeeds with p=0.25 per attempt, so
  // the retry budget must be deep enough that 20 consecutive calls all land:
  // 60 retries at a 50ms cap keeps retransmitting for ~3s of the 10s budget
  // (P[a call fails] ~ 0.75^61, negligible for any seed).
  config.max_retries = 60;
  config.retry_base_delay = 5ms;
  config.retry_max_delay = 50ms;
  config.default_timeout = 10s;
  net::FaultPlan plan;
  plan.seed = 42;
  plan.link_defaults.drop_probability = 0.5;
  build(config, plan);

  std::atomic<int> executions{0};
  server_->register_method("inc", [&](NodeId, Reader&) -> Result<Payload> {
    executions++;
    return Payload{};
  });
  for (int i = 0; i < 20; ++i) {
    auto result = client_->call(n2_, "inc", {});
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  }
  // Every call executed exactly once despite retransmissions: the reused
  // CallId is the idempotency token the server dedups on.
  EXPECT_EQ(executions.load(), 20);
  EXPECT_GT(client_->stats().retries_sent, 0u);
}

TEST_F(RpcRetryTest, DuplicatedRequestsExecuteOnce) {
  RpcConfig config;
  net::FaultPlan plan;
  plan.link_defaults.duplicate_probability = 1.0;  // every message twice
  build(config, plan);

  std::atomic<int> executions{0};
  server_->register_method("inc", [&](NodeId, Reader&) -> Result<Payload> {
    executions++;
    return Payload{};
  });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->call(n2_, "inc", {}).is_ok());
  }
  net_.quiesce();
  EXPECT_EQ(executions.load(), 10);
  const auto stats = server_->stats();
  EXPECT_EQ(stats.requests_executed, 10u);
  EXPECT_EQ(stats.dedup_replays + stats.duplicate_drops, 10u);
}

TEST_F(RpcRetryTest, DeadlineTimeoutIsDefinite) {
  RpcConfig config;
  config.max_retries = 50;
  config.retry_base_delay = 5ms;
  build(config);

  ASSERT_TRUE(net_.crash_node(n2_).is_ok());
  const auto start = std::chrono::steady_clock::now();
  auto result = client_->call(n2_, "anything", {}, 200ms);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_GE(elapsed, 150ms);  // retried until the deadline, then gave up
  EXPECT_LT(elapsed, 5s);
  EXPECT_GE(client_->stats().deadline_timeouts, 1u);
}

TEST_F(RpcRetryTest, RetriesBridgeCrashRestart) {
  RpcConfig config;
  config.max_retries = 100;
  config.retry_base_delay = 5ms;
  config.retry_max_delay = 20ms;
  config.default_timeout = 10s;
  build(config);

  std::atomic<int> executions{0};
  server_->register_method("inc", [&](NodeId, Reader&) -> Result<Payload> {
    executions++;
    return Payload{};
  });
  ASSERT_TRUE(net_.crash_node(n2_).is_ok());
  std::thread restarter([&] {
    std::this_thread::sleep_for(100ms);
    ASSERT_TRUE(net_.restart_node(n2_).is_ok());
  });
  auto result = client_->call(n2_, "inc", {});
  restarter.join();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(executions.load(), 1);
  EXPECT_GT(client_->stats().retries_sent, 0u);
}

}  // namespace
}  // namespace doct::rpc
