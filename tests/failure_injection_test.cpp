// Failure-injection tests: message loss, partitions, and short timeouts
// exercised through every layer (rpc, dsm, kernel locators, events).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "runtime/runtime.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using runtime::Cluster;
using runtime::ClusterConfig;

ClusterConfig fast_timeout_config() {
  ClusterConfig config;
  config.node.rpc.default_timeout = 300ms;
  config.node.kernel.locate_timeout = 300ms;
  config.node.events.sync_timeout = 1s;
  return config;
}

TEST(FailureInjection, RpcTimesOutUnderTotalLoss) {
  ClusterConfig config = fast_timeout_config();
  config.network.drop_probability = 1.0;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  auto obj = std::make_shared<objects::PassiveObject>("unreachable");
  obj->define_entry("noop", [](objects::CallCtx&) -> Result<objects::Payload> {
    return objects::Payload{};
  });
  const ObjectId oid = n1.objects.add_object(obj);

  std::atomic<bool> timed_out{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    const auto start = std::chrono::steady_clock::now();
    auto result = n0.objects.invoke(oid, "noop", {});
    timed_out = !result.is_ok() &&
                result.status().code() == StatusCode::kTimeout &&
                std::chrono::steady_clock::now() - start < 5s;
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 15s).is_ok());
  EXPECT_TRUE(timed_out.load());
}

TEST(FailureInjection, DsmReadFailsAcrossPartition) {
  ClusterConfig config = fast_timeout_config();
  Cluster cluster(2, config);
  auto& home = cluster.node(0);
  auto& remote = cluster.node(1);
  const SegmentId seg{600};
  ASSERT_TRUE(home.dsm.create_segment(seg, 1).is_ok());
  ASSERT_TRUE(remote.dsm.attach_segment(seg, home.id, 1).is_ok());

  cluster.network().partition(home.id, remote.id);
  auto result = remote.dsm.read(seg, 0, 1);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);

  cluster.network().heal(home.id, remote.id);
  auto healed = remote.dsm.read(seg, 0, 1);
  EXPECT_TRUE(healed.is_ok()) << healed.status().to_string();
}

TEST(FailureInjection, LocateFailsWhenTargetNodeIsolated) {
  ClusterConfig config = fast_timeout_config();
  Cluster cluster(3, config);
  auto& n0 = cluster.node(0);
  auto& n2 = cluster.node(2);

  std::atomic<bool> release{false};
  const ThreadId target = n2.kernel.spawn([&] {
    while (!release.load()) {
      if (!n2.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  for (int i = 0; i < 500 && n2.kernel.local_threads().empty(); ++i) {
    std::this_thread::sleep_for(1ms);
  }

  cluster.network().isolate(n2.id);
  for (auto kind : {kernel::LocatorKind::kBroadcast,
                    kernel::LocatorKind::kPathFollow,
                    kernel::LocatorKind::kMulticast}) {
    auto located = n0.kernel.locate(target, kind);
    EXPECT_FALSE(located.is_ok()) << "locator " << static_cast<int>(kind);
  }
  cluster.network().reconnect(n2.id);
  auto located = n0.kernel.locate(target, kernel::LocatorKind::kBroadcast);
  EXPECT_TRUE(located.is_ok()) << located.status().to_string();
  EXPECT_EQ(located.value(), n2.id);

  release = true;
  ASSERT_TRUE(n2.kernel.join_thread(target, 10s).is_ok());
}

TEST(FailureInjection, OnewayInvocationLostSilently) {
  ClusterConfig config = fast_timeout_config();
  config.network.drop_probability = 1.0;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<int> executed{0};
  auto obj = std::make_shared<objects::PassiveObject>("fire_and_forget");
  obj->define_entry("run", [&](objects::CallCtx&) -> Result<objects::Payload> {
    executed++;
    return objects::Payload{};
  });
  const ObjectId oid = n1.objects.add_object(obj);

  const ThreadId tid = n0.kernel.spawn([&] {
    // Datagram semantics: the oneway is accepted even though it will drown.
    EXPECT_TRUE(n0.objects.invoke_oneway(oid, "run", {}).is_ok());
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  cluster.network().quiesce();
  EXPECT_EQ(executed.load(), 0);
}

TEST(FailureInjection, EventRaiseRecoversAfterIntermittentLoss) {
  // 30% loss: individual raises may fail to locate/deliver, but retrying
  // eventually succeeds (datagram building blocks, application-level retry).
  ClusterConfig config = fast_timeout_config();
  config.network.drop_probability = 0.3;
  config.network.seed = 1234;
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  std::atomic<int> handled{0};
  cluster.procedures().register_procedure("lossy_h",
                                          [&](events::PerThreadCallCtx&) {
                                            handled++;
                                            return kernel::Verdict::kResume;
                                          });
  const EventId ev = cluster.registry().register_event("LOSSY");
  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId target = n1.kernel.spawn([&] {
    ASSERT_TRUE(
        n1.events.attach_handler(ev, "lossy_h", events::OWN_CONTEXT).is_ok());
    armed = true;
    while (!release.load()) {
      if (!n1.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);

  // Retry the raise until one gets through (bounded).
  bool delivered = false;
  for (int attempt = 0; attempt < 25 && !delivered; ++attempt) {
    delivered = n0.events.raise(ev, target).is_ok();
  }
  EXPECT_TRUE(delivered);
  for (int i = 0; i < 2000 && handled.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(handled.load(), 1);
  release = true;
  ASSERT_TRUE(n1.kernel.join_thread(target, 10s).is_ok());
}

TEST(FailureInjection, PerByteLatencyScalesWithPayload) {
  ClusterConfig config;
  config.network.per_byte_latency = std::chrono::microseconds(20);
  Cluster cluster(2, config);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  auto obj = std::make_shared<objects::PassiveObject>("echo");
  obj->define_entry("echo", [](objects::CallCtx& ctx) -> Result<objects::Payload> {
    return ctx.args.get_bytes();
  });
  const ObjectId oid = n1.objects.add_object(obj);

  auto time_invoke = [&](std::size_t bytes) {
    std::atomic<long> elapsed_us{0};
    const ThreadId tid = n0.kernel.spawn([&] {
      Writer w;
      w.put(std::vector<std::uint8_t>(bytes, 1));
      const auto start = std::chrono::steady_clock::now();
      ASSERT_TRUE(n0.objects.invoke(oid, "echo", std::move(w).take()).is_ok());
      elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    });
    EXPECT_TRUE(n0.kernel.join_thread(tid, 30s).is_ok());
    return elapsed_us.load();
  };

  const long small = time_invoke(10);
  const long large = time_invoke(2000);
  // 2000 extra bytes at 20us/byte ~ 40ms+ of extra one-way latency.
  EXPECT_GT(large, small + 20000);
}

}  // namespace
}  // namespace doct
