// Tests for the event-lifecycle trace and the name service.
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/runtime.hpp"
#include "services/names/name_service.hpp"

namespace doct {
namespace {

using namespace std::chrono_literals;
using kernel::Verdict;
using runtime::Cluster;

runtime::ClusterConfig traced_config() {
  runtime::ClusterConfig config;
  config.node.events.trace_capacity = 256;
  return config;
}

TEST(Trace, DisabledByDefaultRecordsNothing) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  EXPECT_FALSE(n0.events.trace().enabled());
  const EventId ev = cluster.registry().register_event("UNTRACED");
  const ThreadId tid = n0.kernel.spawn([&] { n0.kernel.sleep_for(5ms); });
  (void)n0.events.raise(ev, tid);
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());
  EXPECT_TRUE(n0.events.trace().snapshot().empty());
}

TEST(Trace, RecordsFullLifecycleOfHandledEvent) {
  Cluster cluster(1, traced_config());
  auto& n0 = cluster.node(0);
  std::atomic<int> handled{0};
  cluster.procedures().register_procedure("traced_h",
                                          [&](events::PerThreadCallCtx&) {
                                            handled++;
                                            return Verdict::kResume;
                                          });
  const EventId ev = cluster.registry().register_event("TRACED");
  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    ASSERT_TRUE(
        n0.events.attach_handler(ev, "traced_h", events::OWN_CONTEXT).is_ok());
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  for (int i = 0; i < 1000 && handled.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());

  const auto records = n0.events.trace().for_event(ev);
  ASSERT_GE(records.size(), 3u);
  EXPECT_EQ(records[0].stage, events::TraceStage::kRaised);
  EXPECT_EQ(records[1].stage, events::TraceStage::kDelivered);
  EXPECT_EQ(records[2].stage, events::TraceStage::kHandlerRun);
  EXPECT_EQ(records[2].detail, "traced_h");
  // Sequence numbers strictly increase; human-readable form works.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].sequence, records[i - 1].sequence);
  }
  EXPECT_NE(records[0].to_string().find("RAISED"), std::string::npos);
}

TEST(Trace, RecordsDefaultActionAndDeadTarget) {
  Cluster cluster(1, traced_config());
  auto& n0 = cluster.node(0);
  const EventId ev = cluster.registry().register_event("TRACED_DEFAULT");
  std::atomic<bool> armed{false};
  std::atomic<bool> release{false};
  const ThreadId tid = n0.kernel.spawn([&] {
    armed = true;
    while (!release.load()) {
      if (!n0.kernel.sleep_for(1ms).is_ok()) return;
    }
  });
  while (!armed.load()) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(n0.events.raise(ev, tid).is_ok());
  for (int i = 0; i < 1000; ++i) {
    const auto records = n0.events.trace().for_event(ev);
    if (records.size() >= 3) break;
    std::this_thread::sleep_for(1ms);
  }
  release = true;
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());

  bool saw_default = false;
  for (const auto& record : n0.events.trace().for_event(ev)) {
    if (record.stage == events::TraceStage::kDefaultApplied) saw_default = true;
  }
  EXPECT_TRUE(saw_default);

  // Dead target is traced too.
  ASSERT_EQ(n0.events.raise(ev, tid).code(), StatusCode::kDeadTarget);
  bool saw_dead = false;
  for (const auto& record : n0.events.trace().for_event(ev)) {
    if (record.stage == events::TraceStage::kDeadTarget) saw_dead = true;
  }
  EXPECT_TRUE(saw_dead);
}

TEST(Trace, RingBufferBounded) {
  events::EventTrace trace(8);
  for (int i = 0; i < 100; ++i) {
    trace.record(events::TraceStage::kRaised, EventId{1}, "X", ThreadId{},
                 ObjectId{});
  }
  const auto records = trace.snapshot();
  ASSERT_EQ(records.size(), 8u);
  EXPECT_EQ(records.back().sequence, 100u);
  EXPECT_EQ(records.front().sequence, 93u);
  trace.clear();
  EXPECT_TRUE(trace.snapshot().empty());
}

TEST(Trace, EveryStageHasAName) {
  for (int s = 0; s <= static_cast<int>(events::TraceStage::kDeadTarget); ++s) {
    EXPECT_STRNE(events::trace_stage_name(static_cast<events::TraceStage>(s)),
                 "?");
  }
}

// --- name service ---------------------------------------------------------------

TEST(Names, BindLookupUnbindRoundTrip) {
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);
  const ObjectId dir = n0.objects.add_object(services::NameService::make());
  services::NameClient names(n1.objects, dir, /*cache_lookups=*/false);

  const ObjectId monitor{(std::uint64_t{1} << 48) | 99};
  std::atomic<bool> ok{false};
  const ThreadId tid = n1.kernel.spawn([&] {
    ASSERT_TRUE(names.bind("services/monitor", monitor).is_ok());
    auto found = names.lookup("services/monitor");
    ASSERT_TRUE(found.is_ok());
    EXPECT_EQ(found.value(), monitor);
    ASSERT_TRUE(names.unbind("services/monitor").is_ok());
    ok = names.lookup("services/monitor").status().code() ==
         StatusCode::kNoSuchObject;
  });
  ASSERT_TRUE(n1.kernel.join_thread(tid, 15s).is_ok());
  EXPECT_TRUE(ok.load());
}

TEST(Names, BindUniqueRejectsCollision) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId dir = n0.objects.add_object(services::NameService::make());
  services::NameClient names(n0.objects, dir);
  ASSERT_TRUE(names.bind_unique("lock_server", ObjectId{1001}).is_ok());
  EXPECT_TRUE(names.bind_unique("lock_server", ObjectId{1001}).is_ok());  // same
  EXPECT_EQ(names.bind_unique("lock_server", ObjectId{1002}).code(),
            StatusCode::kAlreadyExists);
  // Plain bind may rebind.
  ASSERT_TRUE(names.bind("lock_server", ObjectId{1002}).is_ok());
}

TEST(Names, ValidationAndListing) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId dir = n0.objects.add_object(services::NameService::make());
  services::NameClient names(n0.objects, dir);
  EXPECT_EQ(names.bind("", ObjectId{5}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(names.bind("x", ObjectId{}).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(names.bind("services/a", ObjectId{1}).is_ok());
  ASSERT_TRUE(names.bind("services/b", ObjectId{2}).is_ok());
  ASSERT_TRUE(names.bind("apps/c", ObjectId{3}).is_ok());
  auto services_names = names.list("services/");
  ASSERT_TRUE(services_names.is_ok());
  EXPECT_EQ(services_names.value().size(), 2u);
  auto all = names.list("");
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all.value().size(), 3u);
}

TEST(Names, CacheServesRepeatLookups) {
  Cluster cluster(1);
  auto& n0 = cluster.node(0);
  const ObjectId dir = n0.objects.add_object(services::NameService::make());
  services::NameClient names(n0.objects, dir, /*cache_lookups=*/true);
  ASSERT_TRUE(names.bind("cached", ObjectId{42}).is_ok());

  n0.objects.reset_stats();
  ASSERT_TRUE(names.lookup("cached").is_ok());  // served from the bind cache
  EXPECT_EQ(n0.objects.stats().invocations_local, 0u);

  names.drop_cache();
  ASSERT_TRUE(names.lookup("cached").is_ok());  // now hits the directory
  EXPECT_EQ(n0.objects.stats().invocations_local, 1u);
}

}  // namespace
}  // namespace doct
