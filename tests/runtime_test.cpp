// Runtime-layer tests: Cluster/NodeRuntime assembly, thread-attached I/O
// channels (§3.1), and entry-signature metadata (§5.2).
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/runtime.hpp"

namespace doct::runtime {
namespace {

using namespace std::chrono_literals;

TEST(Cluster, NodesGetSequentialIdsAndAreReachable) {
  Cluster cluster(3);
  EXPECT_EQ(cluster.size(), 3u);
  EXPECT_EQ(cluster.node(0).id, NodeId{1});
  EXPECT_EQ(cluster.node(2).id, NodeId{3});
  EXPECT_EQ(cluster.network().nodes().size(), 3u);
}

TEST(Cluster, SharedRegistryAcrossNodes) {
  Cluster cluster(2);
  const EventId ev = cluster.registry().register_event("SHARED");
  // Both nodes resolve the same name to the same id (system-wide naming).
  EXPECT_EQ(cluster.node(0).events.registry().lookup("SHARED").value(), ev);
  EXPECT_EQ(cluster.node(1).events.registry().lookup("SHARED").value(), ev);
}

TEST(IoHubTest, OutputFollowsTheThreadAcrossObjectsAndNodes) {
  // §3.1: a thread bound to a terminal at creation writes to that terminal
  // from every object it visits, with no explicit redirection.
  Cluster cluster(2);
  auto& n0 = cluster.node(0);
  auto& n1 = cluster.node(1);

  auto remote = std::make_shared<objects::PassiveObject>("printer");
  remote->define_entry("print", [&](objects::CallCtx&)
                                    -> Result<objects::Payload> {
    // Runs at node 2, but writes to whatever channel the THREAD carries.
    EXPECT_TRUE(cluster.io().write_current("line from node 2"));
    return objects::Payload{};
  });
  const ObjectId oid = n1.objects.add_object(remote);

  const ThreadId tid = n0.kernel.spawn([&] {
    kernel::Kernel::current()->with_attributes(
        [](kernel::ThreadAttributes& a) { a.io_channel = "xterm-42"; });
    EXPECT_TRUE(cluster.io().write_current("line from node 1"));
    ASSERT_TRUE(n0.objects.invoke(oid, "print", {}).is_ok());
  });
  ASSERT_TRUE(n0.kernel.join_thread(tid, 10s).is_ok());

  const auto lines = cluster.io().read("xterm-42");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "line from node 1");
  EXPECT_EQ(lines[1], "line from node 2");
}

TEST(IoHubTest, NoChannelOrNoThreadReturnsFalse) {
  Cluster cluster(1);
  EXPECT_FALSE(cluster.io().write_current("nowhere"));  // not a logical thread
  std::atomic<bool> no_channel{true};
  const ThreadId tid = cluster.node(0).kernel.spawn([&] {
    no_channel = !cluster.io().write_current("still nowhere");
  });
  ASSERT_TRUE(cluster.node(0).kernel.join_thread(tid).is_ok());
  EXPECT_TRUE(no_channel.load());
}

TEST(IoHubTest, ChannelsAreIndependentAndClearable) {
  Cluster cluster(1);
  cluster.io().write("a", "1");
  cluster.io().write("b", "2");
  EXPECT_EQ(cluster.io().read("a"), std::vector<std::string>{"1"});
  EXPECT_EQ(cluster.io().read("b"), std::vector<std::string>{"2"});
  cluster.io().clear("a");
  EXPECT_TRUE(cluster.io().read("a").empty());
  EXPECT_EQ(cluster.io().read("b").size(), 1u);
}

TEST(EntrySignatures, DeclaredExceptionsQueryable) {
  // §5.2: callers consult the entry's signature to know which exceptional
  // events to attach handlers for at the point of invocation.
  objects::PassiveObject object("risky");
  object.declare_raises("parse", "DIVIDE_BY_ZERO");
  object.declare_raises("parse", "VM_FAULT");
  const auto raised = object.raised_by("parse");
  ASSERT_EQ(raised.size(), 2u);
  EXPECT_EQ(raised[0], "DIVIDE_BY_ZERO");
  EXPECT_EQ(raised[1], "VM_FAULT");
  EXPECT_TRUE(object.raised_by("other").empty());
}

TEST(Cluster, ManyNodesConstructAndTearDown) {
  Cluster cluster(16);
  EXPECT_EQ(cluster.network().nodes().size(), 16u);
  // Spawn one thread per node, join all — exercises full-stack teardown.
  std::vector<ThreadId> tids;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    tids.push_back(cluster.node(i).kernel.spawn([] {}));
  }
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.node(i).kernel.join_thread(tids[i]).is_ok());
  }
}

}  // namespace
}  // namespace doct::runtime
